"""Build a small nvBench-style benchmark and inspect its statistics.

Runs the whole nl2sql-to-nl2vis pipeline over a synthetic Spider-like
corpus, then prints Table-2/Table-3-style statistics, a hardness
breakdown, and a few sample (NL, VIS) pairs.  Finishes by saving the
benchmark to JSON and loading it back.

Run:  python examples/build_benchmark.py
"""

import tempfile
from pathlib import Path

from repro.core.nvbench import (
    NVBenchConfig,
    build_nvbench,
    load_nvbench_pairs,
    save_nvbench_pairs,
)
from repro.grammar.serialize import to_text
from repro.spider.corpus import CorpusConfig
from repro.stats.dataset_stats import dataset_summary
from repro.stats.nl_stats import nl_vis_table


def main() -> None:
    config = NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=24, pairs_per_database=12, row_scale=0.5, seed=11
        ),
        filter_training_pairs=80,
    )
    print("building benchmark ...")
    bench = build_nvbench(config=config)

    summary = dataset_summary(bench.corpus)
    print(f"\ndatabases: {summary.n_databases}  tables: {summary.n_tables}  "
          f"domains: {summary.n_domains}")
    print(f"columns: {summary.n_columns} (avg {summary.avg_columns:.2f})  "
          f"rows: {summary.n_rows} (avg {summary.avg_rows:.1f})")
    fractions = summary.column_type_fractions()
    print("column types:", {k: f"{v:.1%}" for k, v in sorted(fractions.items())})

    print(f"\n(NL, VIS) pairs: {len(bench.pairs)}  distinct vis: {len(bench.distinct_vis)}")
    print("hardness:", dict(bench.hardness_counts()))
    print("\nper-type stats (Table 3 style):")
    for row in nl_vis_table(bench):
        print(f"  {row.vis_type:17s} vis={row.n_vis:4d} pairs={row.n_pairs:5d} "
              f"pairs/vis={row.pairs_per_vis:.2f} avg words={row.avg_words:.1f} "
              f"BLEU={row.avg_bleu:.3f}")

    print("\nsample pairs:")
    for pair in bench.pairs[:4]:
        print(" NL :", pair.nl)
        print(" VIS:", to_text(pair.vis)[:100])
        print()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "nvbench_pairs.json"
        save_nvbench_pairs(bench, str(path))
        reloaded = load_nvbench_pairs(bench.corpus, str(path))
        print(f"saved + reloaded {len(reloaded.pairs)} pairs "
              f"({path.stat().st_size // 1024} KiB)")


if __name__ == "__main__":
    main()
