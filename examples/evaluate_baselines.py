"""Evaluate the rule-based baselines (DeepEye, NL4DV) on a benchmark.

Builds a small nvBench-style benchmark and scores both baselines with
tree-matching accuracy, split by hardness — a miniature of the paper's
Table 5 without the (slower) neural training.

Run:  python examples/evaluate_baselines.py
"""

from collections import defaultdict

from repro.baselines import DeepEyeBaseline, NL4DVBaseline
from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.eval.metrics import tree_match
from repro.eval.splits import split_pairs
from repro.spider.corpus import CorpusConfig


def main() -> None:
    print("building benchmark ...")
    bench = build_nvbench(config=NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=18, pairs_per_database=12, row_scale=0.5, seed=31
        ),
        filter_training_pairs=60,
    ))
    _, _, test_pairs = split_pairs(bench.pairs, seed=0)
    print(f"{len(test_pairs)} test pairs")

    deepeye = DeepEyeBaseline()
    nl4dv = NL4DVBaseline()
    de_hits = defaultdict(lambda: defaultdict(int))
    nv_hits = defaultdict(int)
    totals = defaultdict(int)
    for pair in test_pairs:
        database = bench.databases[pair.db_name]
        hardness = pair.hardness.value
        totals[hardness] += 1
        ranked = deepeye.predict(pair.nl, database, k=6)
        for k in (1, 3, 6):
            if any(tree_match(vis, pair.vis) for vis in ranked[:k]):
                de_hits[k][hardness] += 1
        if tree_match(nl4dv.predict(pair.nl, database), pair.vis):
            nv_hits[hardness] += 1

    def rate(hits, hardness=None):
        if hardness is None:
            return sum(hits.values()) / max(sum(totals.values()), 1)
        return hits.get(hardness, 0) / max(totals.get(hardness, 0), 1)

    print(f"\n{'hardness':12s} {'DE@1':>7s} {'DE@3':>7s} {'DE@6':>7s} {'NL4DV':>7s}")
    for hardness in ("easy", "medium", "hard", "extra hard"):
        if not totals.get(hardness):
            continue
        print(f"{hardness:12s} {rate(de_hits[1], hardness):7.1%} "
              f"{rate(de_hits[3], hardness):7.1%} {rate(de_hits[6], hardness):7.1%} "
              f"{rate(nv_hits, hardness):7.1%}")
    print(f"{'overall':12s} {rate(de_hits[1]):7.1%} {rate(de_hits[3]):7.1%} "
          f"{rate(de_hits[6]):7.1%} {rate(nv_hits):7.1%}")
    print("\n(the paper's seq2vis reaches ~65% overall — run "
          "examples/train_seq2vis.py to see the learned model win)")


if __name__ == "__main__":
    main()
