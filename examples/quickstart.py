"""Quickstart: synthesize (NL, VIS) pairs from one (NL, SQL) pair.

Builds a tiny flights database, feeds the synthesizer one Spider-style
(NL, SQL) input, and prints every synthesized visualization with its NL
variants plus a renderable Vega-Lite spec.

Run:  python examples/quickstart.py
"""

import json

from repro.core.synthesizer import NL2VISSynthesizer
from repro.grammar.serialize import to_text
from repro.storage.schema import Column, Database, Table
from repro.vis import to_vega_lite


def build_database() -> Database:
    flight = Table(
        "flight",
        (
            Column("flight_number", "C"),
            Column("origin", "C"),
            Column("destination", "C"),
            Column("price", "Q"),
            Column("departure_date", "T"),
        ),
    )
    flight.extend(
        [
            ("UA101", "Chicago", "Atlanta", 320.0, "2020-01-05"),
            ("UA102", "Chicago", "Boston", 150.0, "2020-02-11"),
            ("DL201", "Los Angeles", "Atlanta", 510.0, "2020-02-20"),
            ("DL202", "Chicago", "Seattle", 260.0, "2020-05-02"),
            ("AA301", "Los Angeles", "Seattle", 700.0, "2020-07-09"),
            ("AA302", "Boston", "Los Angeles", 450.0, "2020-11-19"),
            ("UA103", "Chicago", "Miami", 210.0, "2021-01-15"),
            ("DL203", "Boston", "Miami", 330.0, "2021-03-22"),
        ]
    )
    database = Database(name="flights", domain="flight")
    database.add_table(flight)
    return database


def main() -> None:
    database = build_database()
    nl = "What are the origin and price of all flights?"
    sql = "SELECT origin, price FROM flight"
    print(f"input NL : {nl}")
    print(f"input SQL: {sql}")
    print()

    synthesizer = NL2VISSynthesizer(seed=7)
    pairs = synthesizer.synthesize(nl, sql, database)

    by_vis = {}
    for pair in pairs:
        by_vis.setdefault(pair.vis, []).append(pair)
    for index, (vis, group) in enumerate(by_vis.items(), start=1):
        print(f"--- synthesized vis #{index} ({vis.vis_type}, {group[0].hardness.value}) ---")
        print("tree:", to_text(vis))
        for pair in group:
            print("  NL:", pair.nl)
        print()

    first_vis = next(iter(by_vis))
    print("Vega-Lite spec for vis #1:")
    print(json.dumps(to_vega_lite(first_vis, database), indent=2)[:1200])


if __name__ == "__main__":
    main()
