"""Train a small seq2vis model and translate NL questions to charts.

Builds a compact benchmark, trains the attention variant for a few
epochs (pure numpy — a couple of minutes on CPU), reports test accuracy,
and then runs interactive-style translations for a few held-out NL
questions, printing the predicted tree and whether it matched.

Run:  python examples/train_seq2vis.py
"""

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.eval.harness import (
    ExperimentConfig,
    build_model,
    evaluate_model,
    make_datasets,
)
from repro.grammar.serialize import to_text
from repro.neural.trainer import TrainConfig, train_model
from repro.spider.corpus import CorpusConfig


def main() -> None:
    print("building benchmark ...")
    bench = build_nvbench(
        config=NVBenchConfig(
            corpus=CorpusConfig(
                num_databases=16, pairs_per_database=12, row_scale=0.5, seed=23
            ),
            filter_training_pairs=60,
        )
    )
    print(f"{len(bench.pairs)} (NL, VIS) pairs")

    config = ExperimentConfig(
        hidden_dim=80,
        embed_dim=48,
        train=TrainConfig(epochs=18, batch_size=24, lr=5e-3, patience=4, verbose=True),
    )
    train_set, val_set, test_set = make_datasets(bench, config)
    print(f"train/val/test = {len(train_set)}/{len(val_set)}/{len(test_set)}")

    model = build_model("attention", train_set, config)
    print("training seq2vis (attention) ...")
    train_model(model, train_set, val_set, config.train)

    report = evaluate_model(model, test_set, bench)
    print(f"\ntree accuracy  : {report.tree_accuracy:.1%}")
    print(f"result accuracy: {report.result_accuracy:.1%}")
    print("by hardness    :", {k: f"{v:.1%}" for k, v in report.tree_accuracy_by_hardness().items()})

    print("\nsample translations:")
    vocab = test_set.out_vocab
    for example in test_set.examples[:5]:
        batch = test_set.batch_of([example])
        decoded = model.greedy_decode(batch, vocab.bos_id, vocab.eos_id)[0]
        predicted = " ".join(vocab.decode(decoded))
        gold = " ".join(example.tgt_tokens)
        flag = "OK " if predicted == gold else "MISS"
        print(f" [{flag}] {example.pair.nl[:80]}")
        print(f"       pred: {predicted[:90]}")
        if flag == "MISS":
            print(f"       gold: {gold[:90]}")


if __name__ == "__main__":
    main()
