"""Render a small HTML gallery of synthesized visualizations.

Builds a miniature benchmark, takes the first few distinct charts, and
writes ``gallery.html`` embedding their Vega-Lite specs (rendered with
vega-embed when opened in a browser) alongside the NL variants and an
ASCII preview printed to the terminal.

Run:  python examples/render_gallery.py [output.html]
"""

import json
import sys
from pathlib import Path

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.spider.corpus import CorpusConfig
from repro.vis import to_ascii, to_vega_lite

PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
  <meta charset="utf-8"/>
  <title>nvBench reproduction — chart gallery</title>
  <script src="https://cdn.jsdelivr.net/npm/vega@5"></script>
  <script src="https://cdn.jsdelivr.net/npm/vega-lite@5"></script>
  <script src="https://cdn.jsdelivr.net/npm/vega-embed@6"></script>
  <style>
    body {{ font-family: sans-serif; margin: 2em; }}
    .card {{ border: 1px solid #ccc; border-radius: 8px;
             padding: 1em; margin-bottom: 2em; }}
    .nl {{ color: #444; margin: 0.2em 0; }}
  </style>
</head>
<body>
<h1>Synthesized (NL, VIS) pairs</h1>
{cards}
<script>
{scripts}
</script>
</body>
</html>
"""


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("gallery.html")
    print("building benchmark ...")
    bench = build_nvbench(config=NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=8, pairs_per_database=8, row_scale=0.5, seed=41
        ),
        filter_training_pairs=40,
    ))

    by_vis = {}
    for pair in bench.pairs:
        by_vis.setdefault((pair.db_name, pair.vis), []).append(pair)

    cards, scripts = [], []
    for index, ((db_name, vis), group) in enumerate(list(by_vis.items())[:8]):
        database = bench.databases[db_name]
        spec = to_vega_lite(vis, database)
        nls = "".join(f'<p class="nl">&ldquo;{p.nl}&rdquo;</p>' for p in group[:3])
        cards.append(
            f'<div class="card"><h3>#{index + 1}: {vis.vis_type} '
            f'({db_name})</h3>{nls}<div id="vis{index}"></div></div>'
        )
        scripts.append(
            f"vegaEmbed('#vis{index}', {json.dumps(spec)});"
        )
        print(f"\n--- chart #{index + 1} ({vis.vis_type}) ---")
        print(to_ascii(vis, database, width=40, height=8))

    out_path.write_text(PAGE_TEMPLATE.format(
        cards="\n".join(cards), scripts="\n".join(scripts)
    ))
    print(f"\nwrote {out_path} ({out_path.stat().st_size // 1024} KiB) — "
          "open it in a browser to see the rendered charts")


if __name__ == "__main__":
    main()
