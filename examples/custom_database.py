"""Bring your own database: synthesize charts for your own SQL.

Shows the downstream-user workflow: define a schema, load rows, write
ordinary SQL, and get back good visualizations in both Vega-Lite and
ECharts, with the bad-chart filter doing its job.

Run:  python examples/custom_database.py
"""

import json

from repro.core.filter_model import DeepEyeFilter, extract_features
from repro.core.synthesizer import NL2VISSynthesizer
from repro.core.tree_edits import generate_candidates
from repro.grammar.serialize import to_text
from repro.sqlparse import parse_sql
from repro.storage.schema import Column, Database, ForeignKey, Table
from repro.vis import to_echarts, to_vega_lite


def build_store_database() -> Database:
    product = Table(
        "product",
        (
            Column("product_id", "C"),
            Column("name", "C"),
            Column("category", "C"),
            Column("price", "Q"),
        ),
    )
    product.extend(
        [
            (1, "Solid Kit 4", "kitchen", 39.0),
            (2, "Eco Pack 9", "kitchen", 12.5),
            (3, "Ultra Set 2", "garden", 89.0),
            (4, "Mini Kit 7", "garden", 24.0),
            (5, "Pro Unit 1", "office", 149.0),
            (6, "Smart Pack 3", "office", 59.0),
        ]
    )
    sale = Table(
        "sale",
        (
            Column("sale_id", "C"),
            Column("product_id", "C"),
            Column("sold_on", "T"),
            Column("amount", "Q"),
        ),
    )
    rows = []
    for index, (pid, day, amount) in enumerate(
        [
            (1, "2021-01-04", 39.0), (2, "2021-01-09", 25.0), (3, "2021-02-02", 89.0),
            (1, "2021-02-14", 78.0), (5, "2021-03-01", 149.0), (4, "2021-03-18", 24.0),
            (6, "2021-04-02", 118.0), (2, "2021-04-22", 12.5), (3, "2021-05-05", 178.0),
            (5, "2021-05-30", 298.0), (1, "2021-06-11", 39.0), (6, "2021-06-28", 59.0),
        ]
    ):
        rows.append((index, pid, day, amount))
    sale.extend(rows)
    db = Database(name="store", domain="shop")
    db.add_table(product)
    db.add_table(sale)
    db.foreign_keys.append(ForeignKey("sale", "product_id", "product", "product_id"))
    return db


def main() -> None:
    database = build_store_database()
    sql = (
        "SELECT category, amount, sold_on FROM product "
        "JOIN sale ON product.product_id = sale.product_id"
    )
    query = parse_sql(sql, database)
    print("SQL:", sql)

    # Inspect the raw candidate space, then what survives the filter.
    candidates = generate_candidates(query, database)
    chart_filter = DeepEyeFilter()
    good = []
    for candidate in candidates:
        features = extract_features(candidate.vis, database)
        verdict = features is not None and chart_filter.score(features) >= 0.5
        if verdict:
            good.append(candidate)
    print(f"\n{len(candidates)} candidate charts, {len(good)} pass the filter")

    synthesizer = NL2VISSynthesizer(seed=3, max_vis_per_query=3)
    kept = synthesizer.good_candidates(query, database)
    for index, candidate in enumerate(kept, start=1):
        print(f"\n== kept chart #{index}: {candidate.vis.vis_type} ==")
        print("tree     :", to_text(candidate.vis))
        vega = to_vega_lite(candidate.vis, database)
        echarts = to_echarts(candidate.vis, database)
        print("vega-lite:", json.dumps(vega)[:160], "...")
        print("echarts  :", json.dumps(echarts)[:160], "...")


if __name__ == "__main__":
    main()
