"""Table 4: average vis component matching accuracy.

Paper shape: predicting the chart *type* is easiest (bar ~98%); the
axes (Select) are the hardest component (average 76.5%, dragged down by
the aggregate on the y axis); among the data operations, Binning is the
best-predicted and Order among the weaker ones.
"""

from conftest import emit

from repro.eval.metrics import COMPONENTS
from repro.grammar.ast_nodes import VIS_TYPES


def test_table4_component_accuracy(benchmark, trained_models, profile):
    def collect():
        rows = {}
        for variant, (_, report) in trained_models.items():
            rows[variant] = (
                report.vis_type_component_accuracy(),
                report.component_accuracy(),
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = [
        f"{'variant':10s} | "
        + " ".join(f"{t[:6]:>7s}" for t in VIS_TYPES)
        + f" {'all':>7s} | "
        + " ".join(f"{c[:6]:>7s}" for c in COMPONENTS)
    ]
    averages = {c: [] for c in COMPONENTS}
    type_all = []
    for variant, (type_acc, component_acc) in rows.items():
        type_cells = " ".join(
            f"{type_acc.get(t, float('nan')) * 100 if t in type_acc else float('nan'):7.1f}"
            for t in VIS_TYPES
        )
        comp_cells = " ".join(
            f"{component_acc[c] * 100:7.1f}" for c in COMPONENTS
        )
        lines.append(
            f"{variant:10s} | {type_cells} {type_acc['all'] * 100:7.1f} | {comp_cells}"
        )
        type_all.append(type_acc["all"])
        for component in COMPONENTS:
            averages[component].append(component_acc[component])
    avg_line = (
        f"{'average':10s} | {'':{8 * len(VIS_TYPES)}s}"
        f"{sum(type_all) / len(type_all) * 100:7.1f} | "
        + " ".join(
            f"{sum(values) / len(values) * 100:7.1f}"
            for values in averages.values()
        )
    )
    lines.append(avg_line)
    lines.append("(paper averages: VIS-all 95.1, Select 76.5, Where 86.8, "
                 "Join 86.1, Grouping 80.9, Binning 93.0, Order 80.9)")
    emit("Table 4 — component matching accuracy (%)", "\n".join(lines))

    if profile.name != "standard":
        return
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    # Chart type is predicted far better than the full tree (the basic
    # variant may not learn at CPU scale, so require it of the best).
    assert max(type_all) > 0.8
    assert mean(type_all) > 0.4
    # Select (axes) is the hardest or near-hardest component on average.
    select_avg = mean(averages["select"])
    assert select_avg <= min(mean(averages[c]) for c in COMPONENTS) + 0.15
