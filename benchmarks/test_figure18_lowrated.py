"""Figure 18: effect of injecting low-rated (NL, VIS) pairs.

Paper shape: injecting the 231 crowd/expert-identified low-rated pairs
into training moves accuracy only slightly (relative accuracy stays
near 1.0 at every injection level), with the attention variant the most
sensitive — i.e. seq2vis is robust to benchmark noise.
"""

from conftest import emit

from repro.eval.crowd import HumanStudySimulator, StudyConfig
from repro.eval.harness import ExperimentConfig
from repro.eval.lowrated import low_rated_injection_experiment
from repro.neural.trainer import TrainConfig


def test_figure18_low_rated_pair_injection(benchmark, bench, profile):
    # A denser study over a pair subset keeps the sweep affordable.
    subset = bench.pairs[: profile.injection_pair_budget]
    study = HumanStudySimulator(StudyConfig(sample_fraction=1.0, seed=23)).run(subset)
    low_rated = study.low_rated_pairs()

    class SubsetBench:
        def __init__(self, bench, pairs):
            self.corpus = bench.corpus
            self.pairs = pairs
            self.databases = bench.databases

    sub_bench = SubsetBench(bench, subset)
    config = ExperimentConfig(
        embed_dim=40,
        hidden_dim=profile.injection_hidden,
        train=TrainConfig(
            epochs=profile.injection_epochs, batch_size=24, lr=5e-3,
            clip_norm=5.0, patience=profile.injection_epochs,
        ),
    )
    levels = (0, 20, 40, 60, 80, 100) if profile.name == "standard" else (0, 100)
    variants = ("basic", "attention", "copy") if profile.name == "standard" else ("attention",)

    result = benchmark.pedantic(
        lambda: low_rated_injection_experiment(
            sub_bench, low_rated, variants=variants, levels=levels, config=config
        ),
        rounds=1,
        iterations=1,
    )
    relative = result.relative()

    lines = [
        f"low-rated pairs identified: {len(low_rated)} of {len(subset)} "
        f"({len(low_rated) / max(len(subset), 1):.1%}; paper: 231 pairs)"
    ]
    header = f"{'variant':10s} | " + " ".join(f"{level:>7d}%" for level in levels)
    lines.append(header + "   (relative tree accuracy vs 0% injection)")
    for variant in variants:
        cells = " ".join(f"{relative[(variant, level)]:8.3f}" for level in levels)
        absolute = result.accuracies[(variant, 0)]
        lines.append(f"{variant:10s} | {cells}   (clean accuracy {absolute:.1%})")
    emit("Figure 18 — low-rated pair injection", "\n".join(lines))

    if profile.name != "standard":
        return
    # Variants that fail to learn at this small budget (the basic
    # encoder-decoder) have a meaningless ratio — skip them.
    learned = [v for v in variants if result.accuracies[(v, 0)] >= 0.05]
    assert learned, "at least one variant must learn at the clean baseline"
    ratios = [relative[(variant, level)] for variant in learned for level in levels]
    for variant in learned:
        for level in levels:
            ratio = relative[(variant, level)]
            # The paper's finding: only a slight influence at any level
            # (wide bounds absorb small-model training noise).
            assert 0.5 <= ratio <= 1.6, (
                f"{variant}@{level}% relative accuracy {ratio:.2f} out of range"
            )
    mean_ratio = sum(ratios) / len(ratios)
    assert 0.75 <= mean_ratio <= 1.3
