"""Judged evaluation matrix: per-scenario × per-dimension accuracy
(``BENCH_eval.json``, key ``judged``).

Tree match alone misses what downstream users feel: whether the chart
renders (validity, through *both* the Vega-Lite and ECharts backends),
is legal for its data (Table-1 rules), and is readable (rule-based
lint).  This benchmark drives the staged pipeline (DeepEye generator)
over every registered scenario — the single-shot standard split, the
ambiguous split, multi-turn edit sessions, and the temporal/COVID pack
— and publishes the four-dimension accuracy matrix plus per-scenario
repair rates.  See ``docs/EVALUATION.md``.
"""

from __future__ import annotations

from conftest import emit, merge_result

from repro.eval.judge import format_matrix, judge_matrix, run_scenario
from repro.eval.scenarios import scenario_names

REQUIRED_SCENARIOS = {"standard", "ambiguous", "edit_session", "temporal"}
REQUIRED_DIMENSIONS = ("tree", "validity", "legality", "readability")


def test_judged_matrix_across_scenarios(bench, profile):
    max_examples = 12 if profile.name == "quick" else 40
    names = scenario_names()
    assert REQUIRED_SCENARIOS <= set(names)

    reports = [
        run_scenario(name, bench, k=3, max_examples=max_examples)
        for name in names
    ]
    matrix = judge_matrix(reports)
    merge_result("BENCH_eval.json", {
        "profile": profile.name,
        "judged": matrix,
    })

    repair_lines = [
        f"{report.scenario}: repaired_total="
        f"{report.counters.get('repaired_total', 0)} "
        f"born_legal_total={report.counters.get('born_legal_total', 0)}"
        for report in reports
    ]
    emit(
        "BENCH judged evaluation (per-scenario x per-dimension)",
        format_matrix(reports) + "\n" + "\n".join(repair_lines),
    )

    assert matrix["dimensions"] == list(REQUIRED_DIMENSIONS)
    rows = matrix["scenarios"]
    assert REQUIRED_SCENARIOS <= set(rows)
    for name, row in rows.items():
        assert row["examples"] > 0, f"scenario {name} judged nothing"
        for dimension in REQUIRED_DIMENSIONS:
            assert 0.0 <= row["dimensions"][dimension] <= 1.0

    # the pipeline verifies+repairs before answering, so the gold-free
    # dimensions must clear a floor even when tree match is low
    for name, row in rows.items():
        assert row["dimensions"]["validity"] >= 0.5, (
            f"{name}: most answers should render through both backends"
        )
        assert row["dimensions"]["legality"] >= 0.5, (
            f"{name}: most answers should satisfy the Table-1 rules"
        )
