"""Tracing overhead harness (``BENCH_obs.json`` trajectory).

Builds the same benchmark three ways — untraced (``tracer=None``), with
a *disabled* tracer wired through every hot path, and fully traced with
a JSONL exporter — asserts that all three produce the identical pair
list, and records the overhead trajectory to ``results/BENCH_obs.json``.

The design budget for the disabled path is **<2 %** (it short-circuits
to a shared no-op span before touching any tracing machinery); the
assertion bound here is deliberately looser (best-of-3, <10 %) so a
noisy CI machine cannot flake it, while the measured number is always
recorded in the trajectory for trend tracking.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.obs import JsonlExporter, Tracer, load_spans
from repro.spider.corpus import CorpusConfig, build_spider_corpus

from conftest import emit, results_path

DEFAULT_CORPUS = CorpusConfig(
    num_databases=5, pairs_per_database=10, row_scale=1.0, seed=7
)
QUICK_CORPUS = CorpusConfig(
    num_databases=4, pairs_per_database=8, row_scale=1.5, seed=7
)

#: the documented overhead budget for the disabled path
DISABLED_BUDGET = 0.02
#: the asserted bound — lenient so machine noise cannot flake CI
DISABLED_ASSERT_BOUND = 0.10


def _corpus_config() -> CorpusConfig:
    return (
        QUICK_CORPUS
        if os.environ.get("REPRO_BENCH_PROFILE") == "quick"
        else DEFAULT_CORPUS
    )


def _config() -> NVBenchConfig:
    return NVBenchConfig(filter_training_pairs=20, seed=7)


def _best_of(n, build):
    """(best_seconds, last_result) over *n* runs of *build()*."""
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = build()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_tracing_overhead_and_fidelity(tmp_path):
    corpus = build_spider_corpus(_corpus_config())
    trace_file = tmp_path / "build.jsonl"

    untraced_s, untraced = _best_of(
        5, lambda: build_nvbench(corpus=corpus, config=_config())
    )
    disabled_s, disabled = _best_of(
        5,
        lambda: build_nvbench(
            corpus=corpus, config=_config(), tracer=Tracer(enabled=False)
        ),
    )

    exporter = JsonlExporter(str(trace_file))
    enabled_s, enabled = _best_of(
        1,
        lambda: build_nvbench(
            corpus=corpus, config=_config(), tracer=Tracer(exporter=exporter)
        ),
    )
    exporter.close()
    spans = load_spans(str(trace_file))

    # Tracing must never change the benchmark, on or off.
    assert disabled.pairs == untraced.pairs
    assert enabled.pairs == untraced.pairs
    assert any(record["name"] == "build_nvbench" for record in spans)
    assert sum(1 for record in spans if record["name"] == "pair") == len(
        corpus.pairs
    )

    disabled_overhead = disabled_s / untraced_s - 1.0
    enabled_overhead = enabled_s / untraced_s - 1.0
    trajectory = {
        "commit": os.environ.get("GITHUB_SHA", "local"),
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "standard"),
        "input_pairs": len(corpus.pairs),
        "untraced_seconds": untraced_s,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "disabled_budget": DISABLED_BUDGET,
        "spans_exported": len(spans),
    }
    results_path("BENCH_obs.json").write_text(json.dumps(trajectory, indent=2))

    emit(
        "BENCH tracing overhead",
        f"untraced          {untraced_s:7.3f}s\n"
        f"tracer disabled   {disabled_s:7.3f}s  ({disabled_overhead:+7.2%})\n"
        f"tracer enabled    {enabled_s:7.3f}s  ({enabled_overhead:+7.2%}, "
        f"{len(spans)} spans)\n"
        f"disabled budget   {DISABLED_BUDGET:.0%} "
        f"(asserted < {DISABLED_ASSERT_BOUND:.0%} best-of-3)",
    )

    assert disabled_overhead < DISABLED_ASSERT_BOUND, (
        f"disabled tracer cost {disabled_overhead:.1%} "
        f"(budget {DISABLED_BUDGET:.0%}, bound {DISABLED_ASSERT_BOUND:.0%})"
    )
