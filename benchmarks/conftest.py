"""Shared state for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation has one benchmark file;
they share a session-scoped benchmark build and session-scoped trained
models, so `pytest benchmarks/ --benchmark-only` regenerates the whole
evaluation in one pass.

Two profiles (env var ``REPRO_BENCH_PROFILE``):

* ``standard`` (default) — a ~2,000-pair benchmark and fully trained
  models; the whole suite takes tens of minutes on CPU and reproduces
  the paper's shapes.
* ``quick`` — miniature sizes for smoke-testing the harness (~3 min).

Each benchmark prints its paper-style table and also appends it to
``benchmarks/results/summary.txt`` so the output survives pytest's
capture.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.core.nvbench import NVBench, NVBenchConfig, build_nvbench
from repro.eval.crowd import HumanStudySimulator, StudyConfig, StudyResult
from repro.eval.harness import (
    EvaluationReport,
    ExperimentConfig,
    train_and_evaluate,
)
from repro.neural.model import Seq2Vis
from repro.neural.trainer import TrainConfig
from repro.spider.corpus import CorpusConfig

RESULTS_DIR = Path(__file__).parent / "results"


def results_path(name: str) -> Path:
    """Canonical location of a benchmark artifact under ``results/``.

    Every ``BENCH_*.json`` trajectory and ``summary.txt`` lives in this
    one directory — the layout is documented in ``benchmarks/README.md``
    and consumed by the CI artifact-upload steps.  Creates the directory
    on first use.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / name


@dataclass(frozen=True)
class BenchProfile:
    name: str
    num_databases: int
    pairs_per_database: int
    row_scale: float
    hidden_dim: int
    embed_dim: int
    epochs: int
    batch_size: int
    injection_pair_budget: int
    injection_epochs: int
    injection_hidden: int
    covid_epochs: int


PROFILES = {
    "standard": BenchProfile(
        name="standard",
        num_databases=30,
        pairs_per_database=16,
        row_scale=0.5,
        hidden_dim=96,
        embed_dim=56,
        epochs=24,
        batch_size=24,
        injection_pair_budget=900,
        injection_epochs=10,
        injection_hidden=64,
        covid_epochs=24,
    ),
    "quick": BenchProfile(
        name="quick",
        num_databases=10,
        pairs_per_database=8,
        row_scale=0.4,
        hidden_dim=48,
        embed_dim=32,
        epochs=5,
        batch_size=16,
        injection_pair_budget=250,
        injection_epochs=3,
        injection_hidden=40,
        covid_epochs=5,
    ),
}


def merge_result(name: str, updates: dict) -> dict:
    """Read-merge-write a ``results/`` JSON artifact.

    ``BENCH_eval.json`` is shared by the accuracy@k and judged-matrix
    benchmarks; merging (instead of overwriting) lets each test own its
    top-level keys regardless of run order.  A corrupt or missing file
    starts fresh.  Returns the merged payload.
    """
    path = results_path(name)
    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                data = loaded
        except json.JSONDecodeError:
            data = {}
    data.update(updates)
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
    return data


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(results_path("summary.txt"), "a") as handle:
        handle.write(banner)


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    name = os.environ.get("REPRO_BENCH_PROFILE", "standard")
    if name not in PROFILES:
        raise ValueError(f"unknown REPRO_BENCH_PROFILE {name!r}")
    return PROFILES[name]


@pytest.fixture(scope="session")
def bench(profile: BenchProfile) -> NVBench:
    """The session's nvBench-style benchmark."""
    config = NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=profile.num_databases,
            pairs_per_database=profile.pairs_per_database,
            row_scale=profile.row_scale,
            seed=7,
        ),
        filter_training_pairs=80,
        seed=7,
    )
    return build_nvbench(config=config)


@pytest.fixture(scope="session")
def study(bench: NVBench) -> StudyResult:
    """The simulated expert/crowd validation study over the benchmark."""
    simulator = HumanStudySimulator(StudyConfig(sample_fraction=0.25, seed=17))
    return simulator.run(bench.pairs)


@pytest.fixture(scope="session")
def experiment_config(profile: BenchProfile) -> ExperimentConfig:
    return ExperimentConfig(
        embed_dim=profile.embed_dim,
        hidden_dim=profile.hidden_dim,
        train=TrainConfig(
            epochs=profile.epochs,
            batch_size=profile.batch_size,
            lr=5e-3,
            clip_norm=5.0,
            patience=5,
        ),
    )


@pytest.fixture(scope="session")
def trained_models(
    bench: NVBench, experiment_config: ExperimentConfig
) -> Dict[str, Tuple[Seq2Vis, EvaluationReport]]:
    """All three seq2vis variants, trained once and shared by the
    Figure 17 / Table 4 / Table 5 benchmarks."""
    models: Dict[str, Tuple[Seq2Vis, EvaluationReport]] = {}
    for variant in ("basic", "attention", "copy"):
        models[variant] = train_and_evaluate(bench, variant, experiment_config)
    return models
