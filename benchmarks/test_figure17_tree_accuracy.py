"""Figure 17: vis tree matching accuracy of the three seq2vis variants.

Paper shape: seq2vis+attention is best on average (65.69% — "matches the
state of the art of nl2sql"), copying beats basic overall (+7.97% in the
paper), and accuracy degrades from easy to (extra) hard, with sparse
type × hardness cells behaving noisily.
"""

from conftest import emit

from repro.core.hardness import HARDNESS_LEVELS
from repro.grammar.ast_nodes import VIS_TYPES


def test_figure17_tree_matching_accuracy(benchmark, trained_models, profile):
    reports = benchmark.pedantic(
        lambda: {variant: report for variant, (_, report) in trained_models.items()},
        rounds=1,
        iterations=1,
    )

    lines = ["(a) overall vis tree matching accuracy:"]
    for variant, report in reports.items():
        lines.append(
            f"    seq2vis {variant:10s}: {report.tree_accuracy:.1%} "
            f"(result matching: {report.result_accuracy:.1%})"
        )
    lines.append("    (paper: attention best at 65.69%)")

    lines.append("(b) accuracy by hardness:")
    for variant, report in reports.items():
        by_hardness = report.tree_accuracy_by_hardness()
        lines.append(
            f"    {variant:10s}: "
            + "  ".join(f"{h}: {by_hardness.get(h, 0.0):.1%}" for h in HARDNESS_LEVELS)
        )

    lines.append("(c)-(e) accuracy by vis type:")
    for variant, report in reports.items():
        by_type = report.tree_accuracy_by_type()
        lines.append(
            f"    {variant:10s}: "
            + "  ".join(f"{t}: {v:.1%}" for t, v in by_type.items())
        )
    emit("Figure 17 — seq2vis tree matching accuracy", "\n".join(lines))

    lines = ["error analysis (dominant wrong-prediction categories):"]
    for variant, report in reports.items():
        counts = report.error_analysis().category_counts().most_common(3)
        lines.append(f"    {variant:10s}: " + "  ".join(f"{c}:{n}" for c, n in counts))
    emit("Figure 17 (cont.) — error analysis", "\n".join(lines))

    if profile.name != "standard":
        return  # quick profile smoke-tests the harness, not the model
    attention = reports["attention"]
    basic = reports["basic"]
    copy = reports["copy"]
    # Attention beats the basic encoder-decoder decisively (paper's
    # ordering).  NOTE: on this synthetic corpus the copy variant can
    # exceed attention — schema-token copying dominates when column
    # names carry most of the output; EXPERIMENTS.md discusses this
    # deviation from the paper's exact ordering.
    assert attention.tree_accuracy >= basic.tree_accuracy + 0.10
    assert copy.tree_accuracy >= basic.tree_accuracy + 0.10
    # The attention model genuinely learns the task (paper: 65.7%).
    assert attention.tree_accuracy > 0.25
    # Result matching is at least as forgiving as tree matching.
    for report in reports.values():
        assert report.result_accuracy >= report.tree_accuracy - 0.02
