"""Figure 8: distributions of per-table column and row counts.

Paper shape: most tables have fewer than 5 columns (8a) and most tables
are small, 5-100 rows (8b).
"""

from conftest import emit

from repro.stats.dataset_stats import column_count_histogram, row_count_histogram


def test_figure8_column_and_row_distributions(benchmark, bench):
    columns, rows = benchmark.pedantic(
        lambda: (
            column_count_histogram(bench.corpus),
            row_count_histogram(bench.corpus),
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["(a) #columns per table:"]
    lines += [f"    {label:>8s}: {count}" for label, count in columns.items()]
    lines += ["(b) #rows per table:"]
    lines += [f"    {label:>8s}: {count}" for label, count in rows.items()]
    emit("Figure 8 — column/row distributions", "\n".join(lines))

    total = sum(columns.values())
    # Narrow tables dominate (paper Figure 8a: most tables < 5 columns;
    # ours carry a pk + FK overhead, so the mass sits in 4-7).
    small_column_share = (columns["2-3"] + columns["4-5"] + columns["6-7"]) / total
    assert small_column_share > 0.6
    assert columns["11+"] < total * 0.2
    # Most tables land in the 5-100 row band (Figure 8b).
    mid_rows = rows["6-20"] + rows["21-100"]
    assert mid_rows / sum(rows.values()) > 0.4
