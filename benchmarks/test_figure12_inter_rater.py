"""Figure 12: inter-rater reliability on 50 overlap pairs (task T2).

Paper shape: 22/50 pairs fully agree, most of the rest differ by at most
one Likert step, and only a couple of pairs show a spread of two.
"""

from conftest import emit

from repro.eval.crowd import interrater_sample


def test_figure12_inter_rater_reliability(benchmark, study):
    sample = benchmark.pedantic(
        lambda: interrater_sample(study, sample=50), rounds=1, iterations=1
    )

    fully = mainly = disagree = 0
    for _, ratings in sample:
        spread = max(ratings) - min(ratings)
        if spread == 0:
            fully += 1
        elif spread == 1:
            mainly += 1
        else:
            disagree += 1
    lines = [
        f"overlap pairs: {len(sample)}",
        f"fully agree (spread 0): {fully}   (paper: 22)",
        f"mainly agree (spread 1): {mainly}",
        f"spread >= 2: {disagree}   (paper: 2)",
        "sample boxplot data (x, ratings): "
        + "  ".join(f"{x}:{sorted(r)}" for x, r in sample[:8]),
    ]
    emit("Figure 12 — inter-rater reliability (T2)", "\n".join(lines))

    assert fully + mainly >= disagree * 2, "raters should mostly agree"
    assert fully >= 5
