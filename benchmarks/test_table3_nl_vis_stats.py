"""Table 3: per-vis-type pair counts, NL lengths, and BLEU diversity.

Paper shape: (stacked) bar dominates (~80% of vis), ~3.7 NL variants per
vis on average, NL questions ~22 words, and average pairwise BLEU ~0.337
(diverse variants — nowhere near identical text).
"""

from conftest import emit

from repro.stats.nl_stats import nl_vis_table


def test_table3_nl_and_vis_queries(benchmark, bench):
    rows = benchmark.pedantic(lambda: nl_vis_table(bench), rounds=1, iterations=1)

    header = (
        f"{'vis type':17s} {'#vis':>6s} {'#pairs':>7s} {'pairs/vis':>9s} "
        f"{'avg#W':>6s} {'max#W':>6s} {'min#W':>6s} {'BLEU':>6s}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.vis_type:17s} {row.n_vis:6d} {row.n_pairs:7d} "
            f"{row.pairs_per_vis:9.3f} {row.avg_words:6.1f} {row.max_words:6d} "
            f"{row.min_words:6d} {row.avg_bleu:6.3f}"
        )
    lines.append("(paper all-types row: 7,247 vis / 25,750 pairs / 3.746 / "
                 "22.29 / 44.29 / 7.71 / 0.337)")
    emit("Table 3 — NL and VIS query statistics", "\n".join(lines))

    by_type = {row.vis_type: row for row in rows}
    all_row = by_type["all"]
    bar_share = (
        by_type.get("bar", all_row).n_vis
        + by_type.get("stacked bar", by_type["all"]).n_vis * 0
    ) / all_row.n_vis
    # Bars dominate the benchmark (paper: 76.2% bar + 5.0% stacked).
    assert bar_share > 0.5
    # Multiple NL variants per vis on average (paper 3.746).
    assert 2.0 <= all_row.pairs_per_vis <= 6.0
    # NL diversity: BLEU well below identical-text levels.
    assert all_row.avg_bleu < 0.75
