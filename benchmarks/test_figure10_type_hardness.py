"""Figure 10: distribution of visualizations across type × hardness.

Paper shape: medium is the most common hardness (38.64%), and the bar
family holds the largest share at every hardness level.
"""

from collections import Counter

from conftest import emit

from repro.core.hardness import HARDNESS_LEVELS
from repro.grammar.ast_nodes import VIS_TYPES


def test_figure10_type_vs_hardness(benchmark, bench):
    matrix = benchmark.pedantic(bench.type_hardness_matrix, rounds=1, iterations=1)

    header = f"{'vis type':17s} " + " ".join(f"{h:>11s}" for h in HARDNESS_LEVELS)
    lines = [header]
    for vis_type in VIS_TYPES:
        row = [matrix.get((vis_type, hardness), 0) for hardness in HARDNESS_LEVELS]
        if sum(row) == 0:
            continue
        lines.append(f"{vis_type:17s} " + " ".join(f"{c:11d}" for c in row))
    totals = Counter()
    for (vis_type, hardness), count in matrix.items():
        totals[hardness] += count
    total = sum(totals.values())
    lines.append(
        "hardness shares: "
        + "  ".join(f"{h}: {totals.get(h, 0) / total:.1%}" for h in HARDNESS_LEVELS)
        + "   (paper: medium largest at 38.64%)"
    )
    emit("Figure 10 — vis types vs hardness", "\n".join(lines))

    # Medium is the most common hardness, as in the paper.
    assert totals["medium"] == max(totals.values())
    # Bars dominate overall.
    bar_total = sum(
        count for (vis_type, _), count in matrix.items()
        if vis_type in ("bar", "stacked bar")
    )
    assert bar_total / total > 0.5
    # Extra hard is the rarest populated tier.
    assert totals["extra hard"] <= totals["medium"]
    assert totals["extra hard"] <= totals["hard"]
