"""Inference-service performance harness (`BENCH_serve.json` trajectory).

Runs the same request list against two live servers over real sockets:

* **unbatched** — ``max_batch_size=1``: every request pays its own
  forward pass, the seed-equivalent serving cost;
* **batched** — ``max_batch_size=8``: concurrent requests coalesce into
  one padded forward pass.

Both servers run with the response cache disabled so every request hits
the model.  Asserts the batched responses are bit-identical to a serial
``translate_question`` reference (batching must never change outputs)
and that batching raises throughput, then writes
``results/BENCH_serve.json`` with p50/p99 latency, rps, and the realized
batch-size distribution so the trajectory can be compared across
commits.
"""

from __future__ import annotations

import json
import os

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.neural.data import build_dataset
from repro.neural.model import Seq2Vis
from repro.serve import (
    BackgroundServer,
    InferenceServer,
    LoadGenerator,
    ModelRegistry,
    NeuralTranslator,
    ServerConfig,
    translate_question,
)
from repro.spider.corpus import CorpusConfig

from conftest import emit, results_path

QUESTION_STEMS = [
    "how many rows per category",
    "show the average price by type",
    "total amount for each name sorted descending",
    "plot a pie of counts per status",
    "what is the number of items per year",
    "compare the minimum score across groups",
    "show the maximum value for each label",
    "count the records grouped by kind",
]


def _load_report(server: InferenceServer, requests) -> tuple:
    """Run the load generator against *server*; returns (report, bodies,
    metrics snapshot)."""
    with BackgroundServer(server) as background:
        client = background.client()
        generator = LoadGenerator(client, concurrency=8)
        report, responses = generator.run(requests)
        metrics = client.metrics()
    return report, responses, metrics


def test_batched_serving_throughput():
    quick = os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    corpus_config = CorpusConfig(
        num_databases=4 if quick else 6,
        pairs_per_database=8,
        row_scale=0.4,
        seed=7,
    )
    bench = build_nvbench(config=NVBenchConfig(corpus=corpus_config, seed=7))
    dataset = build_dataset(bench.pairs[:80], bench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=11,
    )
    db_names = sorted(bench.databases)

    n_requests = 32 if quick else 64
    requests = [
        {
            "question": f"{QUESTION_STEMS[i % len(QUESTION_STEMS)]} ({i})",
            "db": db_names[i % len(db_names)],
            "use_cache": False,
        }
        for i in range(n_requests)
    ]
    reference = [
        translate_question(
            model, dataset.in_vocab, dataset.out_vocab,
            request["question"], bench.databases[request["db"]],
        )
        for request in requests
    ]

    def make_server(max_batch_size: int) -> InferenceServer:
        registry = ModelRegistry()
        registry.register(
            "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        return InferenceServer(
            registry,
            bench.databases,
            ServerConfig(
                port=0,
                max_batch_size=max_batch_size,
                flush_interval=0.01,
                cache_size=0,
            ),
        )

    unbatched_report, unbatched_responses, _ = _load_report(
        make_server(1), requests
    )
    batched_report, batched_responses, batched_metrics = _load_report(
        make_server(8), requests
    )

    assert unbatched_report.errors == 0, unbatched_report.by_status
    assert batched_report.errors == 0, batched_report.by_status
    # Batching must never change what the model predicts.
    for request, response, expected in zip(
        requests, batched_responses, reference
    ):
        assert response["tokens"] == expected.tokens, request
        assert response["vis"] == expected.vis_text
    for response, expected in zip(unbatched_responses, reference):
        assert response["tokens"] == expected.tokens

    speedup = (
        batched_report.rps / unbatched_report.rps
        if unbatched_report.rps
        else 0.0
    )
    trajectory = {
        "requests": n_requests,
        "concurrency": 8,
        "databases": len(bench.databases),
        "unbatched": unbatched_report.to_json(),
        "batched": batched_report.to_json(),
        "speedup": speedup,
        "avg_batch_size": batched_metrics["avg_batch_size"],
        "batch_size_buckets": batched_metrics["batch_size"]["buckets"],
    }
    results_path("BENCH_serve.json").write_text(
        json.dumps(trajectory, indent=2)
    )

    emit(
        "BENCH serving throughput",
        f"unbatched  {unbatched_report.rps:7.1f} rps  "
        f"p50 {unbatched_report.p50_ms:6.1f}ms  "
        f"p99 {unbatched_report.p99_ms:6.1f}ms\n"
        f"batched    {batched_report.rps:7.1f} rps  "
        f"p50 {batched_report.p50_ms:6.1f}ms  "
        f"p99 {batched_report.p99_ms:6.1f}ms\n"
        f"speedup    {speedup:7.2f}x\n"
        f"avg batch  {trajectory['avg_batch_size']:7.2f}",
    )

    assert batched_metrics["avg_batch_size"] > 1.0, (
        "micro-batcher never coalesced anything"
    )
    assert speedup > 1.0, (
        f"batched serving only {speedup:.2f}x the unbatched throughput"
    )
