"""Inference-service performance harness (`BENCH_serve.json` trajectory).

Runs the same request list against two live servers over real sockets:

* **unbatched** — ``max_batch_size=1``: every request pays its own
  forward pass, the seed-equivalent serving cost;
* **batched** — ``max_batch_size=8``: concurrent requests coalesce into
  one padded forward pass.

Both servers run with the response cache disabled so every request hits
the model.  Asserts the batched responses are bit-identical to a serial
``translate_question`` reference (batching must never change outputs)
and that batching raises throughput.

``test_decode_matrix`` then profiles the decode fast path itself:
greedy vs beam-4 decoding at float32 / float16 / int8 weight precision
(the ``quick`` CI profile runs greedy-float32 plus one quantized beam
config), and pins the headline claim — the vectorized batched beam must
be at least 3x the per-example beam's throughput while staying
token-identical.

Both tests read-modify-write ``results/BENCH_serve.json`` so the
batching trajectory and the decode matrix land in one artifact
regardless of which test (or ``-k`` subset) ran.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.neural.data import build_dataset
from repro.neural.model import Seq2Vis
from repro.neural.quantize import quantized_copy, storage_report
from repro.serve import (
    BackgroundServer,
    DecodeConfig,
    InferenceServer,
    LoadGenerator,
    ModelRegistry,
    NeuralTranslator,
    ServerConfig,
    translate_batch,
    translate_question,
)
from repro.spider.corpus import CorpusConfig

from conftest import emit, results_path


def _merge_trajectory(update: dict) -> None:
    """Fold *update* into ``results/BENCH_serve.json`` without clobbering
    keys another test in this file already wrote."""
    path = results_path("BENCH_serve.json")
    doc: dict = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc.update(update)
    path.write_text(json.dumps(doc, indent=2))

QUESTION_STEMS = [
    "how many rows per category",
    "show the average price by type",
    "total amount for each name sorted descending",
    "plot a pie of counts per status",
    "what is the number of items per year",
    "compare the minimum score across groups",
    "show the maximum value for each label",
    "count the records grouped by kind",
]


def _load_report(server: InferenceServer, requests) -> tuple:
    """Run the load generator against *server*; returns (report, bodies,
    metrics snapshot)."""
    with BackgroundServer(server) as background:
        client = background.client()
        generator = LoadGenerator(client, concurrency=8)
        report, responses = generator.run(requests)
        metrics = client.metrics()
    return report, responses, metrics


def test_batched_serving_throughput():
    quick = os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    corpus_config = CorpusConfig(
        num_databases=4 if quick else 6,
        pairs_per_database=8,
        row_scale=0.4,
        seed=7,
    )
    bench = build_nvbench(config=NVBenchConfig(corpus=corpus_config, seed=7))
    dataset = build_dataset(bench.pairs[:80], bench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=11,
    )
    db_names = sorted(bench.databases)

    n_requests = 32 if quick else 64
    requests = [
        {
            "question": f"{QUESTION_STEMS[i % len(QUESTION_STEMS)]} ({i})",
            "db": db_names[i % len(db_names)],
            "use_cache": False,
        }
        for i in range(n_requests)
    ]
    reference = [
        translate_question(
            model, dataset.in_vocab, dataset.out_vocab,
            request["question"], bench.databases[request["db"]],
        )
        for request in requests
    ]

    def make_server(max_batch_size: int) -> InferenceServer:
        registry = ModelRegistry()
        registry.register(
            "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        return InferenceServer(
            registry,
            bench.databases,
            ServerConfig(
                port=0,
                max_batch_size=max_batch_size,
                flush_interval=0.01,
                cache_size=0,
            ),
        )

    unbatched_report, unbatched_responses, _ = _load_report(
        make_server(1), requests
    )
    batched_report, batched_responses, batched_metrics = _load_report(
        make_server(8), requests
    )

    assert unbatched_report.errors == 0, unbatched_report.by_status
    assert batched_report.errors == 0, batched_report.by_status
    # Batching must never change what the model predicts.
    for request, response, expected in zip(
        requests, batched_responses, reference
    ):
        assert response["tokens"] == expected.tokens, request
        assert response["vis"] == expected.vis_text
    for response, expected in zip(unbatched_responses, reference):
        assert response["tokens"] == expected.tokens

    speedup = (
        batched_report.rps / unbatched_report.rps
        if unbatched_report.rps
        else 0.0
    )
    trajectory = {
        "requests": n_requests,
        "concurrency": 8,
        "databases": len(bench.databases),
        "unbatched": unbatched_report.to_json(),
        "batched": batched_report.to_json(),
        "speedup": speedup,
        "avg_batch_size": batched_metrics["avg_batch_size"],
        "batch_size_buckets": batched_metrics["batch_size"]["buckets"],
    }
    _merge_trajectory(trajectory)

    emit(
        "BENCH serving throughput",
        f"unbatched  {unbatched_report.rps:7.1f} rps  "
        f"p50 {unbatched_report.p50_ms:6.1f}ms  "
        f"p99 {unbatched_report.p99_ms:6.1f}ms\n"
        f"batched    {batched_report.rps:7.1f} rps  "
        f"p50 {batched_report.p50_ms:6.1f}ms  "
        f"p99 {batched_report.p99_ms:6.1f}ms\n"
        f"speedup    {speedup:7.2f}x\n"
        f"avg batch  {trajectory['avg_batch_size']:7.2f}",
    )

    assert batched_metrics["avg_batch_size"] > 1.0, (
        "micro-batcher never coalesced anything"
    )
    assert speedup > 1.0, (
        f"batched serving only {speedup:.2f}x the unbatched throughput"
    )

def test_decode_matrix():
    """Greedy vs beam-4 at float32/float16/int8, plus the batched-beam
    headline: >= 3x the per-example beam's throughput, token-identical."""
    quick = os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    corpus_config = CorpusConfig(
        num_databases=4 if quick else 6,
        pairs_per_database=8,
        row_scale=0.4,
        seed=7,
    )
    bench = build_nvbench(config=NVBenchConfig(corpus=corpus_config, seed=7))
    dataset = build_dataset(bench.pairs[:80], bench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=11, dtype="float32",
    )
    db_names = sorted(bench.databases)
    n_requests = 16 if quick else 32
    requests = [
        (
            f"{QUESTION_STEMS[i % len(QUESTION_STEMS)]} ({i})",
            bench.databases[db_names[i % len(db_names)]],
        )
        for i in range(n_requests)
    ]

    greedy = DecodeConfig()
    beam4 = DecodeConfig(beam_width=4)
    if quick:
        # CI smoke: the seed config plus one quantized beam config.
        configs = [("float32", greedy), ("int8", beam4)]
    else:
        configs = [
            (precision, decode)
            for decode in (greedy, beam4)
            for precision in ("float32", "float16", "int8")
        ]

    models = {"float32": model}
    for precision in {p for p, _ in configs} - {"float32"}:
        models[precision] = quantized_copy(model, precision)

    baseline_tokens: dict = {}
    matrix: dict = {}
    lines = []
    for precision, decode in configs:
        served = models[precision]
        run = lambda: translate_batch(  # noqa: E731
            served, dataset.in_vocab, dataset.out_vocab, requests,
            decode=decode,
        )
        results = run()  # warm-up (and the output we check)
        elapsed = []
        for _ in range(3):
            start = time.perf_counter()
            run()
            elapsed.append(time.perf_counter() - start)
        best = min(elapsed)
        tokens = [r.tokens for r in results]
        tag = decode.cache_tag()
        baseline_tokens.setdefault(tag, tokens)
        agreement = sum(
            a == b for a, b in zip(tokens, baseline_tokens[tag])
        ) / n_requests
        compression = (
            storage_report(served)["compression"]
            if precision != "float32" else 1.0
        )
        matrix[f"{tag}/{precision}"] = {
            "p50_ms_per_request": best / n_requests * 1000.0,
            "rps": n_requests / best,
            "agreement_vs_float32": agreement,
            "compression": compression,
        }
        lines.append(
            f"{tag:8s} {precision:8s} "
            f"{n_requests / best:7.1f} rps  "
            f"{best / n_requests * 1000.0:6.2f} ms/req  "
            f"agree {agreement:5.1%}  store {compression:.1f}x"
        )

    # ----- batched beam vs the per-example reference -------------------
    from repro.neural.data import encode_source_batch
    from repro.serve import source_tokens

    token_lists = [
        source_tokens(question, database) for question, database in requests
    ]
    batch = encode_source_batch(
        token_lists, dataset.in_vocab, dataset.out_vocab
    )
    vocab = dataset.out_vocab

    start = time.perf_counter()
    sequential = model.beam_decode(
        batch, vocab.bos_id, vocab.eos_id, beam_width=4
    )
    sequential_s = time.perf_counter() - start

    batched_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=4
        )
        batched_s = min(batched_s, time.perf_counter() - start)

    assert batched == sequential, (
        "vectorized batched beam diverged from the per-example reference"
    )
    beam_speedup = sequential_s / batched_s if batched_s else 0.0

    _merge_trajectory({
        "decode_matrix": matrix,
        "beam_batch_speedup": beam_speedup,
        "beam_sequential_rps": n_requests / sequential_s,
        "beam_batched_rps": n_requests / batched_s,
    })

    emit(
        "BENCH decode matrix",
        "\n".join(lines)
        + f"\nbatched beam-4 speedup {beam_speedup:6.2f}x "
        f"({n_requests / sequential_s:.1f} -> "
        f"{n_requests / batched_s:.1f} seq/s)",
    )

    assert beam_speedup >= 3.0, (
        f"batched beam-4 only {beam_speedup:.2f}x the per-example beam"
    )
