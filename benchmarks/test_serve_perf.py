"""Inference-service performance harness (`BENCH_serve.json` trajectory).

Runs the same request list against two live servers over real sockets:

* **unbatched** — ``max_batch_size=1``: every request pays its own
  forward pass, the seed-equivalent serving cost;
* **batched** — ``max_batch_size=8``: concurrent requests coalesce into
  one padded forward pass.

Both servers run with the response cache disabled so every request hits
the model.  Asserts the batched responses are bit-identical to a serial
``translate_question`` reference (batching must never change outputs)
and that batching raises throughput.

``test_decode_matrix`` then profiles the decode fast path itself:
greedy vs beam-4 decoding at float32 / float16 / int8 weight precision
(the ``quick`` CI profile runs greedy-float32 plus one quantized beam
config), and pins the headline claim — the vectorized batched beam must
be at least 3x the per-example beam's throughput while staying
token-identical.

``test_multi_worker_matrix`` scales out instead of up: the same load
replayed against the multi-process :class:`WorkerPool` at 1/2/4/8
workers (greedy and beam at the standard profile), asserting outputs
stay bit-identical to the serial reference, resident weight bytes stay
O(1) in the worker count (one shared segment), and a rolling hot-swap
under load completes with zero failed requests.  The 4-worker >= 2.5x
throughput assertion requires >= 4 cores — single-core CI records the
curve without asserting scaling.

All tests read-modify-write ``results/BENCH_serve.json`` so the
batching trajectory, the decode matrix, and the multi-worker matrix
land in one artifact regardless of which test (or ``-k`` subset) ran.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.neural.data import build_dataset
from repro.neural.model import Seq2Vis
from repro.neural.quantize import quantized_copy, storage_report
from repro.serve import (
    BackgroundServer,
    DecodeConfig,
    InferenceServer,
    LoadGenerator,
    ModelRegistry,
    NeuralTranslator,
    PoolConfig,
    ServerConfig,
    WorkerPool,
    translate_batch,
    translate_question,
)
from repro.spider.corpus import CorpusConfig

from conftest import emit, results_path


def _merge_trajectory(update: dict) -> None:
    """Fold *update* into ``results/BENCH_serve.json`` without clobbering
    keys another test in this file already wrote."""
    path = results_path("BENCH_serve.json")
    doc: dict = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc.update(update)
    path.write_text(json.dumps(doc, indent=2))

QUESTION_STEMS = [
    "how many rows per category",
    "show the average price by type",
    "total amount for each name sorted descending",
    "plot a pie of counts per status",
    "what is the number of items per year",
    "compare the minimum score across groups",
    "show the maximum value for each label",
    "count the records grouped by kind",
]


def _load_report(server: InferenceServer, requests) -> tuple:
    """Run the load generator against *server*; returns (report, bodies,
    metrics snapshot)."""
    with BackgroundServer(server) as background:
        client = background.client()
        generator = LoadGenerator(client, concurrency=8)
        report, responses = generator.run(requests)
        metrics = client.metrics()
    return report, responses, metrics


def test_batched_serving_throughput():
    quick = os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    corpus_config = CorpusConfig(
        num_databases=4 if quick else 6,
        pairs_per_database=8,
        row_scale=0.4,
        seed=7,
    )
    bench = build_nvbench(config=NVBenchConfig(corpus=corpus_config, seed=7))
    dataset = build_dataset(bench.pairs[:80], bench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=11,
    )
    db_names = sorted(bench.databases)

    n_requests = 32 if quick else 64
    requests = [
        {
            "question": f"{QUESTION_STEMS[i % len(QUESTION_STEMS)]} ({i})",
            "db": db_names[i % len(db_names)],
            "use_cache": False,
        }
        for i in range(n_requests)
    ]
    reference = [
        translate_question(
            model, dataset.in_vocab, dataset.out_vocab,
            request["question"], bench.databases[request["db"]],
        )
        for request in requests
    ]

    def make_server(max_batch_size: int) -> InferenceServer:
        registry = ModelRegistry()
        registry.register(
            "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        return InferenceServer(
            registry,
            bench.databases,
            ServerConfig(
                port=0,
                max_batch_size=max_batch_size,
                flush_interval=0.01,
                cache_size=0,
            ),
        )

    unbatched_report, unbatched_responses, _ = _load_report(
        make_server(1), requests
    )
    batched_report, batched_responses, batched_metrics = _load_report(
        make_server(8), requests
    )

    assert unbatched_report.errors == 0, unbatched_report.by_status
    assert batched_report.errors == 0, batched_report.by_status
    # Batching must never change what the model predicts.
    for request, response, expected in zip(
        requests, batched_responses, reference
    ):
        assert response["tokens"] == expected.tokens, request
        assert response["vis"] == expected.vis_text
    for response, expected in zip(unbatched_responses, reference):
        assert response["tokens"] == expected.tokens

    speedup = (
        batched_report.rps / unbatched_report.rps
        if unbatched_report.rps
        else 0.0
    )
    trajectory = {
        "requests": n_requests,
        "concurrency": 8,
        "databases": len(bench.databases),
        "unbatched": unbatched_report.to_json(),
        "batched": batched_report.to_json(),
        "speedup": speedup,
        "avg_batch_size": batched_metrics["avg_batch_size"],
        "batch_size_buckets": batched_metrics["batch_size"]["buckets"],
    }
    _merge_trajectory(trajectory)

    emit(
        "BENCH serving throughput",
        f"unbatched  {unbatched_report.rps:7.1f} rps  "
        f"p50 {unbatched_report.p50_ms:6.1f}ms  "
        f"p99 {unbatched_report.p99_ms:6.1f}ms\n"
        f"batched    {batched_report.rps:7.1f} rps  "
        f"p50 {batched_report.p50_ms:6.1f}ms  "
        f"p99 {batched_report.p99_ms:6.1f}ms\n"
        f"speedup    {speedup:7.2f}x\n"
        f"avg batch  {trajectory['avg_batch_size']:7.2f}",
    )

    assert batched_metrics["avg_batch_size"] > 1.0, (
        "micro-batcher never coalesced anything"
    )
    assert speedup > 1.0, (
        f"batched serving only {speedup:.2f}x the unbatched throughput"
    )

def test_decode_matrix():
    """Greedy vs beam-4 at float32/float16/int8, plus the batched-beam
    headline: >= 3x the per-example beam's throughput, token-identical."""
    quick = os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    corpus_config = CorpusConfig(
        num_databases=4 if quick else 6,
        pairs_per_database=8,
        row_scale=0.4,
        seed=7,
    )
    bench = build_nvbench(config=NVBenchConfig(corpus=corpus_config, seed=7))
    dataset = build_dataset(bench.pairs[:80], bench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=11, dtype="float32",
    )
    db_names = sorted(bench.databases)
    n_requests = 16 if quick else 32
    requests = [
        (
            f"{QUESTION_STEMS[i % len(QUESTION_STEMS)]} ({i})",
            bench.databases[db_names[i % len(db_names)]],
        )
        for i in range(n_requests)
    ]

    greedy = DecodeConfig()
    beam4 = DecodeConfig(beam_width=4)
    if quick:
        # CI smoke: the seed config plus one quantized beam config.
        configs = [("float32", greedy), ("int8", beam4)]
    else:
        configs = [
            (precision, decode)
            for decode in (greedy, beam4)
            for precision in ("float32", "float16", "int8")
        ]

    models = {"float32": model}
    for precision in {p for p, _ in configs} - {"float32"}:
        models[precision] = quantized_copy(model, precision)

    baseline_tokens: dict = {}
    matrix: dict = {}
    lines = []
    for precision, decode in configs:
        served = models[precision]
        run = lambda: translate_batch(  # noqa: E731
            served, dataset.in_vocab, dataset.out_vocab, requests,
            decode=decode,
        )
        results = run()  # warm-up (and the output we check)
        elapsed = []
        for _ in range(3):
            start = time.perf_counter()
            run()
            elapsed.append(time.perf_counter() - start)
        best = min(elapsed)
        tokens = [r.tokens for r in results]
        tag = decode.cache_tag()
        baseline_tokens.setdefault(tag, tokens)
        agreement = sum(
            a == b for a, b in zip(tokens, baseline_tokens[tag])
        ) / n_requests
        compression = (
            storage_report(served)["compression"]
            if precision != "float32" else 1.0
        )
        matrix[f"{tag}/{precision}"] = {
            "p50_ms_per_request": best / n_requests * 1000.0,
            "rps": n_requests / best,
            "agreement_vs_float32": agreement,
            "compression": compression,
        }
        lines.append(
            f"{tag:8s} {precision:8s} "
            f"{n_requests / best:7.1f} rps  "
            f"{best / n_requests * 1000.0:6.2f} ms/req  "
            f"agree {agreement:5.1%}  store {compression:.1f}x"
        )

    # ----- batched beam vs the per-example reference -------------------
    from repro.neural.data import encode_source_batch
    from repro.serve import source_tokens

    token_lists = [
        source_tokens(question, database) for question, database in requests
    ]
    batch = encode_source_batch(
        token_lists, dataset.in_vocab, dataset.out_vocab
    )
    vocab = dataset.out_vocab

    start = time.perf_counter()
    sequential = model.beam_decode(
        batch, vocab.bos_id, vocab.eos_id, beam_width=4
    )
    sequential_s = time.perf_counter() - start

    batched_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=4
        )
        batched_s = min(batched_s, time.perf_counter() - start)

    assert batched == sequential, (
        "vectorized batched beam diverged from the per-example reference"
    )
    beam_speedup = sequential_s / batched_s if batched_s else 0.0

    _merge_trajectory({
        "decode_matrix": matrix,
        "beam_batch_speedup": beam_speedup,
        "beam_sequential_rps": n_requests / sequential_s,
        "beam_batched_rps": n_requests / batched_s,
    })

    emit(
        "BENCH decode matrix",
        "\n".join(lines)
        + f"\nbatched beam-4 speedup {beam_speedup:6.2f}x "
        f"({n_requests / sequential_s:.1f} -> "
        f"{n_requests / batched_s:.1f} seq/s)",
    )

    assert beam_speedup >= 3.0, (
        f"batched beam-4 only {beam_speedup:.2f}x the per-example beam"
    )


def test_multi_worker_matrix():
    """The horizontal-scaling headline: rps/p50 at 1/2/4/8 workers.

    Every pool shares one weight segment, so the recorded
    ``shared_weight_bytes`` must be identical across worker counts (the
    O(1)-resident claim), and every response must be token-identical to
    the serial ``translate_question`` reference.  A rolling hot-swap
    runs under load and must complete with zero failed requests.  The
    >= 2.5x 4-worker throughput assertion only fires on hosts with >= 4
    cores at the standard profile — numpy decode is CPU-bound, so a
    1-core CI slice records the curve without asserting scaling.
    """
    quick = os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    corpus_config = CorpusConfig(
        num_databases=4 if quick else 6,
        pairs_per_database=8,
        row_scale=0.4,
        seed=7,
    )
    bench = build_nvbench(config=NVBenchConfig(corpus=corpus_config, seed=7))
    dataset = build_dataset(bench.pairs[:80], bench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=11, dtype="float32",
    )
    db_names = sorted(bench.databases)
    n_requests = 24 if quick else 48
    worker_counts = [1, 2] if quick else [1, 2, 4, 8]
    decodes = (
        [("greedy", {})]
        if quick
        else [("greedy", {}), ("beam4", {"beam_width": 4})]
    )

    def request_list(extra: dict) -> list:
        return [
            {
                "question": f"{QUESTION_STEMS[i % len(QUESTION_STEMS)]} ({i})",
                "db": db_names[i % len(db_names)],
                "use_cache": False,
                **extra,
            }
            for i in range(n_requests)
        ]

    reference = {
        tag: [
            translate_batch(
                model, dataset.in_vocab, dataset.out_vocab,
                [(r["question"], bench.databases[r["db"]])],
                decode=DecodeConfig(beam_width=extra.get("beam_width", 1)),
            )[0].tokens
            for r in request_list(extra)
        ]
        for tag, extra in decodes
    }

    def make_pool(workers: int) -> WorkerPool:
        pool = WorkerPool(
            bench.databases,
            PoolConfig(
                workers=workers,
                worker=ServerConfig(
                    max_batch_size=8, flush_interval=0.01, cache_size=0
                ),
            ),
        )
        pool.share_model(
            "attn", model, dataset.in_vocab, dataset.out_vocab, default=True
        )
        return pool

    matrix: dict = {}
    shared_bytes_by_workers: dict = {}
    rps: dict = {}
    lines = []
    for workers in worker_counts:
        pool = make_pool(workers)
        with BackgroundServer(pool) as background:
            client = background.client()
            shared_bytes_by_workers[workers] = (
                client.healthz()["weights"]["shared_bytes"]
            )
            for tag, extra in decodes:
                generator = LoadGenerator(client, concurrency=8)
                report, responses = generator.run(request_list(extra))
                assert report.errors == 0, report.by_status
                for response, expected in zip(responses, reference[tag]):
                    assert response["tokens"] == expected, (
                        f"workers={workers} {tag} diverged from the "
                        "single-process reference"
                    )
                matrix[f"workers={workers}/{tag}"] = report.to_json()
                rps[(workers, tag)] = report.rps
                lines.append(
                    f"workers={workers} {tag:7s} {report.rps:7.1f} rps  "
                    f"p50 {report.p50_ms:6.1f}ms  p99 {report.p99_ms:6.1f}ms"
                )

    # resident weight bytes are O(1), not O(workers): every pool maps
    # the same single segment
    assert len(set(shared_bytes_by_workers.values())) == 1, (
        f"shared weight bytes varied with worker count: "
        f"{shared_bytes_by_workers}"
    )

    # ----- rolling hot-swap under load: zero failed requests -----------
    import threading

    pool = make_pool(2)
    new_model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention",
        32, 48, seed=13, dtype="float32",
    )
    with BackgroundServer(pool) as background:
        client = background.client()
        generator = LoadGenerator(client, concurrency=8)
        outcome: dict = {}
        thread = threading.Thread(
            target=lambda: outcome.update(
                report=generator.run(request_list({}))[0]
            )
        )
        thread.start()
        time.sleep(0.05)
        swap_started = time.perf_counter()
        pool.swap_model(
            "attn", new_model, dataset.in_vocab, dataset.out_vocab,
            default=True,
        )
        swap_seconds = time.perf_counter() - swap_started
        thread.join(timeout=300)
    swap_report = outcome["report"]
    assert swap_report.errors == 0, (
        f"rolling hot-swap failed requests: {swap_report.by_status}"
    )

    cores = os.cpu_count() or 1
    scaling_4x = (
        rps.get((4, "greedy"), 0.0) / rps[(1, "greedy")]
        if rps.get((1, "greedy")) else 0.0
    )
    _merge_trajectory({
        "multi_worker": {
            "matrix": matrix,
            "shared_weight_bytes": shared_bytes_by_workers[
                worker_counts[0]
            ],
            "shared_bytes_by_workers": {
                str(k): v for k, v in shared_bytes_by_workers.items()
            },
            "scaling_4x_vs_1": scaling_4x,
            "cpu_cores": cores,
            "hot_swap": {
                **swap_report.to_json(),
                "swap_seconds": swap_seconds,
            },
        },
    })

    emit(
        "BENCH multi-worker serving",
        "\n".join(lines)
        + f"\nshared weights {shared_bytes_by_workers[worker_counts[0]]} "
        f"bytes (identical at every worker count)\n"
        f"hot swap under load: {swap_report.errors} failed requests "
        f"({swap_seconds * 1000:.0f}ms swap)\n"
        f"cores {cores}"
        + (f"  4-worker scaling {scaling_4x:.2f}x" if scaling_4x else ""),
    )

    if not quick and cores >= 4 and (4, "greedy") in rps:
        assert scaling_4x >= 2.5, (
            f"4 workers only {scaling_4x:.2f}x single-worker rps "
            f"on a {cores}-core host"
        )
