"""Figure 9: statistical profile of quantitative columns.

Paper shape: (a) log-normal is the most common fitted distribution, a
large "fits none of the six" bucket, and (essentially) no uniform
columns; (b) ~42% approximately symmetric, the rest moderately/highly
skewed; (c) most columns outlier-free, then a 1-10% band.
"""

from conftest import emit

from repro.stats.distributions import corpus_distribution_profile


def test_figure9_quantitative_column_profile(benchmark, bench):
    profile = benchmark.pedantic(
        lambda: corpus_distribution_profile(bench.corpus), rounds=1, iterations=1
    )
    fits, skews, outliers = profile["fits"], profile["skewness"], profile["outliers"]
    lines = ["(a) distribution fits:"]
    lines += [f"    {name:>12s}: {count}" for name, count in fits.most_common()]
    lines += ["(b) skewness:"]
    lines += [f"    {name:>12s}: {count}" for name, count in skews.most_common()]
    lines += ["(c) outlier share:"]
    lines += [f"    {name:>12s}: {count}" for name, count in outliers.most_common()]
    emit("Figure 9 — quantitative column statistics", "\n".join(lines))

    # Log-normal leads among the fitted families (paper: 302 columns).
    fitted_only = {k: v for k, v in fits.items() if k != "none"}
    assert fitted_only, "some columns must fit a reference distribution"
    assert max(fitted_only, key=fitted_only.get) == "lognormal"
    # Essentially no uniform columns (paper: zero).
    assert fits.get("uniform", 0) <= max(2, sum(fits.values()) // 50)
    # A sizeable unfit bucket exists (paper: 295 columns).
    assert fits.get("none", 0) > 0
    # Skewness buckets all populated; outlier-free columns dominate.
    assert set(skews) == {"symmetric", "moderate", "high"}
    assert outliers.get("0%", 0) >= max(outliers.values()) * 0.5
