"""Table 2: nvBench dataset statistics (coverage, columns/rows, types).

Paper values for reference: 153 databases / 780 tables / 105 domains;
4,017 columns (avg 5.26); 1,000,572 rows (avg 1,309.65); column types
C 68.78% / T 11.58% / Q 19.64%.  Our corpus is scaled down but must
show the same structure: categorical-dominated columns, ~5 columns per
table, domain coverage led by the sport/customer/school group.
"""

from conftest import emit

from repro.stats.dataset_stats import dataset_summary


def test_table2_dataset_statistics(benchmark, bench):
    summary = benchmark.pedantic(
        lambda: dataset_summary(bench.corpus), rounds=1, iterations=1
    )

    fractions = summary.column_type_fractions()
    lines = [
        f"#-Databases: {summary.n_databases}   #-Tables: {summary.n_tables}   "
        f"#-Domains: {summary.n_domains}",
        "Top-5 Domains (#-Tables): "
        + "  ".join(f"{name}({count})" for name, count in summary.top_domains),
        f"#-Cols: {summary.n_columns}  Avg: {summary.avg_columns:.2f}  "
        f"Max: {summary.max_columns}  Min: {summary.min_columns}",
        f"#-Rows: {summary.n_rows}  Avg: {summary.avg_rows:.2f}  "
        f"Max: {summary.max_rows}  Min: {summary.min_rows}",
        "Column types: "
        + "  ".join(f"{k}: {v:.2%}" for k, v in sorted(fractions.items()))
        + "   (paper: C 68.78% / T 11.58% / Q 19.64%)",
    ]
    emit("Table 2 — dataset statistics", "\n".join(lines))

    # Shape assertions mirroring the paper's headline structure.
    assert summary.n_domains >= 5
    assert fractions["C"] > 0.5, "categorical columns must dominate"
    assert fractions["C"] > fractions["Q"] > fractions["T"] * 0.5
    assert 3.0 <= summary.avg_columns <= 8.0
