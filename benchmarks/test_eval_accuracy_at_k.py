"""Accuracy@k on the ambiguous-question split (``BENCH_eval.json``).

An ambiguous question (one whose source SQL query synthesized several
distinct gold charts) is only answered well by a *ranked set* of
candidates.  This benchmark runs the staged pipeline (DeepEye
generator, k=5) over every ambiguous question and scores gold-set
coverage at k ∈ {1, 3, 5}: accuracy@1 is capped at 1/|golds| per
question by construction, so a pipeline whose candidate set genuinely
covers the ambiguity shows accuracy@3 strictly above accuracy@1 — the
number this file guards.

Writes ``results/BENCH_eval.json``.
"""

from __future__ import annotations

from conftest import emit, merge_result

from repro.eval.ambiguity import accuracy_at_k, ambiguous_split
from repro.pipeline import Budget, Generator, Pipeline
from repro.serve import BaselineTranslator


def test_accuracy_at_k_on_ambiguous_split(bench, profile):
    split = ambiguous_split(bench.pairs)
    assert len(split) >= 5, (
        f"only {len(split)} ambiguous questions in the benchmark; "
        "expected the synthesizer's multi-vis-per-query output to "
        "produce a usable split"
    )

    pipeline = Pipeline(
        bench.databases,
        Generator(BaselineTranslator.from_name("deepeye")),
        budget=Budget(k=5),
    )
    predictions = []
    counters = {"verify_pass": 0, "verify_near_miss": 0, "repairs_succeeded": 0}
    for item in split:
        result = pipeline.run(item.question, item.db_name)
        predictions.append([c.tree for c in result.candidates])
        for name in counters:
            counters[name] += result.counters[name]

    accuracy = accuracy_at_k(predictions, split, ks=(1, 3, 5))

    golds = sum(item.num_golds for item in split)
    merge_result("BENCH_eval.json", {
        "profile": profile.name,
        "questions": len(split),
        "gold_charts": golds,
        "accuracy_at_k": {str(k): round(v, 4) for k, v in accuracy.items()},
        "pipeline_counters": counters,
    })

    emit(
        "BENCH eval accuracy@k (ambiguous split)",
        f"questions {len(split)}  gold charts {golds}\n"
        + "\n".join(
            f"accuracy@{k}: {accuracy[k]:.3f}" for k in sorted(accuracy)
        ),
    )

    assert accuracy[1] > 0.0, "pipeline matched no gold chart at k=1"
    assert accuracy[3] > accuracy[1], (
        f"accuracy@3 ({accuracy[3]:.3f}) should strictly beat accuracy@1 "
        f"({accuracy[1]:.3f}) on a split of multi-gold questions"
    )
    assert accuracy[5] >= accuracy[3]
