"""Table 5: seq2vis vs the rule-based state of the art.

Paper shape: seq2vis (attention, top-1 65.7%) beats NL4DV top-1 (13.7%)
and DeepEye top-1 (9.1%) by a wide margin; DeepEye improves with k
(top-6 15.9%, all 22.2%) and the rule-based systems essentially collapse
on hard / extra-hard queries while seq2vis holds up.
"""

from collections import defaultdict

from conftest import emit

from repro.baselines import DeepEyeBaseline, NL4DVBaseline
from repro.core.hardness import HARDNESS_LEVELS
from repro.eval.metrics import tree_match
from repro.eval.splits import split_pairs


def test_table5_comparison_with_sota(benchmark, bench, trained_models, profile):
    _, _, test_pairs = split_pairs(bench.pairs, seed=0)
    deepeye = DeepEyeBaseline()
    nl4dv = NL4DVBaseline()

    def evaluate_baselines():
        de_hits = defaultdict(lambda: defaultdict(int))
        nv_hits = defaultdict(int)
        totals = defaultdict(int)
        for pair in test_pairs:
            database = bench.databases[pair.db_name]
            hardness = pair.hardness.value
            totals[hardness] += 1
            ranked = deepeye.predict(pair.nl, database, k=6)
            for k in (1, 3, 6):
                if any(tree_match(vis, pair.vis) for vis in ranked[:k]):
                    de_hits[k][hardness] += 1
            if tree_match(nl4dv.predict(pair.nl, database), pair.vis):
                nv_hits[hardness] += 1
        return de_hits, nv_hits, totals

    de_hits, nv_hits, totals = benchmark.pedantic(
        evaluate_baselines, rounds=1, iterations=1
    )
    seq2vis_report = trained_models["attention"][1]
    seq2vis_by_hardness = seq2vis_report.tree_accuracy_by_hardness()

    def rate(hits, hardness=None):
        if hardness is None:
            return sum(hits.values()) / max(sum(totals.values()), 1)
        return hits.get(hardness, 0) / max(totals.get(hardness, 0), 1)

    header = (
        f"{'hardness':12s} {'DE top-1':>9s} {'DE top-3':>9s} {'DE top-6':>9s} "
        f"{'NL4DV':>9s} {'SEQ2VIS':>9s}"
    )
    lines = [header]
    for hardness in HARDNESS_LEVELS:
        if totals.get(hardness, 0) == 0:
            continue
        lines.append(
            f"{hardness:12s} "
            f"{rate(de_hits[1], hardness):9.1%} {rate(de_hits[3], hardness):9.1%} "
            f"{rate(de_hits[6], hardness):9.1%} {rate(nv_hits, hardness):9.1%} "
            f"{seq2vis_by_hardness.get(hardness, 0.0):9.1%}"
        )
    overall = (
        f"{'overall':12s} {rate(de_hits[1]):9.1%} {rate(de_hits[3]):9.1%} "
        f"{rate(de_hits[6]):9.1%} {rate(nv_hits):9.1%} "
        f"{seq2vis_report.tree_accuracy:9.1%}"
    )
    lines.append(overall)
    lines.append("(paper overall: DeepEye 9.1 / 13.1 / 15.9, NL4DV 13.7, "
                 "SEQ2VIS 65.7)")
    emit("Table 5 — comparison with the state of the art", "\n".join(lines))

    # DeepEye improves with more results (holds at any profile).
    assert rate(de_hits[6]) >= rate(de_hits[3]) >= rate(de_hits[1])
    if profile.name != "standard":
        return
    seq2vis_overall = seq2vis_report.tree_accuracy
    # The learning-based method wins, by a clear factor.
    assert seq2vis_overall > rate(nv_hits) * 1.2
    assert seq2vis_overall > rate(de_hits[1]) * 1.2
    # Rule-based systems collapse on hard/extra-hard; seq2vis does not.
    for hardness in ("hard", "extra hard"):
        if totals.get(hardness, 0) >= 5:
            assert rate(nv_hits, hardness) <= 0.2
            assert seq2vis_by_hardness.get(hardness, 0.0) > rate(nv_hits, hardness)
