"""Figure 19: case study with COVID-19 data.

Protocol (Section 4.6): experts write NL queries for the JHU-dashboard
visualizations; seq2vis must produce the matching VIS trees over the
COVID-19 table.  Paper result: 5 of 6 queries succeed; the failure
contains "until today", which cannot be grounded to a date literal.
"""

from conftest import emit

from repro.eval.covid_case import attach_covid, case_study_queries
from repro.eval.harness import ExperimentConfig, build_model, make_datasets
from repro.eval.metrics import tree_match
from repro.grammar.serialize import from_tokens
from repro.neural.data import encode_example
from repro.neural.trainer import TrainConfig, train_model


def test_figure19_covid_case_study(benchmark, bench, profile):
    # attach_covid mutates its bench, so work on a copy — the session
    # fixture is shared with the Table 2-5 benchmarks.
    from repro.core.nvbench import NVBench
    from repro.spider.corpus import SpiderCorpus

    bench = NVBench(
        corpus=SpiderCorpus(
            databases=dict(bench.corpus.databases),
            pairs=list(bench.corpus.pairs),
        ),
        pairs=list(bench.pairs),
    )
    database = attach_covid(bench, n_pairs=500, seed=29)
    config = ExperimentConfig(
        embed_dim=profile.embed_dim,
        hidden_dim=profile.hidden_dim,
        train=TrainConfig(
            epochs=profile.covid_epochs, batch_size=profile.batch_size,
            lr=5e-3, clip_norm=5.0, patience=6,
        ),
    )
    train_set, val_set, _ = make_datasets(bench, config)
    # The copy variant is the right tool here: the COVID schema's six
    # near-synonymous measures must be produced by pointing at schema
    # tokens, which is exactly what the copy mechanism buys (Section 4.1).
    model = build_model("copy", train_set, config)
    train_model(model, train_set, val_set, config.train)

    queries = case_study_queries()

    def predict_all():
        outcomes = []
        for case in queries:
            # Encode the handwritten NL against the COVID schema.
            fake_pair = type(
                "P", (), {"nl": case.nl, "vis": case.gold, "db_name": database.name}
            )
            example = encode_example(fake_pair, database)
            batch = train_set.batch_of([example])
            decoded = model.greedy_decode(
                batch, train_set.out_vocab.bos_id, train_set.out_vocab.eos_id
            )[0]
            tokens = train_set.out_vocab.decode(decoded)
            try:
                predicted = from_tokens(tokens)
            except Exception:
                predicted = None
            matched = tree_match(predicted, case.gold)
            outcomes.append((case, matched, tokens))
        return outcomes

    outcomes = benchmark.pedantic(predict_all, rounds=1, iterations=1)

    lines = []
    successes = 0
    for case, matched, tokens in outcomes:
        flag = "OK  " if matched else "FAIL"
        successes += matched
        lines.append(f"[{flag}] {case.nl}")
        if not matched:
            note = case.note or "prediction differs from the gold tree"
            lines.append(f"       -> {note}")
            lines.append(f"       predicted: {' '.join(tokens)[:90]}")
    lines.append(f"result: {successes}/6 predicted (paper: 5/6)")
    emit("Figure 19 — COVID-19 case study", "\n".join(lines))

    # The "until today" query must fail (ungroundable filter) at any
    # profile; success counts only mean something with a trained model.
    until_today = [o for o in outcomes if not o[0].expected_success][0]
    assert not until_today[1]
    if profile.name != "standard":
        return
    expected_successes = [o for o in outcomes if o[0].expected_success]
    # The headline shape: most dashboard queries work.
    assert sum(m for _, m, _ in expected_successes) >= 3
