"""Figure 7: DeepEye-style filtering on TPC-H / TPC-DS style charts.

The paper's four demonstrations:
(a) TPC-H Q20-style  — a pie with one slice per supplier: too many
    slices → filtered out (bad);
(b) TPC-H Q8-style   — market share over order years: a sound bar
    chart → kept (good);
(c) TPC-DS Q9-style  — a single aggregated value as a bar: single-value
    chart → filtered out (bad);
(d) TPC-DS Q7-style  — quantity vs net-paid scatter → kept (good).
"""

from conftest import emit

from repro.core.filter_model import DeepEyeFilter, extract_features
from repro.grammar.ast_nodes import Attribute, Group, QueryCore, VisQuery
from repro.spider.tpc import build_tpcds_database, build_tpch_database


def _charts():
    tpch = build_tpch_database()
    tpcds = build_tpcds_database()
    supplier_pie = VisQuery("pie", QueryCore(
        select=(
            Attribute("s_name", "supplier"),
            Attribute("s_acctbal", "supplier", agg="sum"),
        ),
        groups=(Group("grouping", Attribute("s_name", "supplier")),),
    ))
    year_bar = VisQuery("bar", QueryCore(
        select=(
            Attribute("o_orderdate", "orders"),
            Attribute("o_totalprice", "orders", agg="sum"),
        ),
        groups=(Group("binning", Attribute("o_orderdate", "orders"), bin_unit="year"),),
    ))
    # (c) retrieves a single aggregated value — better shown as a table.
    single_value_bar = VisQuery("bar", QueryCore(
        select=(
            Attribute("ss_quantity", "store_sales", agg="sum"),
            Attribute("ss_net_paid", "store_sales", agg="sum"),
        ),
    ))
    quantity_scatter = VisQuery("scatter", QueryCore(
        select=(
            Attribute("ss_quantity", "store_sales"),
            Attribute("ss_net_paid", "store_sales"),
        ),
    ))
    return [
        ("(a) TPC-H Q20-style supplier pie", supplier_pie, tpch, False),
        ("(b) TPC-H Q8-style yearly bar", year_bar, tpch, True),
        ("(c) TPC-DS Q9-style single-value bar", single_value_bar, tpcds, False),
        ("(d) TPC-DS Q7-style scatter", quantity_scatter, tpcds, True),
    ]


def test_figure7_tpc_filtering(benchmark):
    chart_filter = DeepEyeFilter()

    def run():
        verdicts = []
        for name, vis, database, expected in _charts():
            features = extract_features(vis, database)
            good = features is not None and chart_filter.score(features) >= 0.5
            verdicts.append((name, good, expected, features))
        return verdicts

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, good, expected, features in verdicts:
        detail = ""
        if features is not None:
            detail = f"(rows={features.n_rows}, distinct_x={features.n_distinct_x})"
        flag = "GOOD" if good else "BAD "
        want = "keep" if expected else "filter out"
        lines.append(f"{flag} {name:42s} {detail:30s} expected: {want}")
    emit("Figure 7 — TPC-H/TPC-DS chart filtering", "\n".join(lines))

    for name, good, expected, _ in verdicts:
        assert good == expected, f"{name}: verdict {good}, expected {expected}"
