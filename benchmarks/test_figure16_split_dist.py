"""Figure 16: train/test distribution heatmaps.

The paper shows that the random 80/4.5/15.5 split leaves the train and
test sets with near-identical distributions over vis type × hardness
(and both close to the full-benchmark distribution of Figure 10).
"""

from collections import Counter

from conftest import emit

from repro.core.hardness import HARDNESS_LEVELS
from repro.eval.splits import split_pairs
from repro.grammar.ast_nodes import VIS_TYPES


def _distribution(pairs):
    counts = Counter((pair.vis_type, pair.hardness.value) for pair in pairs)
    total = max(sum(counts.values()), 1)
    return {key: value / total for key, value in counts.items()}


def test_figure16_split_distributions(benchmark, bench):
    def run():
        train, val, test = split_pairs(bench.pairs, seed=0)
        return train, val, test, _distribution(train), _distribution(test)

    train, val, test, train_dist, test_dist = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        f"split sizes: train {len(train)} / val {len(val)} / test {len(test)} "
        f"(paper: 20,598 / 1,162 / 3,990)"
    ]
    header = f"{'cell (type, hardness)':34s} {'train':>8s} {'test':>8s}"
    lines.append(header)
    keys = sorted(set(train_dist) | set(test_dist))
    for key in keys:
        vis_type, hardness = key
        lines.append(
            f"{vis_type + ' / ' + hardness:34s} "
            f"{train_dist.get(key, 0.0):8.3f} {test_dist.get(key, 0.0):8.3f}"
        )
    l1 = sum(abs(train_dist.get(k, 0) - test_dist.get(k, 0)) for k in keys)
    lines.append(f"L1 distance between train and test distributions: {l1:.3f}")
    emit("Figure 16 — train/test split distributions", "\n".join(lines))

    # Ratios per the paper.
    total = len(bench.pairs)
    assert abs(len(train) / total - 0.80) < 0.01
    assert abs(len(test) / total - 0.155) < 0.02
    # Similar distributions across splits (tolerance widens with the
    # sampling noise of a small test split).
    assert l1 < max(0.30, 4.0 / len(test) ** 0.5)
