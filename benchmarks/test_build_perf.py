"""Build-pipeline performance harness (`BENCH_build.json` trajectory).

Three entries, merged into one ``results/BENCH_build.json`` so each test
can also run alone:

* **cached-vs-uncached** — the classic serial build twice over one
  corpus: execution cache off (the seed-equivalent baseline) vs on.
  Wall-clock is the median of three runs per configuration, so a single
  noisy CI timeslice cannot fail the assertion.
* **paper_scale** — the streamed, sharded engine at paper shape
  (153 databases / ≥ 25k pairs under the standard profile; a capped
  prefix under ``REPRO_BENCH_PROFILE=quick``).  Records wall-clock per
  1k pairs and ``resident_pairs_peak`` — the bounded-memory evidence
  that the full pair list was never materialized.
* **incremental_rebuild** — dirty one shard of a finished build and
  resume: the rebuild must be ≥ 5× faster than the cold build because
  every clean shard is skipped by content key.

See ``docs/CORPUS.md`` for the shard/manifest format and
``docs/PERFORMANCE.md`` for how to read the trajectory.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.core.nvbench import (
    NVBenchConfig,
    build_nvbench,
    paper_scale_config,
)
from repro.perf import BuildProfiler
from repro.spider.corpus import CorpusConfig, build_spider_corpus

from conftest import emit, results_path

#: Default corpus for the perf harness: big enough rows that chart
#: execution dominates, small enough that the uncached baseline stays
#: under a few seconds.
DEFAULT_CORPUS = CorpusConfig(
    num_databases=6, pairs_per_database=10, row_scale=1.5, seed=7
)
QUICK_CORPUS = CorpusConfig(
    num_databases=3, pairs_per_database=8, row_scale=1.5, seed=7
)

#: Streamed paper-scale runs: the quick profile builds a prefix of the
#: same 153-database plan instead of a different corpus.
QUICK_PAPER_DATABASES = 8


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_PROFILE") == "quick"


def _build_config(corpus: CorpusConfig, use_cache: bool) -> NVBenchConfig:
    # Train the filter over every input pair so the baseline pays the
    # full double-execution cost the seed pipeline paid.
    return NVBenchConfig(
        corpus=corpus,
        filter_training_pairs=10**9,
        use_cache=use_cache,
        seed=7,
    )


def _timed_build(corpus, config, repeats: int = 3):
    """Median wall-clock over *repeats* runs (plus last bench/report).

    Single-shot timings on shared CI runners regularly swing 2x; the
    median of three keeps the speedup assertions about the build, not
    about the neighbors.
    """
    seconds = []
    bench = report = None
    for _ in range(repeats):
        profiler = BuildProfiler()
        start = time.perf_counter()
        bench = build_nvbench(corpus=corpus, config=config, profiler=profiler)
        seconds.append(time.perf_counter() - start)
        report = profiler.report()
    return bench, statistics.median(seconds), report


def _merge_trajectory(update: dict) -> None:
    """Read-modify-write ``BENCH_build.json`` so the three benchmark
    entries compose regardless of which tests ran."""
    path = results_path("BENCH_build.json")
    try:
        trajectory = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        trajectory = {}
    trajectory.update(update)
    path.write_text(json.dumps(trajectory, indent=2))


def test_cached_batch_build_speedup():
    corpus_config = QUICK_CORPUS if _quick() else DEFAULT_CORPUS
    corpus = build_spider_corpus(corpus_config)

    baseline, baseline_s, baseline_report = _timed_build(
        corpus, _build_config(corpus_config, use_cache=False)
    )
    optimized, optimized_s, optimized_report = _timed_build(
        corpus, _build_config(corpus_config, use_cache=True)
    )

    speedup = baseline_s / optimized_s
    counters = optimized_report["counters"]
    hits = counters.get("execution_cache_hits", 0)
    misses = counters.get("execution_cache_misses", 0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    _merge_trajectory({
        "corpus": {
            "num_databases": corpus_config.num_databases,
            "pairs_per_database": corpus_config.pairs_per_database,
            "row_scale": corpus_config.row_scale,
            "input_pairs": len(corpus.pairs),
        },
        "baseline_seconds": baseline_s,
        "optimized_seconds": optimized_s,
        "speedup": speedup,
        "timing": "median of 3 runs per configuration",
        "cache": {"hits": hits, "misses": misses, "hit_rate": hit_rate},
        "baseline": baseline_report,
        "optimized": optimized_report,
    })

    emit(
        "BENCH build pipeline",
        f"baseline (no cache) {baseline_s:6.2f}s  (median of 3)\n"
        f"optimized (cached)  {optimized_s:6.2f}s  (median of 3)\n"
        f"speedup             {speedup:6.2f}x\n"
        f"cache hit rate      {hit_rate:6.1%} ({hits} hits / {misses} misses)\n"
        f"pairs               {len(optimized.pairs)}",
    )

    # Caching must never change the output.
    assert optimized.pairs == baseline.pairs
    assert hits > 0
    # Regression floor, not the typical figure: the cached build usually
    # lands 2-3x; the median-of-3 timing keeps one bad timeslice from
    # deciding the verdict (the real trajectory lives in BENCH_build.json).
    assert speedup >= 1.5, f"cached build only {speedup:.2f}x faster"


def test_parallel_build_matches_serial_smoke():
    """Small smoke check that the sharded build merges deterministically
    (the tier-1 suite covers this too; here it runs at bench scale)."""
    corpus_config = QUICK_CORPUS
    corpus = build_spider_corpus(corpus_config)
    config = _build_config(corpus_config, use_cache=True)
    serial = build_nvbench(corpus=corpus, config=config, workers=1)
    parallel = build_nvbench(corpus=corpus, config=config, workers=4)
    assert parallel.pairs == serial.pairs


def test_streamed_paper_scale_build(tmp_path):
    """The paper-shape build through the streamed, sharded engine.

    Standard profile: all 153 databases, asserting the ≥ 25k pair floor
    nvBench ships (25,750).  Quick profile: an 8-database prefix of the
    same plan.  Either way the build is bounded-memory — the profiler's
    ``resident_pairs_peak`` high-water mark stays far below the total.
    """
    config = paper_scale_config()
    max_databases = QUICK_PAPER_DATABASES if _quick() else None
    workers = min(4, os.cpu_count() or 1)

    profiler = BuildProfiler()
    out = tmp_path / "paper"
    start = time.perf_counter()
    bench = build_nvbench(
        config=config, stream=True, out=str(out), workers=workers,
        max_databases=max_databases, profiler=profiler,
    )
    seconds = time.perf_counter() - start

    pairs = len(bench.pairs)
    counters = profiler.report()["counters"]
    peak = counters["resident_pairs_peak"]
    per_1k = seconds / (pairs / 1000.0)
    databases = counters["shards_total"]

    _merge_trajectory({
        "paper_scale": {
            "profile": "quick" if _quick() else "standard",
            "databases": databases,
            "pairs": pairs,
            "input_pairs": len(bench.corpus.pairs),
            "seconds": seconds,
            "wall_seconds_per_1k_pairs": per_1k,
            "workers": workers,
            "resident_pairs_peak": peak,
        },
    })
    emit(
        "BENCH paper-scale streamed build",
        f"databases            {databases}\n"
        f"(NL, VIS) pairs      {pairs}\n"
        f"wall clock           {seconds:6.2f}s  ({workers} workers)\n"
        f"per 1k pairs         {per_1k:6.2f}s\n"
        f"resident pairs peak  {peak}  (bounded memory: "
        f"{peak / pairs:.1%} of total)",
    )

    assert counters["shards_built"] == databases
    # bounded memory: no unit ever held more than a sliver of the corpus
    assert peak < pairs / 4
    if not _quick():
        assert databases == 153
        assert pairs >= 25_000, f"paper scale yielded only {pairs} pairs"


def test_incremental_rebuild_speedup(tmp_path):
    """Dirty one shard of a finished build; resume must be ≥ 5× faster
    than the cold build (every clean shard skipped by content key)."""
    config = paper_scale_config()
    max_databases = QUICK_PAPER_DATABASES if _quick() else 24
    out = tmp_path / "bench"

    start = time.perf_counter()
    build_nvbench(
        config=config, stream=True, out=str(out),
        max_databases=max_databases,
    )
    cold_s = time.perf_counter() - start

    # kill one shard; median-of-3 resumes (the first rebuilds it, the
    # later ones verify everything clean — both paths must stay >= 5x)
    victim = sorted((out / "shards").glob("*.jsonl"))[0]
    victim.write_text("truncated mid-write")
    resume_seconds = []
    for _ in range(3):
        profiler = BuildProfiler()
        start = time.perf_counter()
        build_nvbench(
            config=config, stream=True, out=str(out), resume=True,
            max_databases=max_databases, profiler=profiler,
        )
        resume_seconds.append(time.perf_counter() - start)
    resume_s = statistics.median(resume_seconds)
    counters = profiler.report()["counters"]
    speedup = cold_s / resume_s

    _merge_trajectory({
        "incremental_rebuild": {
            "databases": max_databases,
            "cold_seconds": cold_s,
            "resume_seconds": resume_s,
            "speedup": speedup,
            "timing": "median of 3 resumes",
        },
    })
    emit(
        "BENCH incremental rebuild",
        f"cold build ({max_databases} dbs) {cold_s:6.2f}s\n"
        f"dirty-1-shard resume    {resume_s:6.2f}s  (median of 3)\n"
        f"speedup                 {speedup:6.2f}x",
    )

    assert counters["shards_skipped_clean"] == max_databases
    assert speedup >= 5.0, f"incremental rebuild only {speedup:.2f}x faster"
