"""Build-pipeline performance harness (`BENCH_build.json` trajectory).

Times the end-to-end ``build_nvbench`` twice over one shared corpus:

* **baseline** — the seed-equivalent configuration: serial, execution
  cache disabled, so the filter-training pass and the synthesis pass
  re-execute every candidate chart (and candidates sharing a query body
  each execute separately).
* **optimized** — the same serial build with the execution cache on
  (batch scoring is active in both runs).

Asserts the optimized build is ≥ 2× faster, that both builds produce
identical pair lists, and writes ``results/BENCH_build.json`` with both
profiles, per-stage timings, and the cache hit rate so the trajectory
can be compared across commits.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.perf import BuildProfiler
from repro.spider.corpus import CorpusConfig, build_spider_corpus

from conftest import emit, results_path

#: Default corpus for the perf harness: big enough rows that chart
#: execution dominates, small enough that the uncached baseline stays
#: under a few seconds.
DEFAULT_CORPUS = CorpusConfig(
    num_databases=6, pairs_per_database=10, row_scale=1.5, seed=7
)
QUICK_CORPUS = CorpusConfig(
    num_databases=3, pairs_per_database=8, row_scale=1.5, seed=7
)


def _build_config(corpus: CorpusConfig, use_cache: bool) -> NVBenchConfig:
    # Train the filter over every input pair so the baseline pays the
    # full double-execution cost the seed pipeline paid.
    return NVBenchConfig(
        corpus=corpus,
        filter_training_pairs=10**9,
        use_cache=use_cache,
        seed=7,
    )


def _timed_build(corpus, config):
    profiler = BuildProfiler()
    start = time.perf_counter()
    bench = build_nvbench(corpus=corpus, config=config, profiler=profiler)
    seconds = time.perf_counter() - start
    return bench, seconds, profiler.report()


def test_cached_batch_build_speedup():
    corpus_config = (
        QUICK_CORPUS
        if os.environ.get("REPRO_BENCH_PROFILE") == "quick"
        else DEFAULT_CORPUS
    )
    corpus = build_spider_corpus(corpus_config)

    baseline, baseline_s, baseline_report = _timed_build(
        corpus, _build_config(corpus_config, use_cache=False)
    )
    optimized, optimized_s, optimized_report = _timed_build(
        corpus, _build_config(corpus_config, use_cache=True)
    )

    speedup = baseline_s / optimized_s
    counters = optimized_report["counters"]
    hits = counters.get("execution_cache_hits", 0)
    misses = counters.get("execution_cache_misses", 0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    trajectory = {
        "corpus": {
            "num_databases": corpus_config.num_databases,
            "pairs_per_database": corpus_config.pairs_per_database,
            "row_scale": corpus_config.row_scale,
            "input_pairs": len(corpus.pairs),
        },
        "baseline_seconds": baseline_s,
        "optimized_seconds": optimized_s,
        "speedup": speedup,
        "cache": {"hits": hits, "misses": misses, "hit_rate": hit_rate},
        "baseline": baseline_report,
        "optimized": optimized_report,
    }
    results_path("BENCH_build.json").write_text(json.dumps(trajectory, indent=2))

    emit(
        "BENCH build pipeline",
        f"baseline (no cache) {baseline_s:6.2f}s\n"
        f"optimized (cached)  {optimized_s:6.2f}s\n"
        f"speedup             {speedup:6.2f}x\n"
        f"cache hit rate      {hit_rate:6.1%} ({hits} hits / {misses} misses)\n"
        f"pairs               {len(optimized.pairs)}",
    )

    # Caching must never change the output.
    assert optimized.pairs == baseline.pairs
    assert hits > 0
    # Regression floor, not the typical figure: the cached build usually
    # lands 2-3x, but single-shot wall-clock on shared CI runners has
    # measured as low as ~1.8x, so the assertion leaves headroom (the
    # real trajectory lives in BENCH_build.json).
    assert speedup >= 1.5, f"cached build only {speedup:.2f}x faster"


def test_parallel_build_matches_serial_smoke():
    """Small smoke check that the sharded build merges deterministically
    (the tier-1 suite covers this too; here it runs at bench scale)."""
    corpus_config = QUICK_CORPUS
    corpus = build_spider_corpus(corpus_config)
    config = _build_config(corpus_config, use_cache=True)
    serial = build_nvbench(corpus=corpus, config=config, workers=1)
    parallel = build_nvbench(corpus=corpus, config=config, workers=4)
    assert parallel.pairs == serial.pairs
