"""Ablations of the reproduction's design choices (extension, not a
paper figure — see DESIGN.md).

(a) chart filter: trained classifier vs expert rules only — how many
    kept charts differ, and does the trained stage agree with the
    teacher labels it was fitted to?
(b) GloVe-style embedding initialization vs random: training loss after
    a fixed small budget (the paper initializes from corpus-trained
    GloVe; the ablation shows it helps early optimization).
(c) back-translation smoothing: pairwise-BLEU diversity of NL variants
    with and without smoothing (the paper's motivation for it).
"""

import numpy as np

from conftest import emit

from repro.core.filter_model import (
    DeepEyeFilter,
    extract_features,
    rule_verdict,
    teacher_label,
    train_filter_from_candidates,
)
from repro.core.nl_edits import synthesize_nl_variants
from repro.core.tree_edits import TreeEdit, generate_candidates
from repro.eval.harness import ExperimentConfig, build_model, make_datasets
from repro.neural.trainer import TrainConfig, train_model
from repro.nlp.bleu import pairwise_bleu
from repro.nlp.tokenize import tokenize_nl


def test_ablation_filter_classifier(benchmark, bench):
    pairs = bench.corpus.pairs[:60]

    def run():
        charts = []
        for pair in pairs:
            db = bench.databases[pair.db_name]
            for candidate in generate_candidates(pair.query, db):
                charts.append((candidate.vis, db))
        trained = train_filter_from_candidates(charts, seed=0)
        rules_only = DeepEyeFilter()
        agree = disagree = classifier_cases = 0
        for vis, db in charts:
            features = extract_features(vis, db)
            if features is None or rule_verdict(features) is not None:
                continue
            classifier_cases += 1
            if (trained.score(features) >= 0.5) == teacher_label(features):
                agree += 1
            if (trained.score(features) >= 0.5) != (rules_only.score(features) >= 0.5):
                disagree += 1
        return len(charts), classifier_cases, agree, disagree

    n_charts, classifier_cases, agree, disagree = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        f"candidate charts: {n_charts}; decided by the classifier stage: "
        f"{classifier_cases}",
        f"trained classifier agrees with teacher labels on "
        f"{agree}/{classifier_cases} ({agree / max(classifier_cases, 1):.1%})",
        f"trained vs rules-only verdict flips: {disagree}",
    ]
    emit("Ablation (a) — trained filter vs rules", "\n".join(lines))
    assert agree / max(classifier_cases, 1) > 0.7


def test_ablation_pretrained_embeddings(benchmark, bench, profile):
    pairs = bench.pairs[:400]
    budget = TrainConfig(epochs=3, batch_size=24, lr=5e-3, patience=3)

    def run():
        losses = {}
        for pretrained in (True, False):
            config = ExperimentConfig(
                embed_dim=40, hidden_dim=48, train=budget,
                use_pretrained_embeddings=pretrained,
            )
            train_set, val_set, _ = make_datasets(bench, config, pairs)
            model = build_model("attention", train_set, config)
            result = train_model(model, train_set, val_set, config.train)
            losses[pretrained] = result.train_losses[-1]
        return losses

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"final training loss after {budget.epochs} epochs:",
        f"  GloVe-style init : {losses[True]:.4f}",
        f"  random init      : {losses[False]:.4f}",
    ]
    emit("Ablation (b) — embedding initialization", "\n".join(lines))
    # Pretrained init should not hurt early optimization materially.
    assert losses[True] < losses[False] * 1.25


def test_ablation_back_translation_diversity(benchmark, bench):
    sample = [
        pair for pair in bench.pairs[:400] if not pair.manually_edited
    ][:40]

    def run():
        smoothed, raw = [], []
        rng = np.random.default_rng(5)
        for pair in sample:
            edit = TreeEdit(added_vis=pair.vis.vis_type)
            with_bt = synthesize_nl_variants(
                pair.source_nl, edit, pair.vis, rng, n_variants=4,
                back_translate=True,
            )
            without_bt = synthesize_nl_variants(
                pair.source_nl, edit, pair.vis, rng, n_variants=4,
                back_translate=False,
            )
            if len(with_bt) >= 2:
                smoothed.append(pairwise_bleu(
                    [tokenize_nl(v.text) for v in with_bt]
                ))
            if len(without_bt) >= 2:
                raw.append(pairwise_bleu(
                    [tokenize_nl(v.text) for v in without_bt]
                ))
        return float(np.mean(smoothed)), float(np.mean(raw))

    bleu_smoothed, bleu_raw = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"avg pairwise BLEU with back-translation   : {bleu_smoothed:.3f}",
        f"avg pairwise BLEU without back-translation: {bleu_raw:.3f}",
        "(lower = more diverse; the paper's Table 3 average is 0.337)",
    ]
    emit("Ablation (c) — back-translation diversity", "\n".join(lines))
    assert bleu_smoothed < bleu_raw
