"""Figure 13: expert/crowd evaluation of the synthesized pairs.

Paper values: T1 (reads handwritten) — experts 81.1% agree+, crowd
85.6% agree+; T2 (NL matches vis) — experts 86.9% agree+, crowd 88.7%
agree+; only ~6% rated disagree or worse in either task.
"""

from conftest import emit

PAPER = {
    ("t1", "expert"): 0.811,
    ("t1", "crowd"): 0.856,
    ("t2", "expert"): 0.869,
    ("t2", "crowd"): 0.887,
}


def test_figure13_expert_and_crowd_evaluation(benchmark, study):
    def summarize():
        rows = {}
        for task in ("t1", "t2"):
            for population in ("expert", "crowd"):
                rows[(task, population)] = (
                    study.distribution(task, population),
                    study.agree_fraction(task, population),
                )
        return rows

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)

    lines = [f"rated pairs: {len(study.rated)}"]
    for (task, population), (dist, agree) in rows.items():
        label = "machine-or-handwritten" if task == "t1" else "NL-matches-vis"
        lines.append(
            f"{task.upper()} ({label}) {population:6s}: agree+ {agree:.1%} "
            f"(paper {PAPER[(task, population)]:.1%})  "
            + "  ".join(f"{k}: {v:.1%}" for k, v in dist.items())
        )
    emit("Figure 13 — expert/crowd evaluation", "\n".join(lines))

    for (task, population), (_, agree) in rows.items():
        # Same headline: a solid majority rates pairs agree or better.
        assert agree > 0.6, f"{task}/{population} agree+ too low: {agree:.2f}"
    # T2 (matching) is not lower than T1 (naturalness) for experts.
    assert rows[("t2", "expert")][1] >= rows[("t1", "expert")][1] - 0.05
