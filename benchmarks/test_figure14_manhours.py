"""Figure 14 + Section 3.3 man-hour accounting.

Paper values: writing one NL query takes 37-411 s (median 82, mean 140);
building all of nvBench by hand would take ~42 days, versus ~2.4 days of
manual deletion-revision with the synthesizer — a reduction to 5.7%
(17.5× fewer man-hours).
"""

import numpy as np

from conftest import emit

from repro.eval.crowd import HumanStudySimulator


def test_figure14_time_and_manhour_reduction(benchmark, bench, study):
    simulator = HumanStudySimulator()

    def account():
        times = np.asarray(study.t3_times)
        return times, simulator.manhour_reduction(bench.pairs)

    times, accounting = benchmark.pedantic(account, rounds=1, iterations=1)

    lines = [
        f"T3 handwriting times (s): min {times.min():.0f}  "
        f"median {np.median(times):.0f}  mean {times.mean():.0f}  "
        f"max {times.max():.0f}   (paper: 37 / 82 / 140 / 411)",
        f"manual-from-scratch estimate: {accounting['scratch_minutes']:.0f} min "
        f"for {len(bench.pairs)} NL queries",
        f"synthesizer manual-revision time: "
        f"{accounting['synthesizer_minutes']:.0f} min",
        f"man-hour ratio: {accounting['ratio']:.1%} "
        f"(paper: 5.7%)   speedup: {accounting['speedup']:.1f}x (paper: 17.5x)",
    ]
    emit("Figure 14 — man-hour accounting", "\n".join(lines))

    assert 37 <= np.median(times) <= 200
    assert accounting["ratio"] < 0.35
    assert accounting["speedup"] > 3
