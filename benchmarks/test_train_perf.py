"""Training-engine performance harness (`BENCH_train.json` trajectory).

Trains the attention variant three times on one shared benchmark split:

* **baseline** — the seed-equivalent engine: float64, the op-by-op LSTM
  graph (``fused=False``), and the per-parameter-loop
  :class:`~repro.neural.optimizer.ReferenceAdam`.
* **parity** — the fused kernels + flat Adam, still at float64.  Its
  loss curve must match the baseline within 1e-6 per epoch: the fused
  engine computes the same forward values bit for bit, so any drift
  would be a backward bug, not noise.
* **optimized** — the default training configuration: fused + flat Adam
  at float32.

Asserts the optimized engine is ≥ 3× the baseline's tokens/sec, that
``greedy_decode_batch`` is token-identical to per-example decoding, and
writes ``results/BENCH_train.json`` with all three profiles so the
trajectory can be compared across commits.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.eval.harness import ExperimentConfig, build_model, make_datasets
from repro.neural.trainer import TrainConfig, train_model
from repro.perf import TrainProfiler
from repro.spider.corpus import CorpusConfig, build_spider_corpus

from conftest import emit, results_path

PARITY_ATOL = 1e-6
MIN_SPEEDUP = 3.0


@dataclass(frozen=True)
class TrainBenchProfile:
    num_databases: int
    pairs_per_database: int
    embed_dim: int
    hidden_dim: int
    epochs: int
    batch_size: int


DEFAULT_PROFILE = TrainBenchProfile(
    num_databases=6, pairs_per_database=10,
    embed_dim=56, hidden_dim=96, epochs=3, batch_size=24,
)
# Same model dims as the default profile (tiny models are dominated by
# Python dispatch on BOTH engines, which understates the speedup); the
# corpus is what shrinks in quick mode.
QUICK_PROFILE = TrainBenchProfile(
    num_databases=3, pairs_per_database=8,
    embed_dim=56, hidden_dim=96, epochs=2, batch_size=24,
)


def _datasets(profile: TrainBenchProfile):
    corpus_config = CorpusConfig(
        num_databases=profile.num_databases,
        pairs_per_database=profile.pairs_per_database,
        row_scale=0.5,
        seed=7,
    )
    corpus = build_spider_corpus(corpus_config)
    bench = build_nvbench(
        corpus=corpus, config=NVBenchConfig(corpus=corpus_config, seed=7)
    )
    config = ExperimentConfig(
        embed_dim=profile.embed_dim, hidden_dim=profile.hidden_dim
    )
    return bench, config, make_datasets(bench, config)


def _run(profile, exp_config, train_set, val_set, dtype, fused, repeats=2):
    """Train with one engine; returns the best-throughput repeat.

    Every repeat is seeded identically, so the loss curves are the same
    and only the wall-clock differs; taking the fastest repeat filters
    transient machine load out of the speedup ratio.
    """
    train_config = TrainConfig(
        epochs=profile.epochs,
        batch_size=profile.batch_size,
        lr=5e-3,
        clip_norm=5.0,
        patience=profile.epochs,  # no early stop: same step count per run
        seed=0,
        dtype=dtype,
        fused=fused,
    )
    best = None
    for _ in range(repeats):
        model = build_model("attention", train_set, exp_config)
        profiler = TrainProfiler()
        result = train_model(
            model, train_set, val_set, train_config, profile=profiler
        )
        if best is None or profiler.tokens_per_sec > best[2].tokens_per_sec:
            best = (model, result, profiler)
    return best


def test_fast_engine_speedup_and_parity():
    profile = (
        QUICK_PROFILE
        if os.environ.get("REPRO_BENCH_PROFILE") == "quick"
        else DEFAULT_PROFILE
    )
    bench, exp_config, (train_set, val_set, test_set) = _datasets(profile)

    base_model, base_result, base_prof = _run(
        profile, exp_config, train_set, val_set, "float64", fused=False
    )
    parity_model, parity_result, parity_prof = _run(
        profile, exp_config, train_set, val_set, "float64", fused=True
    )
    opt_model, opt_result, opt_prof = _run(
        profile, exp_config, train_set, val_set, "float32", fused=True
    )

    speedup = opt_prof.tokens_per_sec / base_prof.tokens_per_sec
    parity_drift = float(
        np.max(
            np.abs(
                np.asarray(parity_result.train_losses)
                - np.asarray(base_result.train_losses)
            )
        )
    )

    # Batched decode parity on the held-out test set (fast path the
    # eval harness and the serving layer both use).
    out_vocab = test_set.out_vocab
    decode_batch = test_set.batch_of(test_set.examples)
    batched = opt_model.greedy_decode_batch(
        decode_batch, out_vocab.bos_id, out_vocab.eos_id
    )
    singles = []
    for example in test_set.examples:
        single = test_set.batch_of([example])
        singles.extend(
            opt_model.greedy_decode(single, out_vocab.bos_id, out_vocab.eos_id)
        )
    decode_identical = batched == singles

    trajectory = {
        "profile": {
            "num_databases": profile.num_databases,
            "pairs_per_database": profile.pairs_per_database,
            "embed_dim": profile.embed_dim,
            "hidden_dim": profile.hidden_dim,
            "epochs": profile.epochs,
            "batch_size": profile.batch_size,
            "train_examples": len(train_set),
        },
        "speedup": speedup,
        "parity_max_epoch_drift": parity_drift,
        "decode_token_identical": decode_identical,
        "baseline": {
            "engine": "float64 unfused ReferenceAdam",
            "train_losses": base_result.train_losses,
            **base_prof.report(),
        },
        "parity": {
            "engine": "float64 fused flat-Adam",
            "train_losses": parity_result.train_losses,
            **parity_prof.report(),
        },
        "optimized": {
            "engine": "float32 fused flat-Adam",
            "train_losses": opt_result.train_losses,
            **opt_prof.report(),
        },
    }
    results_path("BENCH_train.json").write_text(json.dumps(trajectory, indent=2))

    emit(
        "BENCH training engine",
        f"baseline  (f64 unfused) {base_prof.tokens_per_sec:10.0f} tokens/sec\n"
        f"parity    (f64 fused)   {parity_prof.tokens_per_sec:10.0f} tokens/sec\n"
        f"optimized (f32 fused)   {opt_prof.tokens_per_sec:10.0f} tokens/sec\n"
        f"speedup                 {speedup:10.2f}x\n"
        f"parity max epoch drift  {parity_drift:10.2e}\n"
        f"decode token-identical  {decode_identical!s:>10}",
    )

    assert parity_drift <= PARITY_ATOL, (
        f"fused float64 loss curve drifted {parity_drift:.2e} from the "
        f"reference engine (allowed {PARITY_ATOL:.0e})"
    )
    assert decode_identical, "greedy_decode_batch diverged from per-example decode"
    assert speedup >= MIN_SPEEDUP, f"fast engine only {speedup:.2f}x the baseline"
