"""AST node classes for the unified SQL/VIS grammar (paper Figure 5).

All nodes are immutable (frozen dataclasses built on tuples), which makes
them hashable — the synthesizer relies on this to deduplicate candidate
VIS trees, and the evaluation metrics rely on structural equality.

The node hierarchy mirrors the productions of Figure 5:

* ``SQLQuery``  — ``Root ::= Q``
* ``VisQuery``  — ``Root ::= Visualize Q``
* ``SetQuery``  — ``Q ::= intersect R R | union R R | except R R``
* ``QueryCore`` — ``R`` (Select plus optional Group/Order/Superlative/Filter)
* ``Attribute`` — ``A ::= agg C T | C T``
* ``Group``     — ``grouping A | binning A``
* predicates    — the ``Filter`` production
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple, Union

AGG_FUNCTIONS: Tuple[str, ...] = ("max", "min", "count", "sum", "avg")
VIS_TYPES: Tuple[str, ...] = (
    "bar",
    "pie",
    "line",
    "scatter",
    "stacked bar",
    "grouping line",
    "grouping scatter",
)
SET_OPERATORS: Tuple[str, ...] = ("intersect", "union", "except")
COMPARISON_OPERATORS: Tuple[str, ...] = (">", "<", ">=", "<=", "!=", "=")
#: Temporal bin units from Section 2.3, plus ``numeric`` for equal-width
#: binning of quantitative columns (default ten bins).
BIN_UNITS: Tuple[str, ...] = (
    "minute",
    "hour",
    "weekday",
    "month",
    "quarter",
    "year",
    "numeric",
)

Value = Union[int, float, str]


@dataclass(frozen=True)
class Attribute:
    """An ``A`` node: a (possibly aggregated) column of a table.

    ``column == "*"`` is only meaningful together with ``agg == "count"``
    (``COUNT(*)``).
    """

    column: str
    table: str
    agg: Optional[str] = None

    def __post_init__(self) -> None:
        if self.agg is not None and self.agg not in AGG_FUNCTIONS:
            raise ValueError(f"unknown aggregate function: {self.agg!r}")
        if self.column == "*" and self.agg != "count":
            raise ValueError("'*' is only valid inside count(*)")

    @property
    def is_aggregated(self) -> bool:
        """True when an aggregate function wraps the column."""
        return self.agg is not None

    @property
    def qualified_name(self) -> str:
        """``table.column`` form without the aggregate."""
        return f"{self.table}.{self.column}"

    def bare(self) -> "Attribute":
        """Return the same column reference without its aggregate."""
        return replace(self, agg=None)

    def __str__(self) -> str:
        if self.agg is None:
            return self.qualified_name
        return f"{self.agg}({self.qualified_name})"


class Predicate:
    """Marker base class for the ``Filter`` production."""

    def children(self) -> Iterator["Predicate"]:
        """Child predicates (empty for leaf predicates)."""
        return iter(())

    def attributes(self) -> Iterator[Attribute]:
        """Attributes referenced by this predicate subtree."""
        return iter(())


@dataclass(frozen=True)
class Comparison(Predicate):
    """``op A V`` — compare an attribute against a literal value."""

    op: str
    attr: Attribute
    value: Value

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator: {self.op!r}")

    def attributes(self) -> Iterator[Attribute]:
        yield self.attr


@dataclass(frozen=True)
class SubqueryComparison(Predicate):
    """``op A R`` — compare an attribute against a scalar subquery."""

    op: str
    attr: Attribute
    query: "QueryCore"

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator: {self.op!r}")

    def attributes(self) -> Iterator[Attribute]:
        yield self.attr


@dataclass(frozen=True)
class Between(Predicate):
    """``between A V V``."""

    attr: Attribute
    low: Value
    high: Value

    def attributes(self) -> Iterator[Attribute]:
        yield self.attr


@dataclass(frozen=True)
class Like(Predicate):
    """``like A V`` / ``not like A V`` with a SQL LIKE pattern."""

    attr: Attribute
    pattern: str
    negated: bool = False

    def attributes(self) -> Iterator[Attribute]:
        yield self.attr


@dataclass(frozen=True)
class InSubquery(Predicate):
    """``in A R`` / ``not in A R``."""

    attr: Attribute
    query: "QueryCore"
    negated: bool = False

    def attributes(self) -> Iterator[Attribute]:
        yield self.attr


@dataclass(frozen=True)
class LogicalPredicate(Predicate):
    """``and Filter Filter | or Filter Filter``."""

    op: str
    left: Predicate
    right: Predicate

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ValueError(f"unknown logical operator: {self.op!r}")

    def children(self) -> Iterator[Predicate]:
        yield self.left
        yield self.right

    def attributes(self) -> Iterator[Attribute]:
        yield from self.left.attributes()
        yield from self.right.attributes()


@dataclass(frozen=True)
class Filter:
    """Filter subtree wrapping a predicate tree."""

    root: Predicate

    def attributes(self) -> Iterator[Attribute]:
        return self.root.attributes()

    def predicates(self) -> Iterator[Predicate]:
        """Yield every predicate node in the tree (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())


@dataclass(frozen=True)
class Order:
    """``asc A | desc A``."""

    direction: str
    attr: Attribute

    def __post_init__(self) -> None:
        if self.direction not in ("asc", "desc"):
            raise ValueError(f"unknown order direction: {self.direction!r}")


@dataclass(frozen=True)
class Superlative:
    """``most V A | least V A`` — ORDER BY attr DESC/ASC LIMIT k."""

    kind: str
    k: int
    attr: Attribute

    def __post_init__(self) -> None:
        if self.kind not in ("most", "least"):
            raise ValueError(f"unknown superlative kind: {self.kind!r}")
        if self.k < 1:
            raise ValueError("superlative k must be positive")


@dataclass(frozen=True)
class Group:
    """``grouping A | binning A``.

    For ``binning``, ``bin_unit`` selects the bucketing policy: one of the
    temporal units from Section 2.3 or ``"numeric"`` for equal-width bins
    with ``bin_count`` buckets (paper default 10).
    """

    kind: str
    attr: Attribute
    bin_unit: Optional[str] = None
    bin_count: int = 10

    def __post_init__(self) -> None:
        if self.kind not in ("grouping", "binning"):
            raise ValueError(f"unknown group kind: {self.kind!r}")
        if self.kind == "binning":
            if self.bin_unit not in BIN_UNITS:
                raise ValueError(f"unknown bin unit: {self.bin_unit!r}")
        elif self.bin_unit is not None:
            raise ValueError("grouping does not take a bin unit")


@dataclass(frozen=True)
class QueryCore:
    """The ``R`` production: Select plus optional clauses."""

    select: Tuple[Attribute, ...]
    filter: Optional[Filter] = None
    groups: Tuple[Group, ...] = field(default_factory=tuple)
    order: Optional[Order] = None
    superlative: Optional[Superlative] = None

    def __post_init__(self) -> None:
        if not self.select:
            raise ValueError("select list must not be empty")
        if len(self.groups) > 2:
            raise ValueError("at most two group operations are supported")

    @property
    def tables(self) -> Tuple[str, ...]:
        """All tables referenced anywhere in this core, in first-use order."""
        seen: dict = {}
        for attr in self.all_attributes():
            seen.setdefault(attr.table, None)
        return tuple(seen)

    def all_attributes(self) -> Iterator[Attribute]:
        """Every attribute node in select/filter/groups/order/superlative."""
        yield from self.select
        if self.filter is not None:
            yield from self.filter.attributes()
        for group in self.groups:
            yield group.attr
        if self.order is not None:
            yield self.order.attr
        if self.superlative is not None:
            yield self.superlative.attr

    def subqueries(self) -> Iterator["QueryCore"]:
        """Nested query cores appearing inside filter predicates."""
        if self.filter is None:
            return
        for pred in self.filter.predicates():
            if isinstance(pred, (SubqueryComparison, InSubquery)):
                yield pred.query
                yield from pred.query.subqueries()


@dataclass(frozen=True)
class SetQuery:
    """``Q ::= intersect R R | union R R | except R R``."""

    op: str
    left: QueryCore
    right: QueryCore

    def __post_init__(self) -> None:
        if self.op not in SET_OPERATORS:
            raise ValueError(f"unknown set operator: {self.op!r}")


QueryBody = Union[QueryCore, SetQuery]


@dataclass(frozen=True)
class SQLQuery:
    """``Root ::= Q`` — a pure data query."""

    body: QueryBody

    @property
    def cores(self) -> Tuple[QueryCore, ...]:
        """The query's cores (two for set operations, else one)."""
        return _cores_of(self.body)


@dataclass(frozen=True)
class VisQuery:
    """``Root ::= Visualize Q`` — a visualization query."""

    vis_type: str
    body: QueryBody

    def __post_init__(self) -> None:
        if self.vis_type not in VIS_TYPES:
            raise ValueError(f"unknown vis type: {self.vis_type!r}")

    @property
    def cores(self) -> Tuple[QueryCore, ...]:
        """The query's cores (two for set operations, else one)."""
        return _cores_of(self.body)

    @property
    def primary_core(self) -> QueryCore:
        """The first (or only) core — carries the chart axes."""
        return self.cores[0]


def _cores_of(body: QueryBody) -> Tuple[QueryCore, ...]:
    if isinstance(body, SetQuery):
        return (body.left, body.right)
    return (body,)


def walk(query: Union[SQLQuery, VisQuery]) -> Iterator[object]:
    """Yield every AST node of a query in pre-order.

    The traversal covers set-operation branches, clause subtrees, and
    predicate subqueries; it is the basis of the hardness classifier and
    several structural tests.
    """
    yield query
    for core in query.cores:
        yield from _walk_core(core)


def _walk_core(core: QueryCore) -> Iterator[object]:
    yield core
    yield from core.select
    for group in core.groups:
        yield group
        yield group.attr
    if core.order is not None:
        yield core.order
        yield core.order.attr
    if core.superlative is not None:
        yield core.superlative
        yield core.superlative.attr
    if core.filter is not None:
        yield core.filter
        for pred in core.filter.predicates():
            yield pred
            if isinstance(pred, (SubqueryComparison, InSubquery)):
                yield from _walk_core(pred.query)
