"""Structural validation of AST queries.

This checks *grammar-level* well-formedness (select arity per vis type,
group/aggregate consistency, set-operation shape).  Data-aware validity —
whether a chart makes sense for the actual column types — lives in
:mod:`repro.core.vis_rules` (the paper's Table 1).
"""

from __future__ import annotations

from typing import Union

from repro.grammar.ast_nodes import (
    QueryCore,
    SetQuery,
    SQLQuery,
    VisQuery,
)
from repro.grammar.errors import GrammarError

#: Number of selected attributes each vis type expects on its axes:
#: two for (x, y) charts, three for charts with a color/series channel.
_VIS_ARITY = {
    "bar": 2,
    "pie": 2,
    "line": 2,
    "scatter": 2,
    "stacked bar": 3,
    "grouping line": 3,
    "grouping scatter": 3,
}

#: Vis types whose x- or y-axis may carry an Order subtree (Section 2.3).
ORDERABLE_VIS_TYPES = frozenset({"bar", "stacked bar", "line", "grouping line"})


def vis_arity(vis_type: str) -> int:
    """Number of select attributes required by *vis_type*."""
    try:
        return _VIS_ARITY[vis_type]
    except KeyError:
        raise GrammarError(f"unknown vis type: {vis_type!r}") from None


def validate_query(query: Union[SQLQuery, VisQuery]) -> None:
    """Raise :class:`GrammarError` if *query* is structurally invalid."""
    if isinstance(query, VisQuery):
        for core in query.cores:
            _validate_core(core)
            _validate_vis_core(query.vis_type, core)
    elif isinstance(query, SQLQuery):
        for core in query.cores:
            _validate_core(core)
    else:
        raise TypeError(f"expected SQLQuery or VisQuery, got {type(query)!r}")


def _validate_core(core: QueryCore) -> None:
    group_columns = {group.attr.qualified_name for group in core.groups}
    if len(group_columns) != len(core.groups):
        raise GrammarError("duplicate group column")
    for group in core.groups:
        if group.attr.is_aggregated:
            raise GrammarError("group attribute must not be aggregated")
    if core.groups:
        # With grouping/binning present, non-grouped selected columns must
        # be aggregated (standard GROUP BY semantics).
        for attr in core.select:
            if attr.is_aggregated:
                continue
            if attr.qualified_name not in group_columns:
                raise GrammarError(
                    f"bare select attribute {attr} not covered by grouping"
                )
    for sub in core.subqueries():
        if len(sub.select) != 1:
            raise GrammarError("subqueries must select exactly one attribute")
        _validate_core(sub)


def _validate_vis_core(vis_type: str, core: QueryCore) -> None:
    expected = vis_arity(vis_type)
    if len(core.select) != expected:
        raise GrammarError(
            f"{vis_type} chart needs {expected} select attributes, "
            f"got {len(core.select)}"
        )
    if core.order is not None and vis_type not in ORDERABLE_VIS_TYPES:
        raise GrammarError(f"{vis_type} charts do not support ordering")


def validate_set_query(body: SetQuery) -> None:
    """Both branches of a set operation must be union-compatible."""
    if len(body.left.select) != len(body.right.select):
        raise GrammarError("set-operation branches select different arities")
