"""Linearize AST queries to token sequences and parse them back.

The token sequence is the *surface language of the seq2vis model*: the
decoder emits these tokens and the evaluation pipeline parses them back
into trees.  The format is a canonical prefix notation, e.g.::

    visualize pie select count ( flight.id ) , flight.origin
    group grouping flight.origin

Literal values are single tokens (numbers as written, strings quoted);
``to_tokens(query, mask_values=True)`` replaces them with the ``<V>``
placeholder because seq2vis predicts the tree shape and a separate slot
filling heuristic restores values (Section 4.2 of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.grammar.ast_nodes import (
    SET_OPERATORS,
    VIS_TYPES,
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Order,
    Predicate,
    QueryBody,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    SubqueryComparison,
    Value,
    VisQuery,
)
from repro.grammar.errors import ParseError

#: Placeholder emitted in place of literal values when masking.
VALUE_TOKEN = "<V>"

_VIS_TYPE_TO_TOKEN = {name: name.replace(" ", "_") for name in VIS_TYPES}
_TOKEN_TO_VIS_TYPE = {token: name for name, token in _VIS_TYPE_TO_TOKEN.items()}

_COMPARISON_TOKENS = (">", "<", ">=", "<=", "!=", "=")
_PREDICATE_HEADS = _COMPARISON_TOKENS + (
    "and",
    "or",
    "between",
    "like",
    "not_like",
    "in",
    "not_in",
)


def to_tokens(
    query: Union[SQLQuery, VisQuery], mask_values: bool = False
) -> List[str]:
    """Linearize *query* into its canonical token sequence."""
    tokens: List[str] = []
    if isinstance(query, VisQuery):
        tokens.append("visualize")
        tokens.append(_VIS_TYPE_TO_TOKEN[query.vis_type])
        _emit_body(query.body, tokens, mask_values)
    elif isinstance(query, SQLQuery):
        _emit_body(query.body, tokens, mask_values)
    else:
        raise TypeError(f"expected SQLQuery or VisQuery, got {type(query)!r}")
    return tokens


def to_text(query: Union[SQLQuery, VisQuery], mask_values: bool = False) -> str:
    """Space-joined form of :func:`to_tokens`, handy for logs and tests."""
    return " ".join(to_tokens(query, mask_values=mask_values))


def _emit_body(body: QueryBody, tokens: List[str], mask: bool) -> None:
    if isinstance(body, SetQuery):
        tokens.append(body.op)
        _emit_core(body.left, tokens, mask)
        _emit_core(body.right, tokens, mask)
    else:
        _emit_core(body, tokens, mask)


def _emit_core(core: QueryCore, tokens: List[str], mask: bool) -> None:
    tokens.append("select")
    for index, attr in enumerate(core.select):
        if index:
            tokens.append(",")
        _emit_attr(attr, tokens)
    if core.groups:
        tokens.append("group")
        for group in core.groups:
            _emit_group(group, tokens)
    if core.order is not None:
        tokens.append("order")
        tokens.append(core.order.direction)
        _emit_attr(core.order.attr, tokens)
    if core.superlative is not None:
        # The superlative k (LIMIT) is structural, never masked: seq2vis
        # predicts it directly rather than via the value-slot heuristic.
        tokens.append(core.superlative.kind)
        tokens.append(str(core.superlative.k))
        _emit_attr(core.superlative.attr, tokens)
    if core.filter is not None:
        tokens.append("filter")
        _emit_predicate(core.filter.root, tokens, mask)


def _emit_attr(attr: Attribute, tokens: List[str]) -> None:
    if attr.agg is not None:
        tokens.extend([attr.agg, "(", attr.qualified_name, ")"])
    else:
        tokens.append(attr.qualified_name)


def _emit_group(group: Group, tokens: List[str]) -> None:
    tokens.append(group.kind)
    tokens.append(group.attr.qualified_name)
    if group.kind == "binning":
        tokens.extend(["by", group.bin_unit])
        if group.bin_unit == "numeric":
            tokens.extend(["bins", str(group.bin_count)])


def _emit_predicate(pred: Predicate, tokens: List[str], mask: bool) -> None:
    if isinstance(pred, LogicalPredicate):
        tokens.append(pred.op)
        _emit_predicate(pred.left, tokens, mask)
        _emit_predicate(pred.right, tokens, mask)
    elif isinstance(pred, Comparison):
        tokens.append(pred.op)
        _emit_attr(pred.attr, tokens)
        tokens.append(_encode_value(pred.value, mask))
    elif isinstance(pred, SubqueryComparison):
        tokens.append(pred.op)
        _emit_attr(pred.attr, tokens)
        tokens.append("(")
        _emit_core(pred.query, tokens, mask)
        tokens.append(")")
    elif isinstance(pred, Between):
        tokens.append("between")
        _emit_attr(pred.attr, tokens)
        tokens.append(_encode_value(pred.low, mask))
        tokens.append(_encode_value(pred.high, mask))
    elif isinstance(pred, Like):
        tokens.append("not_like" if pred.negated else "like")
        _emit_attr(pred.attr, tokens)
        tokens.append(_encode_value(pred.pattern, mask))
    elif isinstance(pred, InSubquery):
        tokens.append("not_in" if pred.negated else "in")
        _emit_attr(pred.attr, tokens)
        tokens.append("(")
        _emit_core(pred.query, tokens, mask)
        tokens.append(")")
    else:
        raise TypeError(f"unknown predicate node: {type(pred)!r}")


def _encode_value(value: Value, mask: bool) -> str:
    if mask:
        return VALUE_TOKEN
    if isinstance(value, bool):
        raise TypeError("boolean literals are not part of the grammar")
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace('"', '\\"')
    return f'"{escaped}"'


def _decode_value(token: str) -> Value:
    if token == VALUE_TOKEN:
        return VALUE_TOKEN
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise ParseError(f"unterminated string literal: {token!r}")
        return token[1:-1].replace('\\"', '"')
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError as exc:
        raise ParseError(f"invalid value literal: {token!r}") from exc


class _Cursor:
    """A peek/next cursor over a token sequence."""

    def __init__(self, tokens: Sequence[str]):
        self._tokens = list(tokens)
        self._index = 0

    def peek(self, ahead: int = 0) -> Optional[str]:
        index = self._index + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of token sequence")
        self._index += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise ParseError(f"expected {expected!r}, got {token!r}")
        return token

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    @property
    def position(self) -> int:
        return self._index


def from_tokens(tokens: Sequence[str]) -> Union[SQLQuery, VisQuery]:
    """Parse a canonical token sequence back into an AST query.

    Raises :class:`ParseError` on any malformed sequence — the evaluation
    pipeline treats unparseable model output as a non-matching prediction.
    """
    cursor = _Cursor(tokens)
    if cursor.peek() == "visualize":
        cursor.next()
        vis_token = cursor.next()
        vis_type = _TOKEN_TO_VIS_TYPE.get(vis_token)
        if vis_type is None:
            raise ParseError(f"unknown vis type token: {vis_token!r}")
        body = _parse_body(cursor)
        query: Union[SQLQuery, VisQuery] = VisQuery(vis_type=vis_type, body=body)
    else:
        query = SQLQuery(body=_parse_body(cursor))
    if not cursor.exhausted:
        raise ParseError(
            f"trailing tokens after query at position {cursor.position}"
        )
    return query


def _parse_body(cursor: _Cursor) -> QueryBody:
    head = cursor.peek()
    if head in SET_OPERATORS:
        cursor.next()
        left = _parse_core(cursor)
        right = _parse_core(cursor)
        return SetQuery(op=head, left=left, right=right)
    return _parse_core(cursor)


def _parse_core(cursor: _Cursor) -> QueryCore:
    cursor.expect("select")
    select = [_parse_attr(cursor)]
    while cursor.peek() == ",":
        cursor.next()
        select.append(_parse_attr(cursor))

    groups: List[Group] = []
    if cursor.peek() == "group":
        cursor.next()
        while cursor.peek() in ("grouping", "binning"):
            groups.append(_parse_group(cursor))
        if not groups:
            raise ParseError("'group' keyword without group operations")

    order = None
    if cursor.peek() == "order":
        cursor.next()
        direction = cursor.next()
        order = Order(direction=direction, attr=_parse_attr(cursor))

    superlative = None
    if cursor.peek() in ("most", "least"):
        kind = cursor.next()
        k_value = _decode_value(cursor.next())
        if not isinstance(k_value, int):
            raise ParseError(f"superlative k must be an integer, got {k_value!r}")
        superlative = Superlative(kind=kind, k=k_value, attr=_parse_attr(cursor))

    filter_ = None
    if cursor.peek() == "filter":
        cursor.next()
        filter_ = Filter(root=_parse_predicate(cursor))

    try:
        return QueryCore(
            select=tuple(select),
            filter=filter_,
            groups=tuple(groups),
            order=order,
            superlative=superlative,
        )
    except ValueError as exc:
        raise ParseError(str(exc)) from exc


def _parse_attr(cursor: _Cursor) -> Attribute:
    token = cursor.next()
    agg = None
    if token in ("max", "min", "count", "sum", "avg"):
        agg = token
        cursor.expect("(")
        token = cursor.next()
        qualified = token
        cursor.expect(")")
    else:
        qualified = token
    table, sep, column = qualified.partition(".")
    if not sep or not table or not column:
        raise ParseError(f"expected table.column, got {qualified!r}")
    try:
        return Attribute(column=column, table=table, agg=agg)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc


def _parse_group(cursor: _Cursor) -> Group:
    kind = cursor.next()
    attr = _parse_qualified_attr(cursor)
    bin_unit = None
    bin_count = 10
    if kind == "binning":
        cursor.expect("by")
        bin_unit = cursor.next()
        if bin_unit == "numeric" and cursor.peek() == "bins":
            cursor.next()
            count_value = _decode_value(cursor.next())
            if not isinstance(count_value, int):
                raise ParseError("bin count must be an integer")
            bin_count = count_value
    try:
        return Group(kind=kind, attr=attr, bin_unit=bin_unit, bin_count=bin_count)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc


def _parse_qualified_attr(cursor: _Cursor) -> Attribute:
    qualified = cursor.next()
    table, sep, column = qualified.partition(".")
    if not sep or not table or not column:
        raise ParseError(f"expected table.column, got {qualified!r}")
    try:
        return Attribute(column=column, table=table)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc


def _parse_predicate(cursor: _Cursor) -> Predicate:
    head = cursor.next()
    if head in ("and", "or"):
        left = _parse_predicate(cursor)
        right = _parse_predicate(cursor)
        return LogicalPredicate(op=head, left=left, right=right)
    if head in _COMPARISON_TOKENS:
        attr = _parse_attr(cursor)
        if cursor.peek() == "(":
            cursor.next()
            query = _parse_core(cursor)
            cursor.expect(")")
            return SubqueryComparison(op=head, attr=attr, query=query)
        return Comparison(op=head, attr=attr, value=_decode_value(cursor.next()))
    if head == "between":
        attr = _parse_attr(cursor)
        low = _decode_value(cursor.next())
        high = _decode_value(cursor.next())
        return Between(attr=attr, low=low, high=high)
    if head in ("like", "not_like"):
        attr = _parse_attr(cursor)
        pattern = _decode_value(cursor.next())
        return Like(attr=attr, pattern=str(pattern), negated=head == "not_like")
    if head in ("in", "not_in"):
        attr = _parse_attr(cursor)
        cursor.expect("(")
        query = _parse_core(cursor)
        cursor.expect(")")
        return InSubquery(attr=attr, query=query, negated=head == "not_in")
    raise ParseError(f"unknown predicate head token: {head!r}")
