"""Unified AST grammar bridging SQL and VIS queries (paper Figure 5).

The grammar extends SemQL with a ``Visualize`` production and a ``binning``
group operator so that one intermediate representation can express both the
*what data* part (inherited from SQL) and the *how to visualize* part (added
by the synthesizer).  Every other subsystem — the SQL parser, the relational
executor, the tree-edit synthesizer, the VIS backends, and the seq2vis
neural model — speaks this AST.
"""

from repro.grammar.ast_nodes import (
    AGG_FUNCTIONS,
    BIN_UNITS,
    SET_OPERATORS,
    VIS_TYPES,
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Order,
    Predicate,
    QueryBody,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    SubqueryComparison,
    VisQuery,
    walk,
)
from repro.grammar.errors import GrammarError, ParseError
from repro.grammar.serialize import from_tokens, to_text, to_tokens
from repro.grammar.validate import validate_query, vis_arity

__all__ = [
    "AGG_FUNCTIONS",
    "BIN_UNITS",
    "SET_OPERATORS",
    "VIS_TYPES",
    "Attribute",
    "Between",
    "Comparison",
    "Filter",
    "Group",
    "GrammarError",
    "InSubquery",
    "Like",
    "LogicalPredicate",
    "Order",
    "ParseError",
    "Predicate",
    "QueryBody",
    "QueryCore",
    "SetQuery",
    "SQLQuery",
    "Superlative",
    "SubqueryComparison",
    "VisQuery",
    "from_tokens",
    "to_text",
    "to_tokens",
    "validate_query",
    "vis_arity",
    "walk",
]
