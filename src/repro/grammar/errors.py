"""Exception types shared by the grammar subsystem."""


class GrammarError(ValueError):
    """Raised when an AST violates the structural rules of the grammar."""


class ParseError(ValueError):
    """Raised when a token sequence or SQL string cannot be parsed."""
