"""Timing instrumentation for the benchmark build pipeline.

:class:`BuildProfiler` collects named stages (wall time + call counts)
and free-form counters (cache hits, candidate counts, ...).  It is
deliberately tiny: a stage is a ``with profiler.stage("name"):`` block,
and the whole profile serializes to one JSON object so build runs can be
compared across commits (``benchmarks/test_build_perf.py`` records such
a trajectory in ``BENCH_build.json``).

Stages may nest — ``synthesize`` encloses ``candidates``/``featurize``/
``score`` — so child stage times are *included* in their parent's total;
the report is a flat map, not a tree.

Every instrumented entry point takes ``profiler=None`` and stays
zero-overhead when no profiler is passed; use the module-level
:func:`stage` helper to guard a block against a ``None`` profiler.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional


@dataclass
class StageStats:
    """Accumulated wall time and call count of one named stage."""

    calls: int = 0
    seconds: float = 0.0


class BuildProfiler:
    """Collects per-stage wall times, call counts, and counters."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._created = clock()
        self.stages: Dict[str, StageStats] = {}
        self.counters: Dict[str, int] = {}

    # ----- recording ---------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one ``with`` block under *name*."""
        start = self._clock()
        try:
            yield
        finally:
            self.record(name, self._clock() - start)

    def record(self, name: str, seconds: float, calls: int = 1) -> None:
        """Add *seconds* of wall time (and *calls* invocations) to a stage."""
        stats = self.stages.setdefault(name, StageStats())
        stats.calls += calls
        stats.seconds += seconds

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def count_max(self, name: str, value: int) -> None:
        """Record a high-water-mark counter (keeps the max, not a sum).

        Used by the streamed build for ``resident_pairs_peak`` — the
        largest pair set held in memory at once, the bounded-memory
        evidence in ``BENCH_build.json``.  High-water counters are only
        recorded by the coordinating profiler, so :meth:`merge_report`
        (which sums) never touches them.
        """
        self.counters[name] = max(self.counters.get(name, 0), value)

    def merge_report(self, report: dict) -> None:
        """Fold another profiler's :meth:`report` into this one.

        Used by the parallel build to absorb per-worker profiles into the
        coordinating profiler.
        """
        for name, stats in report.get("stages", {}).items():
            self.record(name, stats["seconds"], calls=stats["calls"])
        for name, amount in report.get("counters", {}).items():
            self.count(name, amount)

    # ----- reporting ---------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Wall time since this profiler was created."""
        return self._clock() - self._created

    def report(self) -> dict:
        """The full profile as one JSON-serializable dict."""
        return {
            "total_seconds": self.elapsed,
            "stages": {
                name: {"calls": stats.calls, "seconds": stats.seconds}
                for name, stats in sorted(self.stages.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def write_json(self, path: str) -> dict:
        """Write :meth:`report` to *path*; returns the report."""
        report = self.report()
        Path(path).write_text(json.dumps(report, indent=2))
        return report

    def summary(self) -> str:
        """Human-readable multi-line stage/counter table."""
        lines = []
        for name, stats in sorted(
            self.stages.items(), key=lambda item: -item[1].seconds
        ):
            lines.append(
                f"{name:24s} {stats.seconds:8.3f}s  ({stats.calls} calls)"
            )
        for name, amount in sorted(self.counters.items()):
            lines.append(f"{name:24s} {amount:8d}")
        return "\n".join(lines)


@contextmanager
def stage(profiler: Optional[BuildProfiler], name: str) -> Iterator[None]:
    """``profiler.stage(name)`` that tolerates ``profiler=None``."""
    if profiler is None:
        yield
    else:
        with profiler.stage(name):
            yield
