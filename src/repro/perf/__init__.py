"""Performance layer: build profiling and execution caching.

See ``docs/PERFORMANCE.md`` for the profiler API, the execution-cache
semantics, and how to read a ``BENCH_build.json`` trajectory.
"""

from repro.perf.profiler import BuildProfiler, StageStats, stage

__all__ = ["BuildProfiler", "StageStats", "stage"]
