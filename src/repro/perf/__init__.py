"""Performance layer: build profiling, execution caching, histograms.

See ``docs/PERFORMANCE.md`` for the profiler API, the execution-cache
semantics, and how to read a ``BENCH_build.json`` trajectory;
``docs/SERVING.md`` covers the histogram-backed serving metrics.
"""

from repro.perf.histogram import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_MS,
    Histogram,
)
from repro.perf.profiler import BuildProfiler, StageStats, stage

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BuildProfiler",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "StageStats",
    "stage",
]
