"""Performance layer: build/train profiling, execution caching, histograms.

See ``docs/PERFORMANCE.md`` for the profiler APIs, the execution-cache
semantics, and how to read the ``BENCH_build.json`` /
``BENCH_train.json`` trajectories; ``docs/SERVING.md`` covers the
histogram-backed serving metrics.
"""

from repro.perf.histogram import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_MS,
    Histogram,
    merge_summaries,
)
from repro.perf.profiler import BuildProfiler, StageStats, stage
from repro.perf.train import TrainProfiler

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BuildProfiler",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "StageStats",
    "TrainProfiler",
    "merge_summaries",
    "stage",
]
