"""Fixed-bucket histograms for the serving layer's metrics.

A :class:`Histogram` counts observations into configured upper-bound
buckets (Prometheus style: each bucket counts values ``<= bound``, with
an implicit ``+inf`` bucket at the end) and additionally keeps a bounded
window of recent raw observations so percentiles stay exact for the
request volumes the test/benchmark harnesses produce.  All methods are
thread-safe — the inference server observes latencies from the event
loop and batch sizes from executor threads concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Sequence

#: Default latency buckets (milliseconds), log-ish spaced.
LATENCY_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Default batch-size buckets (requests per forward pass).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class Histogram:
    """Counts observations into ``<= bound`` buckets; exact percentiles
    over a bounded window of the most recent observations."""

    def __init__(
        self,
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
        window: int = 4096,
    ):
        if list(buckets) != sorted(buckets):
            raise ValueError(f"bucket bounds must be ascending: {buckets!r}")
        self._bounds: List[float] = [float(b) for b in buckets]
        self._counts: List[int] = [0] * (len(self._bounds) + 1)
        self._recent: deque = deque(maxlen=window)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            slot = len(self._bounds)
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    slot = index
                    break
            self._counts[slot] += 1
            self._recent.append(value)
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100) over the recent window.

        Nearest-rank on the retained window; 0.0 when empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            values = sorted(self._recent)
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, round(q / 100 * (len(values) - 1))))
        return values[rank]

    def buckets(self) -> Dict[str, int]:
        """Bucket label → count, including the ``+inf`` overflow bucket."""
        with self._lock:
            labels = [f"le_{_label(bound)}" for bound in self._bounds] + ["le_inf"]
            return dict(zip(labels, self._counts))

    def summary(self) -> Dict[str, object]:
        """One JSON-ready dict: count/mean/min/max/percentiles/buckets."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": self.buckets(),
        }


def _label(bound: float) -> str:
    if float(bound).is_integer():
        return str(int(bound))
    return str(bound)


def merge_summaries(summaries: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Combine per-process :meth:`Histogram.summary` dicts into one.

    The multi-worker front aggregates worker ``/metrics`` documents; raw
    observations never cross the process boundary, so counts, extrema,
    and buckets merge exactly while percentiles are estimated from the
    merged cumulative buckets (each estimate is the upper bound of the
    bucket holding that rank — the usual Prometheus-style answer; the
    overflow bucket reports the merged max).  Empty input or all-empty
    summaries yield an all-zero summary.
    """
    summaries = [s for s in summaries if s]
    count = sum(int(s.get("count", 0)) for s in summaries)
    total = sum(
        float(s.get("mean", 0.0) or 0.0) * int(s.get("count", 0))
        for s in summaries
    )
    mins = [s.get("min") for s in summaries if s.get("min") is not None]
    maxes = [s.get("max") for s in summaries if s.get("max") is not None]
    merged_min = min(mins) if mins else None
    merged_max = max(maxes) if maxes else None
    buckets: Dict[str, int] = {}
    for s in summaries:
        for label, bucket_count in (s.get("buckets") or {}).items():
            buckets[label] = buckets.get(label, 0) + int(bucket_count)

    def estimate(q: float) -> float:
        if not count:
            return 0.0
        rank = max(1, round(q / 100 * count))
        seen = 0
        for label, bucket_count in buckets.items():
            seen += bucket_count
            if seen >= rank:
                if label == "le_inf":
                    return float(merged_max or 0.0)
                return float(label[len("le_"):])
        return float(merged_max or 0.0)

    return {
        "count": count,
        "mean": total / count if count else 0.0,
        "min": merged_min,
        "max": merged_max,
        "p50": estimate(50),
        "p90": estimate(90),
        "p99": estimate(99),
        "buckets": buckets,
    }
