"""Timing instrumentation for the seq2vis training loop.

:class:`TrainProfiler` is the training-side sibling of
:class:`repro.perf.profiler.BuildProfiler`: the trainer feeds it one
observation per optimizer step (wall seconds + target tokens) and one
summary per epoch, and it aggregates throughput (tokens/sec), a
step-time histogram (reusing :class:`repro.perf.Histogram`), and a
per-epoch breakdown.  ``train_model(..., profile=profiler)`` is the
only integration point; without a profiler the trainer takes no clock
readings at all.

"Tokens" are *target* tokens (``tgt_mask`` sum): the decoder steps
dominate the step cost and the number is invariant to padding, so
tokens/sec trajectories are comparable across batch sizes and
bucketing strategies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.perf.histogram import LATENCY_BUCKETS_MS, Histogram


class TrainProfiler:
    """Collects per-step timings, token throughput, and epoch stats."""

    def __init__(self) -> None:
        self.step_ms = Histogram(LATENCY_BUCKETS_MS, window=8192)
        self.epochs: List[Dict[str, object]] = []
        self.total_tokens = 0
        self.total_steps = 0
        self.train_seconds = 0.0

    # ----- recording ---------------------------------------------------

    def observe_step(self, seconds: float, tokens: int) -> None:
        """Record one optimizer step: wall time and target tokens."""
        self.step_ms.observe(seconds * 1000.0)
        self.total_tokens += int(tokens)
        self.total_steps += 1
        self.train_seconds += seconds

    def observe_epoch(
        self,
        epoch: int,
        seconds: float,
        tokens: int,
        steps: int,
        train_loss: float,
        val_loss: Optional[float] = None,
    ) -> None:
        """Record one epoch's summary row."""
        self.epochs.append(
            {
                "epoch": int(epoch),
                "seconds": float(seconds),
                "tokens": int(tokens),
                "steps": int(steps),
                "tokens_per_sec": float(tokens / seconds) if seconds > 0 else 0.0,
                "train_loss": float(train_loss),
                "val_loss": None if val_loss is None else float(val_loss),
            }
        )

    # ----- reporting ---------------------------------------------------

    @property
    def tokens_per_sec(self) -> float:
        """Target tokens per second of pure training-step wall time."""
        if self.train_seconds <= 0:
            return 0.0
        return self.total_tokens / self.train_seconds

    def report(self) -> dict:
        """The full profile as one JSON-serializable dict."""
        return {
            "tokens": self.total_tokens,
            "steps": self.total_steps,
            "train_seconds": self.train_seconds,
            "tokens_per_sec": self.tokens_per_sec,
            "step_ms": self.step_ms.summary(),
            "epochs": list(self.epochs),
        }

    def write_json(self, path: str) -> dict:
        """Write :meth:`report` to *path*; returns the report."""
        report = self.report()
        Path(path).write_text(json.dumps(report, indent=2))
        return report

    def summary(self) -> str:
        """Human-readable multi-line profile table."""
        lines = [
            f"{'tokens/sec':16s} {self.tokens_per_sec:12.1f}",
            f"{'steps':16s} {self.total_steps:12d}",
            f"{'train seconds':16s} {self.train_seconds:12.3f}",
            f"{'step p50 (ms)':16s} {self.step_ms.percentile(50):12.2f}",
            f"{'step p99 (ms)':16s} {self.step_ms.percentile(99):12.2f}",
        ]
        for row in self.epochs:
            val = "" if row["val_loss"] is None else f"  val={row['val_loss']:.4f}"
            lines.append(
                f"epoch {row['epoch']:3d}  {row['seconds']:7.3f}s  "
                f"{row['tokens_per_sec']:10.1f} tok/s  "
                f"train={row['train_loss']:.4f}{val}"
            )
        return "\n".join(lines)
