"""The seq2vis model: basic seq2seq, +attention, +copying (Section 4.1).

The encoder is a bi-directional LSTM over the NL question concatenated
with the database schema tokens (as in the paper's Figure 15); the
decoder is a uni-directional LSTM that emits the canonical VIS token
sequence.  Variants:

* ``basic``      — plain encoder-decoder (final encoder state only);
* ``attention``  — Luong-style dot attention over encoder states;
* ``copy``       — attention plus a pointer/copy mechanism that mixes
  the vocabulary distribution with attention mass scattered onto the
  source tokens (how rare column names get produced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.neural import autograd as ag
from repro.neural.autograd import Tensor
from repro.neural.layers import BiLSTMEncoder, Embedding, Linear, LSTMCell, Module
from repro.obs.trace import traced

VARIANTS = ("basic", "attention", "copy")


@dataclass
class EncodedBatch:
    """Frozen encoder outputs for a padded batch, held as plain arrays.

    Produced by :meth:`Seq2Vis.encode_batch` and accepted by every
    decode entry point via ``encoded=``, so a serving layer can cache
    the (expensive) bi-LSTM pass and replay only the decoder.  Because
    the encoder masks padding out of both the final state and the
    attention weights, the arrays are padding-invariant: re-padding the
    same source tokens to a different length yields the same decode.
    """

    memory: np.ndarray   # (B, L, 2H) encoder states
    h0: np.ndarray       # (B, H) bridged initial decoder hidden
    c0: np.ndarray       # (B, H) bridged initial decoder cell
    src_mask: np.ndarray     # (B, L) the mask the memory was built under
    src_out_ids: np.ndarray  # (B, L) source tokens in output-vocab ids

    @property
    def batch_size(self) -> int:
        return self.memory.shape[0]

    def row(self, index: int) -> "EncodedBatch":
        """A one-example view (no copy) for per-example decoding."""
        sl = slice(index, index + 1)
        return EncodedBatch(
            memory=self.memory[sl],
            h0=self.h0[sl],
            c0=self.c0[sl],
            src_mask=self.src_mask[sl],
            src_out_ids=self.src_out_ids[sl],
        )

    def inference_batch(self) -> Batch:
        """A decode-only :class:`Batch` carrying this encoding's mask
        and copy ids; ``src_ids`` is a dummy — decoding never reads it."""
        return Batch.for_inference(
            src_ids=np.zeros_like(self.src_out_ids),
            src_mask=self.src_mask,
            src_out_ids=self.src_out_ids,
        )


@dataclass
class BeamCandidate:
    """One ranked beam hypothesis: stripped tokens + normalized score.

    ``score`` is the length-normalized negative log probability used
    for ranking (lower is better), identical to the sort key inside
    :meth:`Seq2Vis._beam_one`.
    """

    tokens: List[int]
    score: float


@dataclass
class Batch:
    """One padded minibatch (see :mod:`repro.neural.data`)."""

    src_ids: np.ndarray        # (B, L) input-vocab ids
    src_mask: np.ndarray       # (B, L) 1 for real tokens
    src_out_ids: np.ndarray    # (B, L) same tokens in output-vocab ids
    tgt_in: np.ndarray         # (B, T) decoder inputs (BOS ...)
    tgt_out: np.ndarray        # (B, T) decoder targets (... EOS)
    tgt_mask: np.ndarray       # (B, T)

    @classmethod
    def for_inference(
        cls,
        src_ids: np.ndarray,
        src_mask: np.ndarray,
        src_out_ids: np.ndarray,
    ) -> "Batch":
        """A decode-only batch: padded source arrays, dummy targets.

        The encoder and both decode paths only read the ``src_*`` arrays
        and the mask; the target arrays exist so the dataclass stays one
        shape for training and serving.
        """
        batch = src_ids.shape[0]
        return cls(
            src_ids=src_ids,
            src_mask=src_mask,
            src_out_ids=src_out_ids,
            tgt_in=np.zeros((batch, 1), dtype=np.int64),
            tgt_out=np.zeros((batch, 1), dtype=np.int64),
            tgt_mask=np.zeros((batch, 1)),
        )


class Seq2Vis(Module):
    """Encoder-decoder translation from NL tokens to VIS tokens."""

    def __init__(
        self,
        in_vocab_size: int,
        out_vocab_size: int,
        variant: str = "attention",
        embed_dim: int = 64,
        hidden_dim: int = 96,
        seed: int = 0,
        pretrained_in: Optional[np.ndarray] = None,
        dtype: Optional[str] = None,
    ):
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        self.variant = variant
        self.out_vocab_size = out_vocab_size
        rng = np.random.default_rng(seed)
        self.embed_in = Embedding(in_vocab_size, embed_dim, rng, pretrained=pretrained_in)
        self.embed_out = Embedding(out_vocab_size, embed_dim, rng)
        self.encoder = BiLSTMEncoder(embed_dim, hidden_dim, rng)
        self.bridge = Linear(2 * hidden_dim, hidden_dim, rng, name="bridge")
        self.bridge_c = Linear(2 * hidden_dim, hidden_dim, rng, name="bridge_c")
        self.decoder = LSTMCell(embed_dim, hidden_dim, rng, name="dec")
        self.hidden_dim = hidden_dim
        if variant in ("attention", "copy"):
            self.query_proj = Linear(hidden_dim, 2 * hidden_dim, rng, name="query")
            self.combine = Linear(3 * hidden_dim, hidden_dim, rng, name="combine")
        self.out_proj = Linear(hidden_dim, out_vocab_size, rng, name="out")
        if variant == "copy":
            self.gen_gate = Linear(3 * hidden_dim + embed_dim, 1, rng, name="pgen")
        if dtype is not None:
            # Initialization always happens at float64 (above), so a
            # float32 and a float64 model share the same rounded init.
            self.to_dtype(dtype)

    def set_fused(self, fused: bool) -> "Seq2Vis":
        """Switch every LSTM cell (and the sequence-fused embedding
        path) between the fused kernels and the reference op-by-op
        graph; returns self."""
        for module in self.modules():
            if isinstance(module, LSTMCell):
                module.fused = fused
        return self

    @property
    def fused(self) -> bool:
        """True when the fused kernels are active."""
        return self.decoder.fused

    # ----- shared encoder ------------------------------------------------

    def _encode(self, batch: Batch) -> Tuple[Tensor, Tensor, Tensor]:
        length = batch.src_ids.shape[1]
        if self.fused:
            # One gather for the whole sequence; the encoder hoists the
            # input projections itself, so no per-position slices here.
            embedded_seq = ag.embedding_seq(self.embed_in.weight, batch.src_ids)
            memory, final_h, _ = self.encoder(
                None, batch.src_mask, embedded_seq=embedded_seq
            )
        else:
            embedded = [self.embed_in(batch.src_ids[:, i]) for i in range(length)]
            memory, final_h, _ = self.encoder(embedded, batch.src_mask)
        h0 = ag.tanh(self.bridge(final_h))
        c0 = ag.tanh(self.bridge_c(final_h))
        return memory, h0, c0

    def _step(
        self,
        token_embed: Tensor,
        state: Tuple[Tensor, Tensor],
        memory: Tensor,
        src_mask: np.ndarray,
    ) -> Tuple[Tensor, Optional[Tensor], Optional[Tensor], Tuple[Tensor, Tensor]]:
        """One decoder step → (pre-output, attention weights, context)."""
        h, c = self.decoder(token_embed, state)
        if self.variant == "basic":
            return h, None, None, (h, c)
        query = self.query_proj(h)
        scores = ag.attention_scores(memory, query)
        weights = ag.masked_softmax(scores, mask=src_mask)
        context = ag.attention_context(weights, memory)
        combined = ag.tanh(self.combine(ag.concat([h, context], axis=1)))
        return combined, weights, context, (h, c)

    # ----- training loss ---------------------------------------------------

    def loss(self, batch: Batch) -> Tensor:
        """Teacher-forced mean token loss over a batch."""
        memory, h, c = self._encode(batch)
        steps = batch.tgt_in.shape[1]
        tgt_embedded: Optional[Tensor] = None
        if self.fused:
            tgt_embedded = ag.embedding_seq(self.embed_out.weight, batch.tgt_in)
        if self.fused and self.variant != "copy":
            # Sequence-level fast path.  Teacher forcing means the
            # decoder recurrence never looks at the attention output,
            # so the whole loss is sequence ops: one recurrence node,
            # batched attention over all T steps, one (B·T, H)
            # projection GEMM, and one cross-entropy.
            proj = ag.matmul_seq(tgt_embedded, self.decoder.w_x)
            h_seq = ag.lstm_seq(
                proj, self.decoder.w_h, self.decoder.bias, h, c
            )  # (B, T, H)
            if self.variant == "basic":
                outputs = h_seq
            else:
                q_seq = ag.add(
                    ag.matmul_seq(h_seq, self.query_proj.weight),
                    self.query_proj.bias,
                )
                scores = ag.attention_scores_seq(q_seq, memory)
                weights = ag.masked_softmax(
                    scores, mask=batch.src_mask[:, None, :]
                )
                context = ag.attention_context_seq(weights, memory)
                outputs = ag.tanh(
                    ag.add(
                        ag.matmul_seq(
                            ag.concat_last(h_seq, context),
                            self.combine.weight,
                        ),
                        self.combine.bias,
                    )
                )
            flat = ag.reshape_merge(outputs)                    # (B·T, H)
            logits = ag.add(
                ag.matmul(flat, self.out_proj.weight), self.out_proj.bias
            )
            token_losses = ag.cross_entropy_logits(
                logits, batch.tgt_out.reshape(-1)
            )
            return ag.masked_mean(token_losses, batch.tgt_mask.reshape(-1))
        losses: List[Tensor] = []
        for t in range(steps):
            if tgt_embedded is not None:
                token_embed = ag.slice_time(tgt_embedded, t)
            else:
                token_embed = self.embed_out(batch.tgt_in[:, t])
            output, weights, context, (h, c) = self._step(
                token_embed, (h, c), memory, batch.src_mask
            )
            targets = batch.tgt_out[:, t]
            if self.variant == "copy":
                step_loss = self._copy_loss(
                    output, weights, context, token_embed, targets, batch
                )
            else:
                logits = self.out_proj(output)
                step_loss = ag.cross_entropy_logits(logits, targets)
            losses.append(step_loss)
        per_step = ag.stack_seq([_as_column(loss) for loss in losses])
        flat = _flatten_steps(per_step)
        return ag.masked_mean(flat, batch.tgt_mask.T.reshape(-1))

    def _copy_loss(
        self,
        output: Tensor,
        weights: Tensor,
        context: Tensor,
        token_embed: Tensor,
        targets: np.ndarray,
        batch: Batch,
    ) -> Tensor:
        probs = self._copy_probs(output, weights, context, token_embed, batch)
        picked = ag.gather_cols(probs, targets)
        negative = ag.scale(ag.log(picked), -1.0)
        return negative

    def _copy_probs(
        self,
        output: Tensor,
        weights: Tensor,
        context: Tensor,
        token_embed: Tensor,
        batch: Batch,
    ) -> Tensor:
        logits = self.out_proj(output)
        vocab_dist = ag.masked_softmax(logits)
        gate_input = ag.concat([output, context, token_embed], axis=1)
        p_gen = ag.sigmoid(self.gen_gate(gate_input))
        copy_dist = ag.scatter_probs(weights, batch.src_out_ids, self.out_vocab_size)
        one_minus = ag.add(ag.scale(p_gen, -1.0), Tensor(np.ones_like(p_gen.data)))
        return ag.add(ag.mul(vocab_dist, p_gen), ag.mul(copy_dist, one_minus))

    # ----- decoding ----------------------------------------------------------

    def encode_batch(self, batch: Batch) -> EncodedBatch:
        """Run the encoder once, graph-free, and freeze the outputs.

        The returned :class:`EncodedBatch` can be passed to any decode
        entry point via ``encoded=`` to skip re-encoding — the basis of
        the serve-layer encoder-output cache.
        """
        with ag.no_grad():
            memory, h, c = self._encode(batch)
        return EncodedBatch(
            memory=memory.data,
            h0=h.data,
            c0=c.data,
            src_mask=np.asarray(batch.src_mask),
            src_out_ids=np.asarray(batch.src_out_ids),
        )

    def greedy_decode(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        max_len: int = 60,
        encoded: Optional[EncodedBatch] = None,
    ) -> List[List[int]]:
        """Greedy decoding; returns output-vocab id sequences sans EOS."""
        if encoded is None:
            memory, h, c = self._encode(batch)
        else:
            memory = Tensor(encoded.memory)
            h, c = Tensor(encoded.h0), Tensor(encoded.c0)
        batch_size = batch.src_ids.shape[0]
        tokens = np.full(batch_size, bos_id, dtype=np.int64)
        finished = np.zeros(batch_size, dtype=bool)
        outputs: List[List[int]] = [[] for _ in range(batch_size)]
        for _ in range(max_len):
            token_embed = self.embed_out(tokens)
            output, weights, context, (h, c) = self._step(
                token_embed, (h, c), memory, batch.src_mask
            )
            if self.variant == "copy":
                probs = self._copy_probs(output, weights, context, token_embed, batch)
                next_tokens = probs.data.argmax(axis=1)
            else:
                logits = self.out_proj(output)
                next_tokens = logits.data.argmax(axis=1)
            for row in range(batch_size):
                if not finished[row]:
                    if next_tokens[row] == eos_id:
                        finished[row] = True
                    else:
                        outputs[row].append(int(next_tokens[row]))
            if finished.all():
                break
            tokens = next_tokens.astype(np.int64)
        return outputs

    def greedy_decode_batch(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        max_len: int = 60,
        encoded: Optional[EncodedBatch] = None,
    ) -> List[List[int]]:
        """Greedy decoding of a whole padded batch with no graph.

        Token-identical to :meth:`greedy_decode` (the evaluation
        harness and the serving path both rely on that), but runs under
        :func:`repro.neural.autograd.no_grad`, so no backward closures
        or parent links are recorded and intermediate activations are
        freed as soon as the step moves on — the fast path for
        accuracy evaluation over thousands of test examples.
        """
        with ag.no_grad():
            return self.greedy_decode(
                batch, bos_id, eos_id, max_len=max_len, encoded=encoded
            )

    def beam_decode(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        beam_width: int = 4,
        max_len: int = 60,
        length_penalty: float = 0.7,
        token_mask: Optional[np.ndarray] = None,
        encoded: Optional[EncodedBatch] = None,
    ) -> List[List[int]]:
        """Beam-search decoding (extension beyond the paper's greedy
        decoder); one example at a time, scoring by length-normalized
        log probability.  ``token_mask`` (bool, shape ``(V,)``) zeroes
        forbidden output tokens out of candidate expansion."""
        results: List[List[int]] = []
        for row in range(batch.src_ids.shape[0]):
            single = Batch(
                src_ids=batch.src_ids[row : row + 1],
                src_mask=batch.src_mask[row : row + 1],
                src_out_ids=batch.src_out_ids[row : row + 1],
                tgt_in=batch.tgt_in[row : row + 1],
                tgt_out=batch.tgt_out[row : row + 1],
                tgt_mask=batch.tgt_mask[row : row + 1],
            )
            results.append(
                self._beam_one(
                    single, bos_id, eos_id, beam_width, max_len, length_penalty,
                    token_mask=token_mask,
                    encoded=None if encoded is None else encoded.row(row),
                )
            )
        return results

    def _beam_one(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        beam_width: int,
        max_len: int,
        length_penalty: float,
        token_mask: Optional[np.ndarray] = None,
        encoded: Optional[EncodedBatch] = None,
    ) -> List[int]:
        if encoded is None:
            memory, h, c = self._encode(batch)
        else:
            memory = Tensor(encoded.memory)
            h, c = Tensor(encoded.h0), Tensor(encoded.c0)
        # Each hypothesis: (neg score, tokens, h, c, finished)
        beams = [(0.0, [bos_id], h, c, False)]
        for _ in range(max_len):
            if all(done for _, _, _, _, done in beams):
                break
            candidates = []
            for score, tokens, h_state, c_state, done in beams:
                if done:
                    candidates.append((score, tokens, h_state, c_state, True))
                    continue
                token_embed = self.embed_out(np.array([tokens[-1]]))
                output, weights, context, (h_new, c_new) = self._step(
                    token_embed, (h_state, c_state), memory, batch.src_mask
                )
                if self.variant == "copy":
                    probs = self._copy_probs(
                        output, weights, context, token_embed, batch
                    ).data[0]
                else:
                    logits = self.out_proj(output).data[0]
                    shifted = logits - logits.max()
                    probs = np.exp(shifted) / np.exp(shifted).sum()
                if token_mask is not None:
                    probs = np.where(token_mask, probs, 0.0)
                top = np.argsort(-probs)[:beam_width]
                for token_id in top:
                    log_p = float(np.log(max(probs[token_id], 1e-12)))
                    candidates.append((
                        score - log_p,
                        tokens + [int(token_id)],
                        h_new,
                        c_new,
                        int(token_id) == eos_id,
                    ))
            # Keep the best hypotheses by length-normalized score.
            candidates.sort(
                key=lambda item: item[0] / max(len(item[1]) - 1, 1) ** length_penalty
            )
            beams = candidates[:beam_width]
        best = min(
            beams,
            key=lambda item: item[0] / max(len(item[1]) - 1, 1) ** length_penalty,
        )
        tokens = best[1][1:]
        if tokens and tokens[-1] == eos_id:
            tokens = tokens[:-1]
        return tokens

    def beam_decode_batch(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        beam_width: int = 4,
        max_len: int = 60,
        length_penalty: float = 0.7,
        token_mask: Optional[np.ndarray] = None,
        encoded: Optional[EncodedBatch] = None,
        tracer=None,
    ) -> List[List[int]]:
        """Best hypothesis per example from the vectorized batched beam.

        Token-identical to :meth:`beam_decode` at every width (see
        :meth:`beam_search_batch` for the parity argument) but decodes
        the whole batch's beam front with one fused step per iteration.
        """
        ranked = self.beam_search_batch(
            batch, bos_id, eos_id, beam_width=beam_width, max_len=max_len,
            length_penalty=length_penalty, num_candidates=1,
            token_mask=token_mask, encoded=encoded, tracer=tracer,
        )
        return [example[0].tokens for example in ranked]

    def beam_search_batch(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        beam_width: int = 4,
        max_len: int = 60,
        length_penalty: float = 0.7,
        num_candidates: Optional[int] = None,
        token_mask: Optional[np.ndarray] = None,
        encoded: Optional[EncodedBatch] = None,
        tracer=None,
    ) -> List[List[BeamCandidate]]:
        """Vectorized beam search over the whole padded batch.

        Instead of looping examples (and hypotheses) one at a time like
        :meth:`beam_decode`, the full beam front is flattened to a
        ``(B·K, ·)`` pseudo-batch so every step is one fused LSTM-step +
        attention + output-GEMM call.  The bookkeeping replicates
        :meth:`_beam_one` exactly — same per-row softmax, same
        ``argsort`` candidate order, same length-normalized key under
        the same stable sort — so the results are token-identical to the
        per-example path at every width, and ``beam_width=1`` with
        ``length_penalty=0.0`` matches :meth:`greedy_decode_batch`.

        Returns, per example, up to ``num_candidates`` (default: the
        beam width) hypotheses ranked best-first as
        :class:`BeamCandidate` with stripped tokens and the normalized
        score used for ranking.
        """
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if beam_width > self.out_vocab_size:
            raise ValueError(
                f"beam_width {beam_width} exceeds output vocab size "
                f"{self.out_vocab_size}"
            )
        keep = beam_width if num_candidates is None else max(1, min(num_candidates, beam_width))
        with ag.no_grad():
            return self._beam_search_batch(
                batch, bos_id, eos_id, beam_width, max_len, length_penalty,
                keep, token_mask, encoded, tracer,
            )

    def _beam_search_batch(
        self,
        batch: Batch,
        bos_id: int,
        eos_id: int,
        beam_width: int,
        max_len: int,
        length_penalty: float,
        keep: int,
        token_mask: Optional[np.ndarray],
        encoded: Optional[EncodedBatch],
        tracer,
    ) -> List[List[BeamCandidate]]:
        if encoded is None:
            memory_t, h0, c0 = self._encode(batch)
            memory = memory_t.data
            state_h, state_c = h0.data, c0.data
        else:
            memory = encoded.memory
            state_h, state_c = encoded.h0, encoded.c0
        batch_size = batch.src_ids.shape[0]
        src_mask = np.asarray(batch.src_mask)
        src_out_ids = np.asarray(batch.src_out_ids)

        def norm(item) -> float:
            return item[0] / max(len(item[1]) - 1, 1) ** length_penalty

        # beams[b][j] = (neg score, tokens, finished); its decoder state
        # lives at row b*k + j of the flattened (B·k, H) front.
        beams = [[(0.0, [bos_id], False)] for _ in range(batch_size)]
        k = 1
        memory_front = Tensor(memory)
        mask_front = src_mask
        out_ids_front = src_out_ids
        for step in range(max_len):
            if all(done for example in beams for _, _, done in example):
                break
            front = batch_size * k
            with traced(
                tracer, "beam.step",
                step=step, front=front, beam_width=beam_width,
            ):
                last = np.fromiter(
                    (hyp[1][-1] for example in beams for hyp in example),
                    dtype=np.int64, count=front,
                )
                token_embed = self.embed_out(last)
                output, weights, context, (h_new, c_new) = self._step(
                    token_embed, (Tensor(state_h), Tensor(state_c)),
                    memory_front, mask_front,
                )
                if self.variant == "copy":
                    copy_batch = Batch.for_inference(
                        src_ids=out_ids_front,
                        src_mask=mask_front,
                        src_out_ids=out_ids_front,
                    )
                    probs = self._copy_probs(
                        output, weights, context, token_embed, copy_batch
                    ).data
                else:
                    logits = self.out_proj(output).data
                    shifted = logits - logits.max(axis=1, keepdims=True)
                    exp = np.exp(shifted)
                    probs = exp / exp.sum(axis=1, keepdims=True)
                if token_mask is not None:
                    probs = np.where(token_mask[None, :], probs, 0.0)
                top = np.argsort(-probs, axis=1)[:, :beam_width]
                log_p = np.log(np.maximum(
                    np.take_along_axis(probs, top, axis=1), 1e-12
                ))
                new_beams: List[List[Tuple[float, List[int], bool]]] = []
                select: List[int] = []
                for b in range(batch_size):
                    candidates = []  # (neg score, tokens, source row, finished)
                    for j, (score, tokens, done) in enumerate(beams[b]):
                        row = b * k + j
                        if done:
                            candidates.append((score, tokens, row, True))
                            continue
                        for rank in range(top.shape[1]):
                            token_id = int(top[row, rank])
                            candidates.append((
                                score - float(log_p[row, rank]),
                                tokens + [token_id],
                                row,
                                token_id == eos_id,
                            ))
                    candidates.sort(key=norm)
                    kept = candidates[:beam_width]
                    new_beams.append([(s, t, d) for s, t, _, d in kept])
                    select.extend(item[2] for item in kept)
                beams = new_beams
                sel = np.asarray(select, dtype=np.intp)
                state_h = h_new.data[sel]
                state_c = c_new.data[sel]
                if k != beam_width:
                    # The front fans out from B to B·K after the first
                    # expansion; the encoder side is repeated once here
                    # and reused for every remaining step.
                    k = beam_width
                    memory_front = Tensor(np.repeat(memory, k, axis=0))
                    mask_front = np.repeat(src_mask, k, axis=0)
                    out_ids_front = np.repeat(src_out_ids, k, axis=0)
        results: List[List[BeamCandidate]] = []
        for example in beams:
            ranked = sorted(example, key=norm)[:keep]
            out: List[BeamCandidate] = []
            for score, tokens, _ in ranked:
                stripped = tokens[1:]
                if stripped and stripped[-1] == eos_id:
                    stripped = stripped[:-1]
                out.append(BeamCandidate(tokens=stripped, score=norm((score, tokens))))
            results.append(out)
        return results


def _as_column(loss_vector: Tensor) -> Tensor:
    """(B,) per-example step loss → (B, 1) so steps can be stacked."""
    out = Tensor(loss_vector.data.reshape(-1, 1), parents=(loss_vector,))

    def backward(grad: np.ndarray) -> None:
        if loss_vector.requires_grad:
            loss_vector._accumulate(grad.reshape(-1))

    out._backward = backward
    return out


def _flatten_steps(stacked: Tensor) -> Tensor:
    """(B, T, 1) stacked step losses → (T*B,) flat vector.

    ``stack_seq`` lays the data out as (B, T, 1); transposing to (T, B)
    before flattening matches the ``tgt_mask.T`` layout used in
    :meth:`Seq2Vis.loss`.
    """
    data = stacked.data[:, :, 0].T.reshape(-1)
    out = Tensor(data, parents=(stacked,))
    batch, steps = stacked.data.shape[0], stacked.data.shape[1]

    def backward(grad: np.ndarray) -> None:
        if stacked.requires_grad:
            stacked._accumulate(grad.reshape(steps, batch).T[:, :, None])

    out._backward = backward
    return out
