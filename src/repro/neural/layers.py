"""Neural layers built on the autograd engine."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.neural import autograd as ag
from repro.neural.autograd import Tensor, parameter
from repro.neural.dtype import DtypeLike, resolve_dtype


class Module:
    """Base class: tracks parameters for the optimizer."""

    def parameters(self) -> List[Tensor]:
        """All trainable tensors, recursively."""
        params: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def modules(self) -> Iterator["Module"]:
        """This module and every submodule, depth first."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def to_dtype(self, dtype: DtypeLike) -> "Module":
        """Cast every parameter to *dtype* in place; returns self.

        Call this before constructing an optimizer — the flat-buffer
        Adam aliases parameter storage, and casting re-binds arrays.
        """
        resolved = resolve_dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != resolved:
                param.data = param.data.astype(resolved)
        return self

    @property
    def dtype(self) -> np.dtype:
        """The parameters' dtype (models are kept dtype-uniform)."""
        params = self.parameters()
        return params[0].data.dtype if params else np.dtype(np.float64)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter arrays, keyed by position."""
        return {
            str(index): param.data.copy()
            for index, param in enumerate(self.parameters())
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore arrays saved by :meth:`state_dict`.

        Copies *into* the existing arrays (dtype-preserving) so any
        optimizer holding flat-buffer views of the parameters keeps
        seeing them.
        """
        for index, param in enumerate(self.parameters()):
            stored = state[str(index)]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {index} shape mismatch: "
                    f"{stored.shape} vs {param.data.shape}"
                )
            param.data[...] = stored


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Embedding(Module):
    """Token embedding table, optionally initialized from pre-trained
    vectors (the paper initializes from corpus-trained GloVe)."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator,
        pretrained: Optional[np.ndarray] = None,
    ):
        if pretrained is not None:
            if pretrained.shape != (vocab_size, dim):
                raise ValueError(
                    f"pretrained shape {pretrained.shape} does not match "
                    f"({vocab_size}, {dim})"
                )
            weight = pretrained.copy()
        else:
            weight = rng.normal(scale=0.1, size=(vocab_size, dim))
        self.weight = parameter(weight, name="embedding")

    def __call__(self, indices: np.ndarray) -> Tensor:
        return ag.embedding(self.weight, indices)


class Linear(Module):
    """Affine layer with Glorot-initialized weights."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, name: str = "linear"):
        self.weight = parameter(_glorot(rng, in_dim, out_dim), name=f"{name}.w")
        self.bias = parameter(np.zeros((1, out_dim)), name=f"{name}.b")

    def __call__(self, x: Tensor) -> Tensor:
        return ag.add(ag.matmul(x, self.weight), self.bias)


class LSTMCell(Module):
    """A standard LSTM cell; the forget-gate bias starts at 1.

    ``fused`` (the default) routes steps through the two-node
    :func:`repro.neural.autograd.lstm_step` kernel; ``fused=False``
    keeps the original op-by-op composition, retained as the reference
    implementation for gradient and parity checks.  Both compute the
    same forward values bit for bit.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator, name: str = "lstm"):
        self.hidden_dim = hidden_dim
        self.fused = True
        self.w_x = parameter(_glorot(rng, input_dim, 4 * hidden_dim), name=f"{name}.wx")
        self.w_h = parameter(_glorot(rng, hidden_dim, 4 * hidden_dim), name=f"{name}.wh")
        bias = np.zeros((1, 4 * hidden_dim))
        bias[:, hidden_dim : 2 * hidden_dim] = 1.0
        self.bias = parameter(bias, name=f"{name}.b")

    def __call__(
        self,
        x: Optional[Tensor],
        state: Tuple[Tensor, Tensor],
        x_proj: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        if self.fused:
            return ag.lstm_step(
                x, self.w_x, self.w_h, self.bias, h_prev, c_prev, x_proj=x_proj
            )
        return self.step_unfused(x, state)

    def step_unfused(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """The original gate-by-gate composition (~14 graph nodes)."""
        h_prev, c_prev = state
        gates = ag.add(
            ag.add(ag.matmul(x, self.w_x), ag.matmul(h_prev, self.w_h)), self.bias
        )
        H = self.hidden_dim
        i = ag.sigmoid(ag.slice_cols(gates, 0, H))
        f = ag.sigmoid(ag.slice_cols(gates, H, 2 * H))
        g = ag.tanh(ag.slice_cols(gates, 2 * H, 3 * H))
        o = ag.sigmoid(ag.slice_cols(gates, 3 * H, 4 * H))
        c = ag.add(ag.mul(f, c_prev), ag.mul(i, g))
        h = ag.mul(o, ag.tanh(c))
        return h, c

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero (h, c) state for a batch, in the cell's dtype."""
        zeros = np.zeros((batch, self.hidden_dim), dtype=self.w_x.data.dtype)
        return Tensor(zeros), Tensor(zeros.copy())


class BiLSTMEncoder(Module):
    """Bi-directional LSTM over an embedded sequence.

    Returns per-position states (B, L, 2H) and a final state projected
    to the decoder's dimensions.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        self.forward_cell = LSTMCell(input_dim, hidden_dim, rng, name="enc.fwd")
        self.backward_cell = LSTMCell(input_dim, hidden_dim, rng, name="enc.bwd")
        self.hidden_dim = hidden_dim

    def __call__(
        self,
        embedded: Optional[List[Tensor]],
        mask: np.ndarray,
        embedded_seq: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """``embedded`` is a list of L tensors (B, D); ``mask`` (B, L).

        Padded positions keep the previous state (standard masked RNN).
        When *embedded_seq* (B, L, D) is given and the cells are fused,
        both directions' input projections are hoisted out of the
        recurrence as one sequence GEMM each, and the per-position list
        is not needed at all.
        """
        if embedded_seq is not None:
            batch, length = embedded_seq.shape[0], embedded_seq.shape[1]
        else:
            batch, length = embedded[0].shape[0], len(embedded)
        if embedded_seq is not None and self.forward_cell.fused:
            # Whole-sequence path: one hoisted projection GEMM and one
            # recurrence node per direction (see autograd.lstm_seq).
            def run_seq(cell: LSTMCell, reverse: bool) -> Tensor:
                proj_seq = ag.matmul_seq(embedded_seq, cell.w_x)
                h0, c0 = cell.initial_state(batch)
                return ag.lstm_seq(
                    proj_seq, cell.w_h, cell.bias, h0, c0,
                    keep=mask, reverse=reverse,
                )

            fwd_seq = run_seq(self.forward_cell, reverse=False)
            bwd_seq = run_seq(self.backward_cell, reverse=True)
            memory = ag.concat_last(fwd_seq, bwd_seq)
            final_h = ag.concat(
                [ag.slice_time(fwd_seq, length - 1), ag.slice_time(bwd_seq, 0)],
                axis=1,
            )
            return memory, final_h, ag.slice_time(memory, length - 1)

        dtype = self.forward_cell.w_x.data.dtype
        # Preallocated per-position blend masks, cast once to the cell
        # dtype so padded steps never upcast a float32 state.
        keep_cols = np.asarray(mask, dtype=dtype)[:, :, None]
        drop_cols = 1.0 - keep_cols

        def run(cell: LSTMCell, order: range) -> List[Tensor]:
            h, c = cell.initial_state(batch)
            outputs: List[Optional[Tensor]] = [None] * length
            for position in order:
                h_new, c_new = cell(embedded[position], (h, c))
                keep = keep_cols[:, position]
                if keep.all():
                    # Fast path: length-bucketed batches rarely pad, so
                    # most positions skip the mask blend entirely.
                    h, c = h_new, c_new
                else:
                    keep_t = Tensor(keep)
                    drop_t = Tensor(drop_cols[:, position])
                    h = ag.add(ag.mul(h_new, keep_t), ag.mul(h, drop_t))
                    c = ag.add(ag.mul(c_new, keep_t), ag.mul(c, drop_t))
                outputs[position] = h
            return outputs  # type: ignore[return-value]

        fwd = run(self.forward_cell, range(length))
        bwd = run(self.backward_cell, range(length - 1, -1, -1))
        # Join the directions with two stacks and one feature concat
        # instead of L per-position concat nodes; the values are the
        # same arrays either way.
        memory = ag.concat_last(ag.stack_seq(fwd), ag.stack_seq(bwd))
        final_h = ag.concat([fwd[-1], bwd[0]], axis=1)
        return memory, final_h, ag.slice_time(memory, length - 1)
