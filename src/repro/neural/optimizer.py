"""Adam optimizers with global-norm gradient clipping.

The paper clips the gradient norm at 2.0; that is the default here.

Two implementations share one interface:

* :class:`Adam` — the fast path.  At construction every parameter's
  storage is re-bound to a view into one flat buffer per dtype, and the
  Adam moments live in matching flat buffers, so a step is a handful of
  vectorized ops over contiguous memory (one gather of gradients, one
  dot product for the clip norm, fused in-place moment/parameter
  updates) instead of a Python loop allocating ~10 temporaries per
  parameter.
* :class:`ReferenceAdam` — the original per-parameter loop, kept as
  the seed-equivalent baseline for the training-perf benchmark and for
  parity tests.  At float64 both produce updates equal to within
  floating-point reassociation of the clip norm (~1 ulp).

Because :class:`Adam` aliases parameter storage, code that *re-binds*
``param.data`` after the optimizer exists would silently detach the
parameter; ``Module.load_state_dict`` therefore copies in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.neural.autograd import Tensor


@dataclass
class _FlatGroup:
    """Per-dtype flat storage: parameters, grads, and Adam moments."""

    params: List[Tensor] = field(default_factory=list)
    slots: List[Tuple[int, int]] = field(default_factory=list)  # (offset, size)
    flat: np.ndarray = None  # type: ignore[assignment]
    grad: np.ndarray = None  # type: ignore[assignment]
    m: np.ndarray = None  # type: ignore[assignment]
    v: np.ndarray = None  # type: ignore[assignment]
    scratch: np.ndarray = None  # type: ignore[assignment]
    step_buf: np.ndarray = None  # type: ignore[assignment]


class Adam:
    """Flat-buffer Adam: one vectorized clip + update per step."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: float = 2.0,
    ):
        self.params: List[Tensor] = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self._step = 0
        groups: Dict[np.dtype, _FlatGroup] = {}
        for param in self.params:
            groups.setdefault(param.data.dtype, _FlatGroup()).params.append(param)
        self._groups: List[_FlatGroup] = []
        for dtype, group in groups.items():
            total = sum(p.data.size for p in group.params)
            group.flat = np.empty(total, dtype=dtype)
            offset = 0
            for param in group.params:
                size = param.data.size
                group.flat[offset : offset + size] = param.data.reshape(-1)
                # Re-bind the parameter to a view so the one in-place
                # update on the flat buffer updates every parameter.
                param.data = group.flat[offset : offset + size].reshape(
                    param.data.shape
                )
                group.slots.append((offset, size))
                offset += size
            group.grad = np.zeros(total, dtype=dtype)
            group.m = np.zeros(total, dtype=dtype)
            group.v = np.zeros(total, dtype=dtype)
            group.scratch = np.empty(total, dtype=dtype)
            group.step_buf = np.empty(total, dtype=dtype)
            self._groups.append(group)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.params:
            param.zero_grad()

    def clip_gradients(self) -> float:
        """Scale all gradients so their global L2 norm is ≤ clip_norm;
        returns the pre-clip norm.

        Operates on the per-parameter ``grad`` arrays (the public
        contract); :meth:`step` clips its flat gather instead.
        """
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if self.clip_norm and norm > self.clip_norm > 0:
            factor = self.clip_norm / (norm + 1e-12)
            for param in self.params:
                if param.grad is not None:
                    param.grad *= factor
        return norm

    def _gather(self) -> float:
        """Copy parameter grads into the flat buffers; returns the
        global squared norm."""
        total = 0.0
        for group in self._groups:
            flat_grad = group.grad
            for param, (offset, size) in zip(group.params, group.slots):
                if param.grad is not None:
                    flat_grad[offset : offset + size] = param.grad.reshape(-1)
                else:
                    flat_grad[offset : offset + size] = 0.0
            total += float(flat_grad @ flat_grad)
        return total

    def step(self) -> None:
        """Apply one clipped Adam update (vectorized, allocation-free)."""
        self._step += 1
        norm = float(np.sqrt(self._gather()))
        if self.clip_norm and norm > self.clip_norm > 0:
            factor = self.clip_norm / (norm + 1e-12)
            for group in self._groups:
                group.grad *= factor
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for group in self._groups:
            grad, m, v = group.grad, group.m, group.v
            s, u = group.scratch, group.step_buf
            # m = beta1*m + (1-beta1)*grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s)
            m += s
            # v = beta2*v + (1-beta2)*grad^2
            v *= self.beta2
            np.square(grad, out=s)
            s *= 1.0 - self.beta2
            v += s
            # flat -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(v, bias2, out=s)
            np.sqrt(s, out=s)
            s += self.eps
            np.divide(m, bias1, out=u)
            u *= self.lr
            u /= s
            group.flat -= u


class ReferenceAdam:
    """The original per-parameter-loop Adam (seed implementation).

    Kept verbatim as the baseline the training-perf benchmark compares
    against and as the reference for :class:`Adam` parity tests.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: float = 2.0,
    ):
        self.params: List[Tensor] = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._step = 0

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.params:
            param.zero_grad()

    def clip_gradients(self) -> float:
        """Scale all gradients so their global L2 norm is ≤ clip_norm;
        returns the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if self.clip_norm and norm > self.clip_norm > 0:
            factor = self.clip_norm / (norm + 1e-12)
            for param in self.params:
                if param.grad is not None:
                    param.grad *= factor
        return norm

    def step(self) -> None:
        """Apply one clipped Adam update."""
        self._step += 1
        self.clip_gradients()
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
