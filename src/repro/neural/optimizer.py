"""Adam optimizer with global-norm gradient clipping.

The paper clips the gradient norm at 2.0; that is the default here.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.neural.autograd import Tensor


class Adam:
    """Adam with bias correction and global-norm clipping."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: float = 2.0,
    ):
        self.params: List[Tensor] = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._step = 0

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.params:
            param.zero_grad()

    def clip_gradients(self) -> float:
        """Scale all gradients so their global L2 norm is ≤ clip_norm;
        returns the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if self.clip_norm and norm > self.clip_norm > 0:
            factor = self.clip_norm / (norm + 1e-12)
            for param in self.params:
                if param.grad is not None:
                    param.grad *= factor
        return norm

    def step(self) -> None:
        """Apply one clipped Adam update."""
        self._step += 1
        self.clip_gradients()
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
