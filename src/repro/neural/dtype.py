"""Dtype policy for the neural engine.

The autograd substrate historically hard-cast every array to float64.
That is the right default for *finite-difference gradient checks* (the
test suite perturbs by 1e-6, far below float32 resolution) but wasteful
for training and decoding, where float32 halves memory traffic and
roughly doubles BLAS throughput on CPU.

The policy has three layers:

* **Bare tensors** keep the process default (float64) so gradient
  checks and ad-hoc math behave exactly as before.  Arrays that are
  already float32 or float64 are taken as-is — ops never silently
  upcast, so a float32 model stays float32 end to end.
* **Training** defaults to float32 via ``TrainConfig.dtype``; the
  trainer casts the model once before creating the optimizer
  (:data:`DEFAULT_TRAIN_DTYPE`).
* **Persistence** records the checkpoint dtype so a float32-trained
  model reloads as float32 (see :mod:`repro.neural.persist`).

``using_dtype`` temporarily changes what *new non-float* data is cast
to; it exists for tests and does not retroactively touch live tensors.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

#: What ``TrainConfig.dtype`` defaults to.
DEFAULT_TRAIN_DTYPE = "float32"

#: The dtypes the engine supports.
SUPPORTED_DTYPES = ("float32", "float64")

_DEFAULT = np.dtype(np.float64)


DtypeLike = Union[str, np.dtype, type]


def resolve_dtype(dtype: DtypeLike) -> np.dtype:
    """Normalize a dtype spec (``"float32"``, ``np.float32``, ...)."""
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dtype!r}; pick from {SUPPORTED_DTYPES}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype non-float data is cast to when wrapped in a Tensor."""
    return _DEFAULT


def set_default_dtype(dtype: DtypeLike) -> None:
    """Set the process-wide default tensor dtype."""
    global _DEFAULT
    _DEFAULT = resolve_dtype(dtype)


@contextmanager
def using_dtype(dtype: DtypeLike) -> Iterator[None]:
    """Temporarily change the default tensor dtype."""
    previous = _DEFAULT
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
