"""Value-slot filling (Section 4.2).

seq2vis predicts the VIS tree with literal values masked as ``<V>``;
this heuristic restores them from the NL question: numbers are pulled
from the text in order of appearance, string comparisons are matched
against the referenced column's actual values, and LIKE patterns are
rebuilt from quoted or "contains"-style phrases.  The paper reports
~92.3% accuracy for its equivalent heuristic.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import List, Optional, Union

from repro.grammar.ast_nodes import (
    Between,
    Comparison,
    Filter,
    InSubquery,
    Like,
    LogicalPredicate,
    Predicate,
    QueryCore,
    SetQuery,
    SQLQuery,
    SubqueryComparison,
    VisQuery,
)
from repro.grammar.serialize import VALUE_TOKEN
from repro.storage.schema import Database

_NUMBER_RE = re.compile(r"-?\d+\.\d+|-?\d+")


class _NumberPool:
    """Numbers from the NL question, consumed in order of appearance."""

    def __init__(self, nl: str):
        self._values: List[Union[int, float]] = []
        for token in _NUMBER_RE.findall(nl):
            if "." in token:
                self._values.append(float(token))
            else:
                self._values.append(int(token))
        self._cursor = 0

    def next(self) -> Optional[Union[int, float]]:
        while self._cursor < len(self._values):
            value = self._values[self._cursor]
            self._cursor += 1
            return value
        return None


def fill_value_slots(
    query: Union[SQLQuery, VisQuery], nl: str, database: Database
) -> Union[SQLQuery, VisQuery]:
    """Return *query* with ``<V>`` slots replaced by values found in *nl*."""
    numbers = _NumberPool(nl)
    body = query.body
    if isinstance(body, SetQuery):
        new_body: Union[QueryCore, SetQuery] = SetQuery(
            op=body.op,
            left=_fill_core(body.left, nl, database, numbers),
            right=_fill_core(body.right, nl, database, numbers),
        )
    else:
        new_body = _fill_core(body, nl, database, numbers)
    if isinstance(query, VisQuery):
        return VisQuery(vis_type=query.vis_type, body=new_body)
    return SQLQuery(body=new_body)


def _fill_core(
    core: QueryCore, nl: str, database: Database, numbers: _NumberPool
) -> QueryCore:
    if core.filter is None:
        return core
    new_root = _fill_predicate(core.filter.root, nl, database, numbers)
    return replace(core, filter=Filter(root=new_root))


def _fill_predicate(
    pred: Predicate, nl: str, database: Database, numbers: _NumberPool
) -> Predicate:
    if isinstance(pred, LogicalPredicate):
        return LogicalPredicate(
            op=pred.op,
            left=_fill_predicate(pred.left, nl, database, numbers),
            right=_fill_predicate(pred.right, nl, database, numbers),
        )
    if isinstance(pred, Comparison):
        if pred.value != VALUE_TOKEN:
            return pred
        return replace(pred, value=_resolve(pred, nl, database, numbers))
    if isinstance(pred, Between):
        low, high = pred.low, pred.high
        if low == VALUE_TOKEN:
            low = numbers.next()
        if high == VALUE_TOKEN:
            high = numbers.next()
        if low is None or high is None:
            return replace(pred, low=low if low is not None else 0, high=high or 0)
        return replace(pred, low=low, high=high)
    if isinstance(pred, Like):
        if pred.pattern != VALUE_TOKEN:
            return pred
        return replace(pred, pattern=_resolve_like(pred, nl))
    if isinstance(pred, (InSubquery, SubqueryComparison)):
        return replace(
            pred, query=_fill_core(pred.query, nl, database, numbers)
        )
    return pred


def _column_type(pred, database: Database) -> str:
    try:
        return database.column_type(pred.attr.table, pred.attr.column)
    except Exception:
        return "C"


def _resolve(pred: Comparison, nl: str, database: Database, numbers: _NumberPool):
    ctype = "Q" if pred.attr.is_aggregated else _column_type(pred, database)
    if ctype == "Q":
        value = numbers.next()
        return value if value is not None else 0
    if ctype == "T":
        match = re.search(r"\d{4}-\d{2}-\d{2}(?: \d{2}:\d{2})?|\b\d{4}\b", nl)
        if match:
            text = match.group()
            return int(text) if re.fullmatch(r"\d{4}", text) else text
        value = numbers.next()
        return value if value is not None else ""
    # Categorical: find the column value with the longest mention in NL.
    candidate = _mentioned_value(pred, nl, database)
    if candidate is not None:
        return candidate
    value = numbers.next()
    return value if value is not None else ""


def _mentioned_value(pred: Comparison, nl: str, database: Database):
    lowered = nl.lower()
    try:
        table = database.table(pred.attr.table)
        values = table.column_values(pred.attr.column)
    except Exception:
        return None
    best = None
    for value in values:
        if value is None:
            continue
        text = str(value)
        if text and text.lower() in lowered:
            if best is None or len(text) > len(str(best)):
                best = value
    return best


def _resolve_like(pred: Like, nl: str) -> str:
    quoted = re.search(r"['\"]([^'\"]+)['\"]", nl)
    if quoted:
        return f"%{quoted.group(1)}%"
    contains = re.search(
        r"contain(?:s|ing)?(?: the)?(?: word| string| substring)?\s+(\w+)",
        nl,
        flags=re.IGNORECASE,
    )
    if contains:
        return f"%{contains.group(1)}%"
    return "%"
