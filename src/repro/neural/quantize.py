"""Quantized inference weights: int8 / float16 storage, dequantize-on-GEMM.

Serving replicas want model archives and resident weights as small as
possible (ROADMAP item 1), and CPU inference is memory-bandwidth bound,
so weights are stored quantized and expanded only when the math needs
them:

* ``int8`` — per-tensor symmetric quantization: ``scale = max|W| / 127``,
  payload ``round(W / scale)`` clipped to ±127.  4x (float32) / 8x
  (float64) smaller at rest.
* ``float16`` — plain half-precision storage; 2x / 4x smaller with
  ~1e-3 relative error.

numpy has no int8/float16 GEMM kernels, so compute always happens at
float32: a :class:`QuantizedParameter` shadows ``Tensor.data`` with a
memoizing property that dequantizes on first touch (the first GEMM that
reads the weight) and serves the cached float32 array afterwards.  The
parameter is **read-only** — training a quantized model is a loud
``TypeError``, not a silent precision loss; reload the float checkpoint
to fine-tune.

Entry points: :func:`quantize_model` (in place, e.g. at
``ModelRegistry`` load), :func:`quantized_copy` (leaves the source
model untouched — what the eval harness' accuracy-epsilon guard uses),
and :func:`repro.neural.persist.save_model` / ``load_model`` round-trip
the payloads without ever materializing float weights.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.neural.autograd import Tensor
from repro.neural.layers import Module
from repro.neural.model import Seq2Vis

#: Everything ``precision=`` knobs accept: plain float dtypes are a
#: :meth:`Module.to_dtype` cast, the rest quantize.
PRECISIONS = ("float32", "float64", "float16", "int8")

#: The subset that stores weights quantized.
QUANTIZED_PRECISIONS = ("float16", "int8")

#: Symmetric int8 uses the full signed range minus the asymmetric -128.
INT8_LEVELS = 127

#: Dequantized weights (and therefore all activations) compute at f32.
COMPUTE_DTYPE = np.float32


def quantize_array(array: np.ndarray, precision: str) -> Tuple[np.ndarray, float]:
    """Quantize one tensor; returns ``(payload, scale)``.

    ``scale`` is 1.0 for float16 (the payload carries its own exponent).
    """
    if precision == "int8":
        scale = float(np.max(np.abs(array))) / INT8_LEVELS if array.size else 1.0
        if scale == 0.0:
            scale = 1.0
        payload = np.clip(
            np.rint(np.asarray(array, dtype=np.float64) / scale),
            -INT8_LEVELS, INT8_LEVELS,
        ).astype(np.int8)
        return payload, scale
    if precision == "float16":
        return np.asarray(array, dtype=np.float16), 1.0
    raise ValueError(
        f"unsupported quantized precision {precision!r}; "
        f"pick from {QUANTIZED_PRECISIONS}"
    )


def dequantize_array(payload: np.ndarray, scale: float) -> np.ndarray:
    """Expand a stored payload back to the float32 compute dtype."""
    if payload.dtype == np.int8:
        return payload.astype(COMPUTE_DTYPE) * np.asarray(scale, dtype=COMPUTE_DTYPE)
    return payload.astype(COMPUTE_DTYPE)


class QuantizedParameter(Tensor):
    """A read-only model weight stored quantized.

    Subclasses :class:`Tensor` so layers and :meth:`Module.parameters`
    see a normal parameter, but ``data`` is a property: the quantized
    payload is expanded to float32 on first read (one traced dequantize
    per weight per process) and memoized.  Writing ``data`` raises —
    optimizers and ``to_dtype`` cannot silently corrupt a quantized
    model.
    """

    __slots__ = ("payload", "scale", "precision", "_dequantized", "_tracer")

    def __init__(
        self,
        payload: np.ndarray,
        scale: float,
        precision: str,
        name: str = "",
        tracer=None,
    ):
        # Deliberately skip Tensor.__init__: ``data`` is shadowed by the
        # property below, every other slot is initialized here.
        self.payload = payload
        self.scale = scale
        self.precision = precision
        self.grad = None
        # parameters() filters on requires_grad; stays True so persist /
        # registry keep enumerating quantized models like float ones.
        self.requires_grad = True
        self._parents = ()
        self._backward = None
        self.name = name
        self._dequantized: Optional[np.ndarray] = None
        self._tracer = tracer

    @property
    def data(self) -> np.ndarray:  # type: ignore[override]
        cached = self._dequantized
        if cached is None:
            started = time.time()
            t0 = time.perf_counter()
            cached = dequantize_array(self.payload, self.scale)
            if self._tracer is not None:
                self._tracer.record(
                    "quantize.dequant",
                    start_unix=started,
                    duration_s=time.perf_counter() - t0,
                    param=self.name,
                    precision=self.precision,
                    stored_bytes=int(self.payload.nbytes),
                    expanded_bytes=int(cached.nbytes),
                )
            self._dequantized = cached
        return cached

    @data.setter
    def data(self, value) -> None:
        raise TypeError(
            f"quantized parameter {self.name!r} ({self.precision}) is "
            "read-only; reload the float checkpoint to retrain or recast"
        )

    def drop_cache(self) -> None:
        """Free the memoized float32 copy (rebuilt on next read)."""
        self._dequantized = None


def _parameter_slots(model: Module) -> List[Tuple[Module, str, Tensor]]:
    """``(module, attribute, tensor)`` triples in the exact order
    :meth:`Module.parameters` yields them, so positional checkpoint
    formats and in-place replacement agree on indexing."""
    slots: List[Tuple[Module, str, Tensor]] = []
    for attr, value in model.__dict__.items():
        if isinstance(value, Tensor) and value.requires_grad:
            slots.append((model, attr, value))
        elif isinstance(value, Module):
            slots.extend(_parameter_slots(value))
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    slots.extend(_parameter_slots(item))
    return slots


def model_precision(model: Module) -> str:
    """The model's storage precision: a :data:`PRECISIONS` member."""
    for param in model.parameters():
        if isinstance(param, QuantizedParameter):
            return param.precision
    return str(model.dtype)


def quantize_model(model: Seq2Vis, precision: str, tracer=None) -> Seq2Vis:
    """Re-store *model*'s weights at *precision*, in place; returns it.

    ``float32``/``float64`` are a plain dtype cast; ``int8``/``float16``
    swap every parameter for a :class:`QuantizedParameter`.  Quantizing
    an already-quantized model to the same precision is a no-op; to a
    different one is an error (the float weights are gone).
    """
    if precision not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; pick from {PRECISIONS}"
        )
    current = model_precision(model)
    if current in QUANTIZED_PRECISIONS:
        if current == precision:
            return model
        raise ValueError(
            f"model is already {current}-quantized; cannot recast to "
            f"{precision!r} without the float checkpoint"
        )
    if precision in ("float32", "float64"):
        model.to_dtype(precision)
        return model
    for module, attr, param in _parameter_slots(model):
        payload, scale = quantize_array(param.data, precision)
        setattr(
            module, attr,
            QuantizedParameter(
                payload, scale, precision, name=param.name, tracer=tracer
            ),
        )
    return model


def clone_model(model: Seq2Vis) -> Seq2Vis:
    """A structurally identical float copy of *model* (weights copied)."""
    clone = Seq2Vis(
        in_vocab_size=int(model.embed_in.weight.data.shape[0]),
        out_vocab_size=int(model.out_vocab_size),
        variant=model.variant,
        embed_dim=int(model.embed_in.weight.data.shape[1]),
        hidden_dim=int(model.hidden_dim),
    )
    clone.to_dtype(model.parameters()[0].data.dtype)
    clone.load_state_dict(model.state_dict())
    return clone


def quantized_copy(model: Seq2Vis, precision: str, tracer=None) -> Seq2Vis:
    """Quantize a copy, leaving *model* untouched — the shape the
    eval-harness accuracy guard needs (float and quantized side by
    side)."""
    return quantize_model(clone_model(model), precision, tracer=tracer)


def storage_report(model: Module) -> Dict[str, object]:
    """Bytes at rest vs the float32 equivalent, plus per-tensor rows."""
    rows = []
    stored = 0
    float32_equiv = 0
    for param in model.parameters():
        if isinstance(param, QuantizedParameter):
            nbytes = int(param.payload.nbytes)
            size = int(param.payload.size)
            precision = param.precision
        else:
            nbytes = int(param.data.nbytes)
            size = int(param.data.size)
            precision = str(param.data.dtype)
        stored += nbytes
        float32_equiv += 4 * size
        rows.append({
            "name": param.name,
            "precision": precision,
            "stored_bytes": nbytes,
        })
    return {
        "precision": model_precision(model),
        "stored_bytes": stored,
        "float32_bytes": float32_equiv,
        "compression": (float32_equiv / stored) if stored else 1.0,
        "tensors": rows,
    }
