"""Model weights in POSIX shared memory: pack once, attach everywhere.

The multi-process serving layer (:mod:`repro.serve.pool`) runs N decode
workers, and N private copies of the weights would make replica memory
grow O(workers).  The flat-buffer persistence layout already stores each
parameter as one contiguous array, which is exactly what a shared
mapping wants: :func:`share_model` copies every parameter payload into a
single :class:`multiprocessing.shared_memory.SharedMemory` segment, and
:meth:`SharedModel.views` rebuilds a :class:`~repro.neural.model.Seq2Vis`
whose parameters are **read-only numpy views into the segment** — no
copy, so resident weight bytes stay O(1) in the worker count.

Quantized models compose: an int8/float16 model's payloads are shared
as-is (the segment is 4x/2x smaller), and each worker's
:class:`~repro.neural.quantize.QuantizedParameter` dequantizes lazily
into its own float32 compute cache on first use.

Segment layout::

    [0:8)    generation counter (little-endian uint64, starts at 1)
    [8:64)   reserved
    [64:...) parameter payloads, each 64-byte aligned, in
             ``Module.parameters()`` order

The :class:`SharedManifest` (JSON-serializable) carries everything a
worker needs to attach: segment name, model hyperparameters, both
vocabularies, and per-parameter (shape, dtype, offset, scale) slots.
It crosses process boundaries as plain JSON — the hot-swap control
message is exactly ``manifest.to_json()``.

Lifecycle: the process that calls :func:`share_model` owns the segment
and must :meth:`SharedModel.destroy` it (close + unlink) on shutdown;
attached processes only ever :meth:`SharedModel.close`.  Attaching
processes must be **forked** from the owner so both share one
``resource_tracker`` daemon — a ``spawn``\\ ed process's private tracker
would unlink the segment out from under everyone when it exits.
"""

from __future__ import annotations

import secrets
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.neural.model import Seq2Vis
from repro.neural.quantize import (
    QuantizedParameter,
    _parameter_slots,
    model_precision,
)
from repro.nlp.vocab import SPECIALS, Vocabulary

#: Reserved bytes before the first payload: generation counter + spare.
HEADER_BYTES = 64

#: Payload alignment (cache-line) inside the segment.
ALIGNMENT = 64

#: Every segment name starts with this, so a leak check can
#: ``ls /dev/shm/repro-weights-*`` and a crashed test run is greppable.
SEGMENT_PREFIX = "repro-weights-"

_GENERATION_STRUCT = struct.Struct("<Q")


class SharedWeightsError(RuntimeError):
    """A segment/manifest mismatch while packing or attaching."""


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class SharedSlot:
    """One parameter's location inside the segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str              # payload dtype as stored (int8/float16/float32/...)
    offset: int
    nbytes: int
    scale: float = 1.0      # int8 dequantize scale (1.0 otherwise)
    quantized: Optional[str] = None  # "int8"/"float16" or None for plain floats

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "scale": self.scale,
            "quantized": self.quantized,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SharedSlot":
        return cls(
            name=payload["name"],
            shape=tuple(int(d) for d in payload["shape"]),
            dtype=payload["dtype"],
            offset=int(payload["offset"]),
            nbytes=int(payload["nbytes"]),
            scale=float(payload.get("scale", 1.0)),
            quantized=payload.get("quantized"),
        )


@dataclass(frozen=True)
class SharedManifest:
    """Everything needed to rebuild a model from a shared segment.

    JSON-serializable (:meth:`to_json` / :meth:`from_json`): the
    pool ships it to workers inside the ``/control/swap`` body.
    """

    segment: str
    variant: str
    embed_dim: int
    hidden_dim: int
    in_vocab: Tuple[str, ...]
    out_vocab: Tuple[str, ...]
    dtype: str       # compute dtype of float parameters
    precision: str   # model_precision(): float32/float64/float16/int8
    total_bytes: int
    slots: Tuple[SharedSlot, ...]

    def to_json(self) -> dict:
        return {
            "segment": self.segment,
            "variant": self.variant,
            "embed_dim": self.embed_dim,
            "hidden_dim": self.hidden_dim,
            "in_vocab": list(self.in_vocab),
            "out_vocab": list(self.out_vocab),
            "dtype": self.dtype,
            "precision": self.precision,
            "total_bytes": self.total_bytes,
            "slots": [slot.to_json() for slot in self.slots],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SharedManifest":
        return cls(
            segment=payload["segment"],
            variant=payload["variant"],
            embed_dim=int(payload["embed_dim"]),
            hidden_dim=int(payload["hidden_dim"]),
            in_vocab=tuple(payload["in_vocab"]),
            out_vocab=tuple(payload["out_vocab"]),
            dtype=payload["dtype"],
            precision=payload["precision"],
            total_bytes=int(payload["total_bytes"]),
            slots=tuple(
                SharedSlot.from_json(slot) for slot in payload["slots"]
            ),
        )


class SharedModel:
    """A handle on one model's weights in a shared segment.

    ``owner=True`` for the process that created (and must unlink) the
    segment; attached handles are ``owner=False`` and only ever close.
    """

    def __init__(
        self,
        manifest: SharedManifest,
        shm: shared_memory.SharedMemory,
        owner: bool,
    ):
        self.manifest = manifest
        self.shm = shm
        self.owner = owner
        self._destroyed = False

    # ----- segment header ------------------------------------------------

    @property
    def generation(self) -> int:
        """The swap-epoch counter stored in the segment header."""
        return _GENERATION_STRUCT.unpack_from(self.shm.buf, 0)[0]

    def set_generation(self, value: int) -> None:
        """Stamp the header counter (single-writer: the pool)."""
        _GENERATION_STRUCT.pack_into(self.shm.buf, 0, int(value))

    @property
    def nbytes(self) -> int:
        """Total segment size (header + aligned payloads)."""
        return self.manifest.total_bytes

    # ----- model reconstruction -----------------------------------------

    def views(self) -> Tuple[Seq2Vis, Vocabulary, Vocabulary]:
        """A model whose parameters are read-only views into the segment.

        Bit-identical to the model :func:`share_model` packed: float
        parameters alias the shared bytes directly; quantized slots get
        a :class:`QuantizedParameter` over the shared payload.  Nothing
        is copied, so calling this in every worker costs no weight
        memory beyond the one segment.
        """
        manifest = self.manifest
        in_vocab = Vocabulary(
            t for t in manifest.in_vocab if t not in SPECIALS
        )
        out_vocab = Vocabulary(
            t for t in manifest.out_vocab if t not in SPECIALS
        )
        if (
            tuple(in_vocab.tokens) != manifest.in_vocab
            or tuple(out_vocab.tokens) != manifest.out_vocab
        ):
            raise SharedWeightsError(
                f"vocabulary mismatch attaching {manifest.segment!r}"
            )
        model = Seq2Vis(
            in_vocab_size=len(in_vocab),
            out_vocab_size=len(out_vocab),
            variant=manifest.variant,
            embed_dim=manifest.embed_dim,
            hidden_dim=manifest.hidden_dim,
            dtype=manifest.dtype,
        )
        slots = _parameter_slots(model)
        if len(slots) != len(manifest.slots):
            raise SharedWeightsError(
                f"parameter count mismatch attaching {manifest.segment!r}: "
                f"{len(manifest.slots)} shared vs {len(slots)} in the model"
            )
        buf = self.shm.buf
        for (module, attr, param), slot in zip(slots, manifest.slots):
            view = np.ndarray(
                slot.shape, dtype=np.dtype(slot.dtype),
                buffer=buf, offset=slot.offset,
            )
            view.flags.writeable = False
            if slot.quantized is not None:
                setattr(
                    module, attr,
                    QuantizedParameter(
                        view, slot.scale, slot.quantized, name=param.name
                    ),
                )
            else:
                if view.shape != param.data.shape:
                    raise SharedWeightsError(
                        f"shape mismatch for {slot.name!r}: "
                        f"{view.shape} shared vs {param.data.shape}"
                    )
                param.data = view
        model.checkpoint_meta = {
            "dtype": manifest.dtype,
            "optimizer": None,
            "precision": manifest.precision,
            "segment": manifest.segment,
        }
        return model, in_vocab, out_vocab

    # ----- lifecycle -----------------------------------------------------

    @classmethod
    def attach(cls, manifest: SharedManifest) -> "SharedModel":
        """Attach to an existing segment by name (non-owning).

        Pool workers are forked, so they share the pool's
        ``resource_tracker`` daemon: the attach-time registration is a
        set-idempotent no-op there, and the single unregister happens in
        the owner's :meth:`unlink`.  (Do not attach from a ``spawn``\\ ed
        process — its private tracker would unlink the segment when the
        process exits.)
        """
        shm = shared_memory.SharedMemory(name=manifest.segment)
        return cls(manifest, shm, owner=False)

    def close(self) -> None:
        """Drop this process's mapping, best-effort.

        numpy views exported from the buffer keep the mapping pinned —
        a ``BufferError`` here just means an old translator is still
        being garbage-collected, and the memory is reclaimed when the
        process (or the last view) goes away.
        """
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only); mappings survive it."""
        if not self.owner or self._destroyed:
            return
        self._destroyed = True
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """Owner shutdown: unlink the name, then drop the mapping."""
        self.unlink()
        self.close()


def share_model(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    name: Optional[str] = None,
) -> SharedModel:
    """Pack *model*'s weights into a fresh shared segment (owning handle).

    Works for float and quantized models alike: a
    :class:`QuantizedParameter`'s stored payload (int8/float16) is what
    lands in the segment, so quantization shrinks the shared bytes too.
    The source model is left untouched.
    """
    slots = []
    offset = HEADER_BYTES
    payloads = []
    for _, _, param in _parameter_slots(model):
        if isinstance(param, QuantizedParameter):
            payload = np.ascontiguousarray(param.payload)
            quantized: Optional[str] = param.precision
            scale = float(param.scale)
        else:
            payload = np.ascontiguousarray(param.data)
            quantized = None
            scale = 1.0
        offset = _aligned(offset)
        slots.append(SharedSlot(
            name=param.name,
            shape=tuple(int(d) for d in payload.shape),
            dtype=str(payload.dtype),
            offset=offset,
            nbytes=int(payload.nbytes),
            scale=scale,
            quantized=quantized,
        ))
        payloads.append(payload)
        offset += int(payload.nbytes)

    total = max(_aligned(offset), HEADER_BYTES + ALIGNMENT)
    segment_name = name or f"{SEGMENT_PREFIX}{secrets.token_hex(6)}"
    shm = shared_memory.SharedMemory(
        create=True, size=total, name=segment_name
    )
    manifest = SharedManifest(
        segment=shm.name,
        variant=model.variant,
        embed_dim=int(model.embed_in.weight.data.shape[1]),
        hidden_dim=int(model.hidden_dim),
        in_vocab=tuple(in_vocab.tokens),
        out_vocab=tuple(out_vocab.tokens),
        dtype=str(model.dtype),
        precision=model_precision(model),
        total_bytes=total,
        slots=tuple(slots),
    )
    buf = shm.buf
    buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
    for slot, payload in zip(slots, payloads):
        dest = np.ndarray(
            slot.shape, dtype=np.dtype(slot.dtype),
            buffer=buf, offset=slot.offset,
        )
        dest[...] = payload
        del dest  # release the buffer export so close() stays possible
    shared = SharedModel(manifest, shm, owner=True)
    shared.set_generation(1)
    return shared


def shared_segments_report(
    shared: Dict[str, SharedModel]
) -> Dict[str, object]:
    """The ``weights`` document /healthz and /metrics publish.

    ``shared_bytes`` is the sum over segments — by construction it does
    not depend on how many workers attached, which is the O(1)-resident
    claim the multi-worker benchmark asserts.
    """
    segments = {
        name: {
            "segment": handle.manifest.segment,
            "bytes": handle.nbytes,
            "generation": handle.generation,
            "precision": handle.manifest.precision,
        }
        for name, handle in sorted(shared.items())
    }
    return {
        "shared_bytes": sum(entry["bytes"] for entry in segments.values()),
        "segments": segments,
    }
