"""Dataset encoding for seq2vis.

Each example's input sequence is the tokenized NL question concatenated
with the database schema tokens (Figure 15: ``X = [q1..ql, a1..am]``);
the target sequence is the canonical VIS token form with literal values
masked (the value-slot heuristic fills them back after decoding).
Schema tokens are the qualified ``table.column`` names, which also exist
in the output vocabulary — that overlap is what the copy mechanism
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.synthesizer import SynthesizedPair
from repro.grammar.serialize import to_tokens
from repro.neural.model import Batch
from repro.nlp.tokenize import tokenize_nl
from repro.nlp.vocab import Vocabulary
from repro.storage.schema import Database

SEP_TOKEN = "<sep>"

#: cap on schema tokens appended to the input
MAX_SCHEMA_TOKENS = 48
#: cap on NL tokens
MAX_NL_TOKENS = 48


@dataclass
class Example:
    """One encodable (NL, VIS) example with provenance."""

    src_tokens: List[str]
    tgt_tokens: List[str]
    pair: SynthesizedPair


@dataclass
class Seq2VisDataset:
    """Examples plus the vocabularies they are encoded with."""

    examples: List[Example]
    in_vocab: Vocabulary
    out_vocab: Vocabulary

    def __len__(self) -> int:
        return len(self.examples)

    def batches(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> List[Batch]:
        """Padded minibatches.

        When *rng* is given the examples are shuffled, then bucketed by
        length so batches pad less (and the batch order is re-shuffled so
        the model does not see a length curriculum).
        """
        order = np.arange(len(self.examples))
        if rng is not None:
            rng.shuffle(order)
            # Stable argsort on total length keeps the shuffled order
            # inside each length bucket (the same permutation a stable
            # ``sorted`` with a length key would produce).
            lengths = np.fromiter(
                (
                    len(self.examples[int(i)].src_tokens)
                    + len(self.examples[int(i)].tgt_tokens)
                    for i in order
                ),
                dtype=np.int64,
                count=len(order),
            )
            order = order[np.argsort(lengths, kind="stable")]
        chunks = [
            [self.examples[int(i)] for i in order[start : start + batch_size]]
            for start in range(0, len(order), batch_size)
        ]
        if rng is not None:
            rng.shuffle(chunks)
        return [self._encode_batch(chunk) for chunk in chunks if chunk]

    def batch_of(self, examples: Sequence[Example]) -> Batch:
        """Encode an explicit list of examples as one batch."""
        return self._encode_batch(list(examples))

    def _encode_batch(self, examples: List[Example]) -> Batch:
        src_len = max(len(e.src_tokens) for e in examples)
        tgt_len = max(len(e.tgt_tokens) for e in examples) + 1  # room for EOS
        batch = len(examples)
        src_ids = np.full((batch, src_len), self.in_vocab.pad_id, dtype=np.int64)
        src_out_ids = np.full((batch, src_len), self.out_vocab.unk_id, dtype=np.int64)
        src_mask = np.zeros((batch, src_len))
        tgt_in = np.full((batch, tgt_len), self.out_vocab.pad_id, dtype=np.int64)
        tgt_out = np.full((batch, tgt_len), self.out_vocab.pad_id, dtype=np.int64)
        tgt_mask = np.zeros((batch, tgt_len))
        for row, example in enumerate(examples):
            src = self.in_vocab.encode(example.src_tokens)
            src_ids[row, : len(src)] = src
            src_mask[row, : len(src)] = 1.0
            for col, token in enumerate(example.src_tokens):
                src_out_ids[row, col] = self.out_vocab.id_of(token)
            tgt = self.out_vocab.encode(
                example.tgt_tokens, add_bos=True, add_eos=True
            )
            steps = len(tgt) - 1
            tgt_in[row, :steps] = tgt[:-1]
            tgt_out[row, :steps] = tgt[1:]
            tgt_mask[row, :steps] = 1.0
        return Batch(
            src_ids=src_ids,
            src_mask=src_mask,
            src_out_ids=src_out_ids,
            tgt_in=tgt_in,
            tgt_out=tgt_out,
            tgt_mask=tgt_mask,
        )


def encode_source_batch(
    src_token_lists: Sequence[Sequence[str]],
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
) -> Batch:
    """Pad already-tokenized source sequences into one inference batch.

    The serving path uses this to coalesce concurrent translate requests
    into a single forward pass: sequences are padded to the longest one,
    ``src_out_ids`` carries the same tokens in output-vocab ids for the
    copy mechanism, and the mask zeroes the padding so the decode is
    bit-identical to running each request alone (the encoder blends
    padded positions away exactly; attention masks them to 0).
    """
    if not src_token_lists:
        raise ValueError("cannot encode an empty batch")
    src_len = max(len(tokens) for tokens in src_token_lists)
    batch = len(src_token_lists)
    src_ids = np.full((batch, src_len), in_vocab.pad_id, dtype=np.int64)
    src_out_ids = np.full((batch, src_len), out_vocab.unk_id, dtype=np.int64)
    src_mask = np.zeros((batch, src_len))
    for row, tokens in enumerate(src_token_lists):
        ids = in_vocab.encode(tokens)
        src_ids[row, : len(ids)] = ids
        src_mask[row, : len(ids)] = 1.0
        for col, token in enumerate(tokens):
            src_out_ids[row, col] = out_vocab.id_of(token)
    return Batch.for_inference(src_ids, src_mask, src_out_ids)


def schema_tokens(database: Database) -> List[str]:
    """Qualified column-name tokens for the schema part of the input."""
    tokens = [
        f"{table_name}.{column.name}"
        for table_name, column in database.iter_columns()
    ]
    return tokens[:MAX_SCHEMA_TOKENS]


def encode_example(pair: SynthesizedPair, database: Database) -> Example:
    """Build the (input tokens, masked output tokens) for one pair."""
    nl_tokens = tokenize_nl(pair.nl)[:MAX_NL_TOKENS]
    src = nl_tokens + [SEP_TOKEN] + schema_tokens(database)
    tgt = to_tokens(pair.vis, mask_values=True)
    return Example(src_tokens=src, tgt_tokens=tgt, pair=pair)


def build_dataset(
    pairs: Sequence[SynthesizedPair],
    databases,
    in_vocab: Optional[Vocabulary] = None,
    out_vocab: Optional[Vocabulary] = None,
    min_count: int = 1,
) -> Seq2VisDataset:
    """Encode *pairs*; vocabularies are built from these examples unless
    given (evaluation sets must reuse the training vocabularies)."""
    examples = [encode_example(pair, databases[pair.db_name]) for pair in pairs]
    if in_vocab is None:
        in_vocab = Vocabulary.build(
            [e.src_tokens for e in examples], min_count=min_count
        )
    if out_vocab is None:
        out_vocab = Vocabulary.build(
            [e.tgt_tokens for e in examples], min_count=min_count
        )
    return Seq2VisDataset(examples=examples, in_vocab=in_vocab, out_vocab=out_vocab)
