"""Save/load trained seq2vis models (numpy ``.npz`` archives).

The archive stores the architecture hyperparameters, both vocabularies,
and every parameter tensor, so a model can be reloaded for inference
without the original training pipeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple

import numpy as np

from repro.neural.model import Seq2Vis
from repro.nlp.vocab import SPECIALS, Vocabulary


def save_model(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    path: str,
) -> None:
    """Write *model* and its vocabularies to ``path`` (.npz)."""
    meta = {
        "variant": model.variant,
        "embed_dim": int(model.embed_in.weight.data.shape[1]),
        "hidden_dim": int(model.hidden_dim),
        "in_vocab": in_vocab.tokens,
        "out_vocab": out_vocab.tokens,
    }
    arrays = {
        f"param_{index}": param.data
        for index, param in enumerate(model.parameters())
    }
    np.savez(path, meta=json.dumps(meta), **arrays)


def load_model(path: str) -> Tuple[Seq2Vis, Vocabulary, Vocabulary]:
    """Load a model saved with :func:`save_model`."""
    archive = np.load(path, allow_pickle=False)
    meta = json.loads(str(archive["meta"]))
    in_vocab = Vocabulary(t for t in meta["in_vocab"] if t not in SPECIALS)
    out_vocab = Vocabulary(t for t in meta["out_vocab"] if t not in SPECIALS)
    if in_vocab.tokens != meta["in_vocab"] or out_vocab.tokens != meta["out_vocab"]:
        raise ValueError(f"vocabulary mismatch while loading {path!r}")
    model = Seq2Vis(
        in_vocab_size=len(in_vocab),
        out_vocab_size=len(out_vocab),
        variant=meta["variant"],
        embed_dim=meta["embed_dim"],
        hidden_dim=meta["hidden_dim"],
    )
    for index, param in enumerate(model.parameters()):
        stored = archive[f"param_{index}"]
        if stored.shape != param.data.shape:
            raise ValueError(
                f"parameter {index} shape mismatch: "
                f"{stored.shape} vs {param.data.shape}"
            )
        param.data = stored.copy()
    return model, in_vocab, out_vocab
