"""Save/load trained seq2vis models (numpy ``.npz`` archives).

The archive stores the architecture hyperparameters, both vocabularies,
and every parameter tensor, so a model can be reloaded for inference
without the original training pipeline.

Quantized models (see :mod:`repro.neural.quantize`) round-trip without
ever materializing float weights: the archive stores the int8/float16
payloads plus per-tensor scales, and ``meta["precision"]`` tells
:func:`load_model` to rebuild :class:`~repro.neural.quantize.QuantizedParameter`
slots instead of copying float arrays — an int8 archive is ~4x smaller
than its float32 source.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.neural.model import Seq2Vis
from repro.neural.quantize import (
    QUANTIZED_PRECISIONS,
    QuantizedParameter,
    _parameter_slots,
    quantize_model,
)
from repro.nlp.vocab import SPECIALS, Vocabulary


def normalize_model_path(path: Union[str, Path]) -> Path:
    """The path a model archive actually lives at.

    ``np.savez`` silently appends ``.npz`` when the target lacks the
    suffix, so a caller that passed ``models/attn`` would get a file at
    ``models/attn.npz`` while believing it wrote ``models/attn``.  Both
    :func:`save_model` and :func:`load_model` route through this helper
    so the reported, written, and loaded paths always agree.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_model(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    path: Union[str, Path],
    optimizer=None,
) -> Path:
    """Write *model* and its vocabularies to ``path`` (.npz).

    The checkpoint records the parameter dtype, so a float32-trained
    model reloads as float32, and — when *optimizer* is given — the
    optimizer hyperparameters (lr, betas, eps, clip_norm), so a
    fine-tuning run can resume with the same settings.

    Returns the path actually written (``.npz`` suffix normalized).
    """
    params = model.parameters()
    quantized = [p for p in params if isinstance(p, QuantizedParameter)]
    if quantized:
        # Store the payloads as-is; scales ride in the meta JSON.  The
        # recorded dtype is the compute dtype every read expands to.
        arrays = {
            f"param_{index}": param.payload
            for index, param in enumerate(params)
        }
        dtype = "float32"
        precision: Optional[str] = quantized[0].precision
        scales = [float(getattr(p, "scale", 1.0)) for p in params]
    else:
        arrays = {
            f"param_{index}": param.data
            for index, param in enumerate(params)
        }
        dtype = str(model.dtype)
        precision = None
        scales = None
    meta = {
        "variant": model.variant,
        "embed_dim": int(model.embed_in.weight.data.shape[1]),
        "hidden_dim": int(model.hidden_dim),
        "in_vocab": in_vocab.tokens,
        "out_vocab": out_vocab.tokens,
        "dtype": dtype,
    }
    if precision is not None:
        meta["precision"] = precision
        meta["scales"] = scales
    if optimizer is not None:
        meta["optimizer"] = {
            "lr": float(optimizer.lr),
            "beta1": float(optimizer.beta1),
            "beta2": float(optimizer.beta2),
            "eps": float(optimizer.eps),
            "clip_norm": float(optimizer.clip_norm),
        }
    path = normalize_model_path(path)
    np.savez(path, meta=json.dumps(meta), **arrays)
    return path


def load_model(
    path: Union[str, Path],
    precision: Optional[str] = None,
) -> Tuple[Seq2Vis, Vocabulary, Vocabulary]:
    """Load a model saved with :func:`save_model`.

    Accepts the path with or without the ``.npz`` suffix, mirroring what
    :func:`save_model` accepts.

    ``precision`` re-stores a float checkpoint's weights at load time
    (``"float32"``/``"float64"`` cast, ``"int8"``/``"float16"``
    quantize — the registry's serve-time knob).  A checkpoint that was
    *saved* quantized always reloads at its stored precision; asking for
    a different one raises, since the float weights no longer exist.
    """
    path = normalize_model_path(path)
    archive = np.load(path, allow_pickle=False)
    meta = json.loads(str(archive["meta"]))
    in_vocab = Vocabulary(t for t in meta["in_vocab"] if t not in SPECIALS)
    out_vocab = Vocabulary(t for t in meta["out_vocab"] if t not in SPECIALS)
    if in_vocab.tokens != meta["in_vocab"] or out_vocab.tokens != meta["out_vocab"]:
        raise ValueError(f"vocabulary mismatch while loading {str(path)!r}")
    model = Seq2Vis(
        in_vocab_size=len(in_vocab),
        out_vocab_size=len(out_vocab),
        variant=meta["variant"],
        embed_dim=meta["embed_dim"],
        hidden_dim=meta["hidden_dim"],
        dtype=meta.get("dtype"),
    )
    stored_precision = meta.get("precision")
    if stored_precision in QUANTIZED_PRECISIONS:
        if precision is not None and precision != stored_precision:
            raise ValueError(
                f"checkpoint {str(path)!r} is stored {stored_precision}; "
                f"cannot reload at {precision!r} (float weights are gone)"
            )
        scales = meta.get("scales") or []
        slots = _parameter_slots(model)
        for index, (module, attr, param) in enumerate(slots):
            payload = archive[f"param_{index}"]
            if payload.shape != param.data.shape:
                raise ValueError(
                    f"parameter {index} shape mismatch: "
                    f"{payload.shape} vs {param.data.shape}"
                )
            scale = float(scales[index]) if index < len(scales) else 1.0
            setattr(
                module, attr,
                QuantizedParameter(
                    payload, scale, stored_precision, name=param.name
                ),
            )
    else:
        for index, param in enumerate(model.parameters()):
            stored = archive[f"param_{index}"]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {index} shape mismatch: "
                    f"{stored.shape} vs {param.data.shape}"
                )
            # Copy in place: an optimizer built on this model may alias
            # param.data, and rebinding would silently detach it.
            param.data[...] = stored
        if precision is not None:
            quantize_model(model, precision)
    model.checkpoint_meta = {
        "dtype": meta.get("dtype", "float64"),
        "optimizer": meta.get("optimizer"),
        "precision": stored_precision or precision or meta.get("dtype", "float64"),
    }
    return model, in_vocab, out_vocab
