"""A small tape-based reverse-mode autograd engine on numpy arrays.

Just enough surface for LSTM seq2seq models with attention and copying:
dense algebra (matmul, add with broadcasting, elementwise mul), the
gate nonlinearities, softmax/log, slicing and concatenation, embedding
gather, batched attention primitives (stack / attention scores /
weighted context), and a scatter op for copy distributions.

Every op records a backward closure on the global tape implicitly via
parent links; ``Tensor.backward()`` topologically sorts the graph and
accumulates gradients.  Gradients are checked against finite differences
in the test suite.

Dtype policy (see :mod:`repro.neural.dtype`): float32 and float64
arrays pass through untouched — ops never upcast — while everything
else is cast to the process default (float64).  Inference paths wrap
their forwards in :func:`no_grad` so no graph is recorded at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.neural.dtype import get_default_dtype

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_grad_enabled = True


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording: ops built inside produce constant
    tensors with no parents, so decoding holds no activation graph."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def grad_enabled() -> bool:
    """Whether ops currently record the backward graph."""
    return _grad_enabled


class Tensor:
    """A numpy array with gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        array = np.asarray(data)
        if array.dtype not in _FLOAT_DTYPES:
            array = array.astype(get_default_dtype())
        self.data = array
        self.grad: Optional[np.ndarray] = None
        if _grad_enabled:
            self.requires_grad = requires_grad or any(
                p.requires_grad for p in parents
            )
            self._parents = parents
        else:
            # Inside no_grad the node is a constant: keeping parent
            # links would pin every intermediate of a decode loop.
            self.requires_grad = requires_grad if not parents else False
            self._parents = ()
        self._backward = backward
        self.name = name

    # ----- bookkeeping ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy so later in-place += never aliases an op's output.
            self.grad = np.array(grad)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient the caller freshly allocated and will
        never mutate again: the first touch takes the array by
        reference instead of copying it.  Only for closures that can
        guarantee ownership — passing a view of a child's gradient
        here would corrupt it on a later ``+=``."""
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def backward(
        self, grad: Optional[np.ndarray] = None, free_graph: bool = False
    ) -> None:
        """Backpropagate from this tensor (default seed: ones).

        With ``free_graph=True`` each interior node's gradient, parent
        links, and backward closure are dropped as soon as its closure
        has run, so the peak memory of a training step is the forward
        activations plus one gradient front instead of the whole tape.
        Leaf parameters keep their accumulated gradients.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            # Constant nodes are marked visited too: a shared constant
            # (e.g. the scatter indices' subgraph) is then checked once
            # instead of on every edge that reaches it.
            if id(node) in visited:
                return
            visited.add(id(node))
            if not node.requires_grad:
                return
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            if free_graph and node._parents:
                node.grad = None
                node._parents = ()
                node._backward = None

    def zero_grad(self) -> None:
        self.grad = None

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}, name={self.name!r})"

    # ----- operators -------------------------------------------------------

    def __add__(self, other: "Tensor") -> "Tensor":
        return add(self, other)

    def __mul__(self, other: "Tensor") -> "Tensor":
        return mul(self, other)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)


def parameter(array: np.ndarray, name: str = "") -> Tensor:
    """A trainable leaf tensor."""
    return Tensor(array, requires_grad=True, name=name)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ----- arithmetic -----------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data + b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad, b.shape))

    out._backward = backward
    return out


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data * b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        # grad * data is a fresh array, so even when _unbroadcast is a
        # no-op the result is ours to hand over by reference.
        if a.requires_grad:
            a._accumulate_owned(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate_owned(_unbroadcast(grad * a.data, b.shape))

    out._backward = backward
    return out


def scale(a: Tensor, factor: float) -> Tensor:
    out = Tensor(a.data * factor, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(grad * factor)

    out._backward = backward
    return out


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data @ b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(grad @ b.data.T)
        if b.requires_grad:
            b._accumulate_owned(a.data.T @ grad)

    out._backward = backward
    return out


# ----- nonlinearities --------------------------------------------------------


def sigmoid(a: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60)))
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(grad * value * (1.0 - value))

    out._backward = backward
    return out


def tanh(a: Tensor) -> Tensor:
    value = np.tanh(a.data)
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(grad * (1.0 - value**2))

    out._backward = backward
    return out


# ----- shaping ----------------------------------------------------------------


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis), parents=tuple(tensors))
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, start + size)
            if tensor.requires_grad:
                tensor._accumulate(grad[tuple(index)])
            start += size

    out._backward = backward
    return out


def slice_cols(a: Tensor, start: int, stop: int) -> Tensor:
    out = Tensor(a.data[:, start:stop], parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            full[:, start:stop] = grad
            a._accumulate_owned(full)

    out._backward = backward
    return out


def stack_seq(tensors: Sequence[Tensor]) -> Tensor:
    """Stack L tensors of shape (B, H) into (B, L, H)."""
    out = Tensor(np.stack([t.data for t in tensors], axis=1), parents=tuple(tensors))

    def backward(grad: np.ndarray) -> None:
        for index, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(grad[:, index, :])

    out._backward = backward
    return out


def concat_last(a: Tensor, b: Tensor) -> Tensor:
    """Concatenate two (B, L, H) sequences along the feature axis.

    The bi-directional encoder uses this to join the stacked forward
    and backward passes with one node instead of L per-position
    :func:`concat` nodes.
    """
    width = a.data.shape[2]
    out = Tensor(np.concatenate([a.data, b.data], axis=2), parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        # The halves are views of the child's gradient — copying
        # accumulation only; taking them by reference would let a later
        # += corrupt the child.
        if a.requires_grad:
            a._accumulate(grad[:, :, :width])
        if b.requires_grad:
            b._accumulate(grad[:, :, width:])

    out._backward = backward
    return out


# ----- embeddings --------------------------------------------------------------


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows: weight (V, D), indices (B,) → (B, D)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor(weight.data[indices], parents=(weight,))

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices, grad)
            weight._accumulate_owned(full)

    out._backward = backward
    return out


def embedding_seq(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather a whole sequence at once: weight (V, D), indices (B, L)
    → (B, L, D).

    One gather plus one scatter-add replaces the L per-position
    :func:`embedding` calls (each of which allocated a dense (V, D)
    gradient buffer) — the single biggest allocation sink of the
    per-position encoder backward.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor(weight.data[indices], parents=(weight,))

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(
                full,
                indices.reshape(-1),
                grad.reshape(-1, weight.data.shape[1]),
            )
            weight._accumulate_owned(full)

    out._backward = backward
    return out


def slice_time(a: Tensor, position: int) -> Tensor:
    """Pick one timestep: a (B, L, D) → (B, D).

    The backward writes straight into ``a.grad`` instead of building a
    dense (B, L, D) scratch per position.
    """
    out = Tensor(a.data[:, position, :], parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            if a.grad is None:
                a.grad = np.zeros_like(a.data)
            a.grad[:, position, :] += grad

    out._backward = backward
    return out


# ----- fused recurrence ---------------------------------------------------------


def matmul_seq(a: Tensor, b: Tensor) -> Tensor:
    """Sequence matmul: a (B, L, D) @ b (D, M) → (B, L, M).

    One GEMM over the flattened (B·L, D) sequence.  The encoder uses it
    to hoist every timestep's input projection ``x_t @ w_x`` out of the
    recurrence: the per-step kernel then only pays the state matmul,
    and the backward pays two sequence-sized GEMMs instead of 2·L
    step-sized ones.
    """
    batch, length, dim = a.data.shape
    flat = a.data.reshape(batch * length, dim)
    value = (flat @ b.data).reshape(batch, length, -1)
    out = Tensor(value, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(batch * length, -1)
        if a.requires_grad:
            a._accumulate_owned(
                (grad_flat @ b.data.T).reshape(batch, length, dim)
            )
        if b.requires_grad:
            b._accumulate_owned(flat.T @ grad_flat)

    out._backward = backward
    return out


def lstm_step(
    x: Optional[Tensor],
    w_x: Tensor,
    w_h: Tensor,
    bias: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    x_proj: Optional[Tensor] = None,
) -> Tuple[Tensor, Tensor]:
    """One fused LSTM step: all four gates, the cell update, and the
    output in two graph nodes instead of ~14.

    Forward math (and therefore values, bit for bit) matches the
    composed op-by-op cell in :class:`repro.neural.layers.LSTMCell`:
    ``z = (x @ w_x + h @ w_h) + b``; ``i, f, g, o`` from the four gate
    blocks; ``c = f*c_prev + i*g``; ``h = o*tanh(c)``.

    The backward is split across the two returned nodes: ``h``'s
    closure runs first (``c`` is its parent, so topological order
    guarantees it) and stashes the output-gate pre-activation gradient;
    ``c``'s closure then has the *total* cell gradient — the ``tanh``
    path through ``h`` plus whatever the next step contributed — and
    backpropagates the whole gate block at once.

    When *x_proj* is given it is the precomputed ``x @ w_x`` for this
    step (a :func:`slice_time` of a :func:`matmul_seq` projection); the
    kernel then skips the input matmul entirely and routes ``dz``
    straight to the projection node.
    """
    if x_proj is not None:
        z = x_proj.data + h_prev.data @ w_h.data
    else:
        # Built in place; the value association is still
        # (x @ w_x + h @ w_h) + bias, bit-identical to the unfused path.
        z = x.data @ w_x.data
        z += h_prev.data @ w_h.data
    z += bias.data
    hidden = z.shape[1] // 4
    # One activation pass over the whole (B, 4H) block: sigmoid
    # everywhere (elementwise bitwise-identical to the seed's
    # 1/(1+exp(-clip(z)))), then the g block is overwritten with its
    # tanh.  On one core, ufunc dispatch — not FLOPs — dominates these
    # small arrays, so 4 dispatches beat 12 even with the wasted
    # quarter-block exp.
    gates = np.clip(z, -60, 60)
    np.negative(gates, out=gates)
    np.exp(gates, out=gates)
    gates += 1.0
    np.divide(1.0, gates, out=gates)
    g = np.tanh(z[:, 2 * hidden : 3 * hidden])
    gates[:, 2 * hidden : 3 * hidden] = g
    i = gates[:, :hidden]
    f = gates[:, hidden : 2 * hidden]
    o = gates[:, 3 * hidden :]
    c_value = f * c_prev.data
    c_value += i * g
    tanh_c = np.tanh(c_value)
    h_value = o * tanh_c

    if x_proj is not None:
        step_parents = (x_proj, w_h, bias, h_prev, c_prev)
    else:
        step_parents = (x, w_x, w_h, bias, h_prev, c_prev)
    c_out = Tensor(c_value, parents=step_parents)
    h_out = Tensor(h_value, parents=(c_out,))
    # h's backward runs before c's; it parks the output-gate piece of
    # the pre-activation gradient here for c's closure to pick up.
    stash = {}

    def backward_h(grad: np.ndarray) -> None:
        # Park d(activation_o) = dh * tanh(c); the sigmoid derivative is
        # applied in backward_c's single whole-block pass.
        stash["dact_o"] = grad * tanh_c
        dct = tanh_c * tanh_c
        np.subtract(1.0, dct, out=dct)
        dct *= o
        dct *= grad
        c_out._accumulate_owned(dct)

    def backward_c(dc: np.ndarray) -> None:
        # Fill dz with d(activation) per gate block, then multiply the
        # whole (B, 4H) block by the activation derivatives in one pass:
        # s*(1-s) everywhere, with the g block patched to 1-g².
        dz = np.empty_like(z)
        np.multiply(dc, g, out=dz[:, :hidden])
        np.multiply(dc, c_prev.data, out=dz[:, hidden : 2 * hidden])
        np.multiply(dc, i, out=dz[:, 2 * hidden : 3 * hidden])
        dact_o = stash.get("dact_o")
        if dact_o is None:
            dz[:, 3 * hidden :] = 0.0
        else:
            dz[:, 3 * hidden :] = dact_o
        deriv = 1.0 - gates
        deriv *= gates
        gblock = deriv[:, 2 * hidden : 3 * hidden]
        np.multiply(g, g, out=gblock)
        np.subtract(1.0, gblock, out=gblock)
        dz *= deriv
        if c_prev.requires_grad:
            c_prev._accumulate_owned(dc * f)
        if bias.requires_grad:
            bias._accumulate_owned(dz.sum(axis=0, keepdims=True))
        if x_proj is not None:
            if x_proj.requires_grad:
                # dz is created by this closure and never mutated after,
                # so the projection node can take it by reference.
                x_proj._accumulate_owned(dz)
        else:
            if x.requires_grad:
                x._accumulate_owned(dz @ w_x.data.T)
            if w_x.requires_grad:
                w_x._accumulate_owned(x.data.T @ dz)
        if h_prev.requires_grad:
            h_prev._accumulate_owned(dz @ w_h.data.T)
        if w_h.requires_grad:
            w_h._accumulate_owned(h_prev.data.T @ dz)

    h_out._backward = backward_h
    c_out._backward = backward_c
    return h_out, c_out


def lstm_seq(
    x_proj: Tensor,
    w_h: Tensor,
    bias: Tensor,
    h0: Tensor,
    c0: Tensor,
    keep: Optional[np.ndarray] = None,
    reverse: bool = False,
) -> Tensor:
    """Run a whole LSTM recurrence as ONE graph node.

    *x_proj* (B, L, 4H) holds every timestep's input projection (a
    :func:`matmul_seq`); the loop here is pure numpy — no per-step
    tensors, closures, or topo-sort bookkeeping, which on one core is
    most of what a step costs.  Per element the math (and its
    association) is identical to :func:`lstm_step`, so the forward
    values match the op-by-op cell bit for bit.

    *keep* is the (B, L) validity mask: padded positions carry the
    previous state through, with the same ``h_new*keep + h_prev*drop``
    blend the layer-level path uses.  ``reverse=True`` runs the
    recurrence right-to-left (the backward direction of a bi-LSTM);
    outputs stay laid out by absolute position.

    Returns the carried hidden states (B, L, H).  The recurrence's
    backward batches the weight gradient into one (L·B)-row GEMM and
    hands the input-projection gradient over as a single array, so only
    the unavoidable per-step ``dz @ w_h.T`` GEMM remains in the loop.
    """
    P = x_proj.data
    batch, length, width = P.shape
    hidden = width // 4
    dtype = P.dtype
    wh = w_h.data
    b = bias.data
    h = h0.data
    c = c0.data
    times = list(range(length))
    if reverse:
        times.reverse()
    if keep is not None:
        keep_arr = np.asarray(keep, dtype=dtype)
        full_cols = keep_arr.all(axis=0)
        if full_cols.all():
            keep_arr = None
    else:
        keep_arr = None
    # Time-major saved state: [t] slices are contiguous, which keeps
    # every ufunc in the loops on contiguous memory.
    gates_seq = np.empty((length, batch, width), dtype=dtype)
    tanhc_seq = np.empty((length, batch, hidden), dtype=dtype)
    c_seq = np.empty((length, batch, hidden), dtype=dtype)
    h_seq = np.empty((length, batch, hidden), dtype=dtype)

    for t in times:
        z = P[:, t] + h @ wh  # same association as the fused cell
        z += b
        gates = gates_seq[t]
        np.clip(z, -60, 60, out=gates)
        np.negative(gates, out=gates)
        np.exp(gates, out=gates)
        gates += 1.0
        np.divide(1.0, gates, out=gates)
        np.tanh(z[:, 2 * hidden : 3 * hidden], out=gates[:, 2 * hidden : 3 * hidden])
        i = gates[:, :hidden]
        f = gates[:, hidden : 2 * hidden]
        g = gates[:, 2 * hidden : 3 * hidden]
        o = gates[:, 3 * hidden :]
        c_new = c_seq[t]
        np.multiply(f, c, out=c_new)
        c_new += i * g
        tanh_c = tanhc_seq[t]
        np.tanh(c_new, out=tanh_c)
        h_new = h_seq[t]
        np.multiply(o, tanh_c, out=h_new)
        if keep_arr is not None and not full_cols[t]:
            kt = keep_arr[:, t : t + 1]
            dt = 1.0 - kt
            h_new *= kt
            h_new += h * dt
            c_new *= kt
            c_new += c * dt
        h = h_new
        c = c_new
    value = np.ascontiguousarray(h_seq.transpose(1, 0, 2))
    out = Tensor(value, parents=(x_proj, w_h, bias, h0, c0))

    def backward(grad: np.ndarray) -> None:
        grad_t = grad.transpose(1, 0, 2)  # (L, B, H) view
        dh_carry = np.zeros((batch, hidden), dtype=dtype)
        dc_carry = np.zeros((batch, hidden), dtype=dtype)
        dz_seq = np.empty((length, batch, width), dtype=dtype)
        deriv = np.empty((batch, width), dtype=dtype)
        for step in range(length - 1, -1, -1):
            t = times[step]
            dh = grad_t[t] + dh_carry
            dc_in = dc_carry
            masked = keep_arr is not None and not full_cols[t]
            if masked:
                kt = keep_arr[:, t : t + 1]
                dt = 1.0 - kt
                dh_blend = dh * dt
                dc_blend = dc_in * dt
                dh = dh * kt
                dc_in = dc_in * kt
            gates = gates_seq[t]
            tanh_c = tanhc_seq[t]
            i = gates[:, :hidden]
            f = gates[:, hidden : 2 * hidden]
            g = gates[:, 2 * hidden : 3 * hidden]
            o = gates[:, 3 * hidden :]
            dact_o = dh * tanh_c
            # total cell grad: carried + the tanh path through h
            dct = tanh_c * tanh_c
            np.subtract(1.0, dct, out=dct)
            dct *= o
            dct *= dh
            dct += dc_in
            if step > 0:
                c_prev = c_seq[times[step - 1]]
                h_prev = h_seq[times[step - 1]]
            else:
                c_prev = c0.data
                h_prev = h0.data
            dz = dz_seq[t]
            np.multiply(dct, g, out=dz[:, :hidden])
            np.multiply(dct, c_prev, out=dz[:, hidden : 2 * hidden])
            np.multiply(dct, i, out=dz[:, 2 * hidden : 3 * hidden])
            dz[:, 3 * hidden :] = dact_o
            np.subtract(1.0, gates, out=deriv)
            deriv *= gates
            gblock = deriv[:, 2 * hidden : 3 * hidden]
            np.multiply(g, g, out=gblock)
            np.subtract(1.0, gblock, out=gblock)
            dz *= deriv
            dc_carry = dct * f
            dh_carry = dz @ wh.T
            if masked:
                dc_carry += dc_blend
                dh_carry += dh_blend
        if h0.requires_grad:
            h0._accumulate_owned(dh_carry)
        if c0.requires_grad:
            c0._accumulate_owned(dc_carry)
        if bias.requires_grad:
            bias._accumulate_owned(
                dz_seq.sum(axis=(0, 1))[None, :]
            )
        if w_h.requires_grad:
            # One (L·B, H).T @ (L·B, 4H) GEMM instead of L small ones.
            h_prevs = np.empty((length, batch, hidden), dtype=dtype)
            h_prevs[times[0]] = h0.data
            for step in range(1, length):
                h_prevs[times[step]] = h_seq[times[step - 1]]
            w_h._accumulate_owned(
                h_prevs.reshape(length * batch, hidden).T
                @ dz_seq.reshape(length * batch, width)
            )
        if x_proj.requires_grad:
            x_proj._accumulate_owned(
                np.ascontiguousarray(dz_seq.transpose(1, 0, 2))
            )

    out._backward = backward
    return out


# ----- attention primitives -----------------------------------------------------


def attention_scores(memory: Tensor, query: Tensor) -> Tensor:
    """Dot scores: memory (B, L, H) · query (B, H) → (B, L).

    Batched ``np.matmul`` instead of ``einsum`` — on these shapes the
    einsum path spends most of its time in Python-level parsing and
    dispatch, which the decoder pays once per timestep.
    """
    value = np.matmul(memory.data, query.data[:, :, None])[:, :, 0]
    out = Tensor(value, parents=(memory, query))

    def backward(grad: np.ndarray) -> None:
        # Outer products are fastest through einsum here; reductions
        # through batched matmul (measured on the training shapes).
        if memory.requires_grad:
            memory._accumulate_owned(
                np.einsum("bl,bh->blh", grad, query.data)
            )
        if query.requires_grad:
            query._accumulate_owned(
                np.matmul(grad[:, None, :], memory.data)[:, 0]
            )

    out._backward = backward
    return out


def attention_context(weights: Tensor, memory: Tensor) -> Tensor:
    """Weighted sum: weights (B, L) × memory (B, L, H) → (B, H)."""
    value = np.matmul(weights.data[:, None, :], memory.data)[:, 0]
    out = Tensor(value, parents=(weights, memory))

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            weights._accumulate_owned(
                np.matmul(memory.data, grad[:, :, None])[:, :, 0]
            )
        if memory.requires_grad:
            memory._accumulate_owned(
                np.einsum("bl,bh->blh", weights.data, grad)
            )

    out._backward = backward
    return out


def attention_scores_seq(query_seq: Tensor, memory: Tensor) -> Tensor:
    """Dot scores for every decoder step at once:
    query_seq (B, T, H) · memory (B, L, H) → (B, T, L)."""
    value = np.matmul(query_seq.data, memory.data.transpose(0, 2, 1))
    out = Tensor(value, parents=(query_seq, memory))

    def backward(grad: np.ndarray) -> None:
        if query_seq.requires_grad:
            query_seq._accumulate_owned(np.matmul(grad, memory.data))
        if memory.requires_grad:
            memory._accumulate_owned(
                np.matmul(grad.transpose(0, 2, 1), query_seq.data)
            )

    out._backward = backward
    return out


def attention_context_seq(weights: Tensor, memory: Tensor) -> Tensor:
    """Weighted sums for every decoder step at once:
    weights (B, T, L) × memory (B, L, H) → (B, T, H)."""
    value = np.matmul(weights.data, memory.data)
    out = Tensor(value, parents=(weights, memory))

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            weights._accumulate_owned(
                np.matmul(grad, memory.data.transpose(0, 2, 1))
            )
        if memory.requires_grad:
            memory._accumulate_owned(
                np.matmul(weights.data.transpose(0, 2, 1), grad)
            )

    out._backward = backward
    return out


def reshape_merge(a: Tensor) -> Tensor:
    """Merge the leading two axes: (B, T, D) → (B·T, D).

    Pure view forward; the backward reshapes the gradient back, which
    is again a view of the child's gradient, so accumulation copies.
    """
    batch, steps, dim = a.data.shape
    out = Tensor(a.data.reshape(batch * steps, dim), parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.reshape(batch, steps, dim))

    out._backward = backward
    return out


def masked_softmax(a: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax over the last axis; positions where ``mask == 0`` get
    probability zero (mask is a constant, not differentiated)."""
    logits = a.data.copy()
    if mask is not None:
        logits = np.where(mask > 0, logits, -1e30)
    logits -= logits.max(axis=-1, keepdims=True)
    exp = np.exp(logits)
    value = exp / exp.sum(axis=-1, keepdims=True)
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * value).sum(axis=-1, keepdims=True)
            a._accumulate_owned(value * (grad - dot))

    out._backward = backward
    return out


# ----- probabilities and loss ------------------------------------------------


def scatter_probs(weights: Tensor, indices: np.ndarray, size: int) -> Tensor:
    """Scatter-add attention weights onto vocabulary slots.

    weights (B, L), indices (B, L) of vocab ids → (B, size).  The copy
    mechanism uses this to turn attention over source tokens into a
    distribution over the output vocabulary.
    """
    indices = np.asarray(indices, dtype=np.int64)
    batch, length = weights.data.shape
    value = np.zeros((batch, size), dtype=weights.data.dtype)
    rows = np.repeat(np.arange(batch), length)
    np.add.at(value, (rows, indices.reshape(-1)), weights.data.reshape(-1))
    out = Tensor(value, parents=(weights,))

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            weights._accumulate_owned(
                grad[rows, indices.reshape(-1)].reshape(batch, length)
            )

    out._backward = backward
    return out


def gather_cols(a: Tensor, indices: np.ndarray) -> Tensor:
    """Pick one column per row: a (B, V), indices (B,) → (B,)."""
    indices = np.asarray(indices, dtype=np.int64)
    rows = np.arange(a.data.shape[0])
    out = Tensor(a.data[rows, indices], parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            full[rows, indices] = grad
            a._accumulate_owned(full)

    out._backward = backward
    return out


def log(a: Tensor, eps: float = 1e-12) -> Tensor:
    value = np.log(a.data + eps)
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(grad / (a.data + eps))

    out._backward = backward
    return out


def masked_mean(a: Tensor, mask: np.ndarray) -> Tensor:
    """Mean of the elements where ``mask == 1`` (mask is constant)."""
    mask = np.asarray(mask, dtype=a.data.dtype)
    # Plain float: NEP-50 keeps python scalars "weak", so dividing a
    # float32 loss by the token count cannot upcast it to float64.
    total = float(max(mask.sum(), 1.0))
    out = Tensor((a.data * mask).sum() / total, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(grad * mask / total)

    out._backward = backward
    return out


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Fused log-softmax + NLL per row: logits (B, V), targets (B,) → (B,)."""
    targets = np.asarray(targets, dtype=np.int64)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    rows = np.arange(logits.data.shape[0])
    out = Tensor(-log_probs[rows, targets], parents=(logits,))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            probs = np.exp(log_probs)
            full = probs * grad[:, None]
            full[rows, targets] -= grad
            logits._accumulate_owned(full)

    out._backward = backward
    return out
