"""A small tape-based reverse-mode autograd engine on numpy arrays.

Just enough surface for LSTM seq2seq models with attention and copying:
dense algebra (matmul, add with broadcasting, elementwise mul), the
gate nonlinearities, softmax/log, slicing and concatenation, embedding
gather, batched attention primitives (stack / attention scores /
weighted context), and a scatter op for copy distributions.

Every op records a backward closure on the global tape implicitly via
parent links; ``Tensor.backward()`` topologically sorts the graph and
accumulates gradients.  Gradients are checked against finite differences
in the test suite.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class Tensor:
    """A numpy array with gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents
        self._backward = backward
        self.name = name

    # ----- bookkeeping ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy so later in-place += never aliases an op's output.
            self.grad = np.array(grad)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}, name={self.name!r})"

    # ----- operators -------------------------------------------------------

    def __add__(self, other: "Tensor") -> "Tensor":
        return add(self, other)

    def __mul__(self, other: "Tensor") -> "Tensor":
        return mul(self, other)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)


def parameter(array: np.ndarray, name: str = "") -> Tensor:
    """A trainable leaf tensor."""
    return Tensor(array, requires_grad=True, name=name)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ----- arithmetic -----------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data + b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad, b.shape))

    out._backward = backward
    return out


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data * b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * a.data, b.shape))

    out._backward = backward
    return out


def scale(a: Tensor, factor: float) -> Tensor:
    out = Tensor(a.data * factor, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * factor)

    out._backward = backward
    return out


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data @ b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad @ b.data.T)
        if b.requires_grad:
            b._accumulate(a.data.T @ grad)

    out._backward = backward
    return out


# ----- nonlinearities --------------------------------------------------------


def sigmoid(a: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60)))
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * value * (1.0 - value))

    out._backward = backward
    return out


def tanh(a: Tensor) -> Tensor:
    value = np.tanh(a.data)
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (1.0 - value**2))

    out._backward = backward
    return out


# ----- shaping ----------------------------------------------------------------


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis), parents=tuple(tensors))
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, start + size)
            if tensor.requires_grad:
                tensor._accumulate(grad[tuple(index)])
            start += size

    out._backward = backward
    return out


def slice_cols(a: Tensor, start: int, stop: int) -> Tensor:
    out = Tensor(a.data[:, start:stop], parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            full[:, start:stop] = grad
            a._accumulate(full)

    out._backward = backward
    return out


def stack_seq(tensors: Sequence[Tensor]) -> Tensor:
    """Stack L tensors of shape (B, H) into (B, L, H)."""
    out = Tensor(np.stack([t.data for t in tensors], axis=1), parents=tuple(tensors))

    def backward(grad: np.ndarray) -> None:
        for index, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(grad[:, index, :])

    out._backward = backward
    return out


# ----- embeddings --------------------------------------------------------------


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows: weight (V, D), indices (B,) → (B, D)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor(weight.data[indices], parents=(weight,))

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices, grad)
            weight._accumulate(full)

    out._backward = backward
    return out


# ----- attention primitives -----------------------------------------------------


def attention_scores(memory: Tensor, query: Tensor) -> Tensor:
    """Dot scores: memory (B, L, H) · query (B, H) → (B, L)."""
    value = np.einsum("blh,bh->bl", memory.data, query.data)
    out = Tensor(value, parents=(memory, query))

    def backward(grad: np.ndarray) -> None:
        if memory.requires_grad:
            memory._accumulate(np.einsum("bl,bh->blh", grad, query.data))
        if query.requires_grad:
            query._accumulate(np.einsum("bl,blh->bh", grad, memory.data))

    out._backward = backward
    return out


def attention_context(weights: Tensor, memory: Tensor) -> Tensor:
    """Weighted sum: weights (B, L) × memory (B, L, H) → (B, H)."""
    value = np.einsum("bl,blh->bh", weights.data, memory.data)
    out = Tensor(value, parents=(weights, memory))

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            weights._accumulate(np.einsum("bh,blh->bl", grad, memory.data))
        if memory.requires_grad:
            memory._accumulate(np.einsum("bl,bh->blh", weights.data, grad))

    out._backward = backward
    return out


def masked_softmax(a: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax over the last axis; positions where ``mask == 0`` get
    probability zero (mask is a constant, not differentiated)."""
    logits = a.data.copy()
    if mask is not None:
        logits = np.where(mask > 0, logits, -1e30)
    logits -= logits.max(axis=-1, keepdims=True)
    exp = np.exp(logits)
    value = exp / exp.sum(axis=-1, keepdims=True)
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * value).sum(axis=-1, keepdims=True)
            a._accumulate(value * (grad - dot))

    out._backward = backward
    return out


# ----- probabilities and loss ------------------------------------------------


def scatter_probs(weights: Tensor, indices: np.ndarray, size: int) -> Tensor:
    """Scatter-add attention weights onto vocabulary slots.

    weights (B, L), indices (B, L) of vocab ids → (B, size).  The copy
    mechanism uses this to turn attention over source tokens into a
    distribution over the output vocabulary.
    """
    indices = np.asarray(indices, dtype=np.int64)
    batch, length = weights.data.shape
    value = np.zeros((batch, size))
    rows = np.repeat(np.arange(batch), length)
    np.add.at(value, (rows, indices.reshape(-1)), weights.data.reshape(-1))
    out = Tensor(value, parents=(weights,))

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            weights._accumulate(grad[rows, indices.reshape(-1)].reshape(batch, length))

    out._backward = backward
    return out


def gather_cols(a: Tensor, indices: np.ndarray) -> Tensor:
    """Pick one column per row: a (B, V), indices (B,) → (B,)."""
    indices = np.asarray(indices, dtype=np.int64)
    rows = np.arange(a.data.shape[0])
    out = Tensor(a.data[rows, indices], parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            full[rows, indices] = grad
            a._accumulate(full)

    out._backward = backward
    return out


def log(a: Tensor, eps: float = 1e-12) -> Tensor:
    value = np.log(a.data + eps)
    out = Tensor(value, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / (a.data + eps))

    out._backward = backward
    return out


def masked_mean(a: Tensor, mask: np.ndarray) -> Tensor:
    """Mean of the elements where ``mask == 1`` (mask is constant)."""
    mask = np.asarray(mask, dtype=np.float64)
    total = max(mask.sum(), 1.0)
    out = Tensor((a.data * mask).sum() / total, parents=(a,))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask / total)

    out._backward = backward
    return out


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Fused log-softmax + NLL per row: logits (B, V), targets (B,) → (B,)."""
    targets = np.asarray(targets, dtype=np.int64)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    rows = np.arange(logits.data.shape[0])
    out = Tensor(-log_probs[rows, targets], parents=(logits,))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            probs = np.exp(log_probs)
            full = probs * grad[:, None]
            full[rows, targets] -= grad
            logits._accumulate(full)

    out._backward = backward
    return out
