"""Training loop for seq2vis: minibatch Adam with early stopping on the
validation loss (the paper uses patience 5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.neural.data import Seq2VisDataset
from repro.neural.model import Seq2Vis
from repro.neural.optimizer import Adam


@dataclass
class TrainConfig:
    """Optimization hyperparameters (paper defaults where given)."""

    epochs: int = 20
    batch_size: int = 16
    lr: float = 5e-3
    clip_norm: float = 5.0
    patience: int = 5
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Loss curves and the best-validation epoch."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1


def evaluate_loss(model: Seq2Vis, dataset: Seq2VisDataset, batch_size: int = 32) -> float:
    """Mean loss over *dataset* (no gradient updates)."""
    if not dataset.examples:
        return 0.0
    total = 0.0
    count = 0
    for batch in dataset.batches(batch_size):
        loss = model.loss(batch)
        weight = batch.tgt_mask.sum()
        total += loss.item() * weight
        count += weight
    return total / max(count, 1)


def train_model(
    model: Seq2Vis,
    train_set: Seq2VisDataset,
    val_set: Optional[Seq2VisDataset] = None,
    config: Optional[TrainConfig] = None,
) -> TrainResult:
    """Train *model*; restores the best-validation weights on return."""
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.lr, clip_norm=config.clip_norm)
    result = TrainResult()
    best_val = float("inf")
    best_state: Optional[Dict[str, np.ndarray]] = None
    stale = 0
    for epoch in range(config.epochs):
        epoch_loss = 0.0
        batches = train_set.batches(config.batch_size, rng)
        for batch in batches:
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        epoch_loss /= max(len(batches), 1)
        result.train_losses.append(epoch_loss)
        if val_set is not None and val_set.examples:
            val_loss = evaluate_loss(model, val_set, config.batch_size)
            result.val_losses.append(val_loss)
            if config.verbose:
                print(f"epoch {epoch}: train={epoch_loss:.4f} val={val_loss:.4f}")
            if val_loss < best_val - 1e-4:
                best_val = val_loss
                best_state = model.state_dict()
                result.best_epoch = epoch
                stale = 0
            else:
                stale += 1
                if stale >= config.patience:
                    break
        elif config.verbose:
            print(f"epoch {epoch}: train={epoch_loss:.4f}")
    if best_state is not None:
        model.load_state_dict(best_state)
    return result
