"""Training loop for seq2vis: minibatch Adam with early stopping on the
validation loss (the paper uses patience 5).

The loop is the integration point of the fast-engine pieces:

* ``TrainConfig.dtype`` applies the dtype policy (default float32; the
  model is cast once, before the optimizer is built, so the flat Adam
  buffers alias float32 storage).
* ``TrainConfig.fused`` selects the fused kernels + flat-buffer
  :class:`~repro.neural.optimizer.Adam` (default) or the seed-faithful
  reference engine (op-by-op LSTM graph +
  :class:`~repro.neural.optimizer.ReferenceAdam`), which the training
  benchmark uses as its baseline.
* Epoch train loss is **token-weighted** (total masked token loss over
  total target tokens), the same statistic ``evaluate_loss`` reports,
  so train and validation curves are directly comparable.
* ``profile=`` threads a :class:`repro.perf.TrainProfiler` through the
  loop (per-step wall time + tokens, per-epoch breakdown); without one
  the loop takes no clock readings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.neural import autograd as ag
from repro.neural.data import Seq2VisDataset
from repro.neural.dtype import DEFAULT_TRAIN_DTYPE
from repro.neural.model import Seq2Vis
from repro.neural.optimizer import Adam, ReferenceAdam
from repro.obs.trace import Tracer, traced
from repro.perf.train import TrainProfiler


@dataclass
class TrainConfig:
    """Optimization hyperparameters (paper defaults where given)."""

    epochs: int = 20
    batch_size: int = 16
    lr: float = 5e-3
    clip_norm: float = 5.0
    patience: int = 5
    seed: int = 0
    verbose: bool = False
    #: training dtype policy; float64 reproduces the seed numerics
    dtype: str = DEFAULT_TRAIN_DTYPE
    #: fused kernels + flat Adam (True) vs the seed reference engine
    fused: bool = True


@dataclass
class TrainResult:
    """Loss curves and the best-validation epoch."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1
    #: the optimizer used (its hyperparams are persisted by save_model)
    optimizer: Optional[object] = None


def evaluate_loss(model: Seq2Vis, dataset: Seq2VisDataset, batch_size: int = 32) -> float:
    """Token-weighted mean loss over *dataset* (no gradient updates).

    Runs under ``no_grad`` — no backward graph is recorded, so
    validation passes cost forward time and forward memory only.
    """
    if not dataset.examples:
        return 0.0
    total = 0.0
    count = 0
    with ag.no_grad():
        for batch in dataset.batches(batch_size):
            loss = model.loss(batch)
            weight = batch.tgt_mask.sum()
            total += loss.item() * weight
            count += weight
    return total / max(count, 1)


def train_model(
    model: Seq2Vis,
    train_set: Seq2VisDataset,
    val_set: Optional[Seq2VisDataset] = None,
    config: Optional[TrainConfig] = None,
    profile: Optional[TrainProfiler] = None,
    tracer: Optional[Tracer] = None,
) -> TrainResult:
    """Train *model*; restores the best-validation weights on return.

    ``profile=`` aggregates step timings into a
    :class:`~repro.perf.TrainProfiler`; ``tracer=`` additionally exports
    the run as a span tree (``train`` → per-``epoch`` spans → per-``step``
    and ``evaluate`` spans) carrying the same loss/token numbers, so one
    training run can be inspected with ``repro trace summarize``.
    Neither changes the optimization trajectory.
    """
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    model.to_dtype(config.dtype)
    model.set_fused(config.fused)
    optimizer_cls = Adam if config.fused else ReferenceAdam
    optimizer = optimizer_cls(
        model.parameters(), lr=config.lr, clip_norm=config.clip_norm
    )
    result = TrainResult(optimizer=optimizer)
    best_val = float("inf")
    best_state: Optional[Dict[str, np.ndarray]] = None
    stale = 0
    clock = time.perf_counter
    with traced(
        tracer, "train",
        epochs=config.epochs, batch_size=config.batch_size, lr=config.lr,
        dtype=config.dtype, fused=config.fused, examples=len(train_set.examples),
    ) as train_span:
        for epoch in range(config.epochs):
            epoch_loss = 0.0
            epoch_tokens = 0
            epoch_start = clock() if profile is not None else 0.0
            batches = train_set.batches(config.batch_size, rng)
            with traced(tracer, "epoch", epoch=epoch) as epoch_span:
                for batch in batches:
                    step_start = clock() if profile is not None else 0.0
                    with traced(tracer, "step"):
                        optimizer.zero_grad()
                        loss = model.loss(batch)
                        loss.backward(free_graph=config.fused)
                        optimizer.step()
                    tokens = int(batch.tgt_mask.sum())
                    epoch_loss += loss.item() * tokens
                    epoch_tokens += tokens
                    if profile is not None:
                        profile.observe_step(clock() - step_start, tokens)
                epoch_loss /= max(epoch_tokens, 1)
                result.train_losses.append(epoch_loss)
                val_loss: Optional[float] = None
                if val_set is not None and val_set.examples:
                    with traced(tracer, "evaluate"):
                        val_loss = evaluate_loss(
                            model, val_set, config.batch_size
                        )
                    result.val_losses.append(val_loss)
                if profile is not None:
                    epoch_seconds = clock() - epoch_start
                    profile.observe_epoch(
                        epoch,
                        epoch_seconds,
                        epoch_tokens,
                        len(batches),
                        epoch_loss,
                        val_loss,
                    )
                    epoch_span.set_attribute(
                        "tokens_per_sec",
                        epoch_tokens / epoch_seconds if epoch_seconds > 0 else 0.0,
                    )
                epoch_span.set_attributes(
                    {
                        "tokens": epoch_tokens,
                        "steps": len(batches),
                        "train_loss": epoch_loss,
                        "val_loss": val_loss,
                    }
                )
            if val_loss is not None:
                if config.verbose:
                    print(
                        f"epoch {epoch}: train={epoch_loss:.4f} val={val_loss:.4f}"
                    )
                if val_loss < best_val - 1e-4:
                    best_val = val_loss
                    best_state = model.state_dict()
                    result.best_epoch = epoch
                    stale = 0
                else:
                    stale += 1
                    if stale >= config.patience:
                        break
            elif config.verbose:
                print(f"epoch {epoch}: train={epoch_loss:.4f}")
        train_span.set_attributes(
            {"best_epoch": result.best_epoch,
             "epochs_run": len(result.train_losses)}
        )
    if best_state is not None:
        model.load_state_dict(best_state)
    return result
