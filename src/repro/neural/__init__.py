"""seq2vis: neural NL→VIS translation (paper Section 4), in pure numpy.

No deep-learning framework is available offline, so this package carries
its own substrate: a tape-based reverse-mode autograd engine
(:mod:`autograd`), LSTM/embedding/linear layers (:mod:`layers`), Luong
attention (:mod:`attention`), and Adam with gradient clipping
(:mod:`optimizer`).  On top sit the three seq2vis variants the paper
evaluates — basic seq2seq, +attention, +copying — plus the dataset
encoding (NL ++ schema tokens → masked VIS tokens), a trainer with early
stopping, greedy decoding, and the value-slot-filling heuristic.
"""

from repro.neural.autograd import Tensor, no_grad
from repro.neural.data import Seq2VisDataset, build_dataset
from repro.neural.dtype import (
    DEFAULT_TRAIN_DTYPE,
    get_default_dtype,
    set_default_dtype,
    using_dtype,
)
from repro.neural.model import BeamCandidate, EncodedBatch, Seq2Vis
from repro.neural.optimizer import Adam, ReferenceAdam
from repro.neural.quantize import (
    PRECISIONS,
    QuantizedParameter,
    model_precision,
    quantize_model,
    quantized_copy,
)
from repro.neural.shared import (
    SharedManifest,
    SharedModel,
    SharedWeightsError,
    share_model,
    shared_segments_report,
)
from repro.neural.slots import fill_value_slots
from repro.neural.trainer import TrainConfig, train_model

__all__ = [
    "Adam",
    "BeamCandidate",
    "DEFAULT_TRAIN_DTYPE",
    "EncodedBatch",
    "PRECISIONS",
    "QuantizedParameter",
    "ReferenceAdam",
    "Seq2Vis",
    "Seq2VisDataset",
    "SharedManifest",
    "SharedModel",
    "SharedWeightsError",
    "Tensor",
    "TrainConfig",
    "build_dataset",
    "fill_value_slots",
    "get_default_dtype",
    "model_precision",
    "no_grad",
    "quantize_model",
    "quantized_copy",
    "set_default_dtype",
    "share_model",
    "shared_segments_report",
    "train_model",
    "using_dtype",
]
