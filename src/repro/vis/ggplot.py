"""VIS tree → ggplot2 (R) source code.

Section 2.6 of the paper plans support for more vis languages beyond
Vega-Lite and ECharts, pointing at ggplot2 translators.  This backend
emits a complete, runnable R script: a ``data.frame`` literal holding the
executed chart data plus the ``ggplot`` grammar-of-graphics pipeline for
the chart type.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grammar.ast_nodes import VisQuery
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database
from repro.vis.data import VisData, render_data


def to_ggplot(
    vis: VisQuery,
    database: Database,
    cache: Optional[ExecutionCache] = None,
) -> str:
    """Compile *vis* to a runnable ggplot2 R script."""
    data = render_data(vis, database, cache=cache)
    lines: List[str] = ["library(ggplot2)", ""]
    lines.extend(_data_frame(data))
    lines.append("")
    lines.extend(_plot_call(vis, data))
    return "\n".join(lines) + "\n"


def _r_name(label: str) -> str:
    """An R-safe column name."""
    out = label.replace(".", "_").replace("(", "_").replace(")", "").replace("*", "all")
    return out.strip("_") or "value"


def _r_literal(value: object) -> str:
    if value is None:
        return "NA"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _data_frame(data: VisData) -> List[str]:
    names = [_r_name(data.x_name), _r_name(data.y_name)]
    if data.has_color:
        names.append(_r_name(data.color_name))
    columns = []
    for index, name in enumerate(names):
        values = ", ".join(_r_literal(row[index]) for row in data.rows)
        columns.append(f"  {name} = c({values})")
    return ["df <- data.frame(", ",\n".join(columns), ")"]


def _plot_call(vis: VisQuery, data: VisData) -> List[str]:
    x = _r_name(data.x_name)
    y = _r_name(data.y_name)
    color = _r_name(data.color_name) if data.has_color else None

    if vis.vis_type == "pie":
        # The canonical ggplot2 pie: stacked bar in polar coordinates.
        return [
            f'p <- ggplot(df, aes(x = "", y = {y}, fill = {x})) +',
            '  geom_col(width = 1) +',
            '  coord_polar(theta = "y")',
            "print(p)",
        ]

    aes_parts = [f"x = {x}", f"y = {y}"]
    if color is not None:
        channel = "fill" if vis.vis_type == "stacked bar" else "colour"
        aes_parts.append(f"{channel} = {color}")
    aes = ", ".join(aes_parts)

    geoms = {
        "bar": 'geom_col()',
        "stacked bar": 'geom_col()',
        "line": "geom_line(group = 1)",
        "grouping line": f"geom_line(aes(group = {color}))",
        "scatter": "geom_point()",
        "grouping scatter": "geom_point()",
    }
    geom = geoms[vis.vis_type]
    return [f"p <- ggplot(df, aes({aes})) +", f"  {geom}", "print(p)"]
