"""Chart-level data extraction shared by the VIS backends.

A :class:`VisData` is the rendered form of a VIS tree: named axes with
channel types (nominal/temporal/quantitative, following the Vega-Lite
vocabulary) plus the executed rows in select order.  Two VIS queries are
*result-equivalent* (the paper's result matching metric) when their
``VisData.canonical()`` forms match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.grammar.ast_nodes import Attribute, VisQuery
from repro.storage.executor import ExecutionCache, Executor
from repro.storage.schema import Database


@dataclass
class VisData:
    """Executed chart data with axis metadata."""

    vis_type: str
    x_name: str
    y_name: str
    x_channel: str
    y_channel: str
    rows: List[tuple]
    color_name: Optional[str] = None
    color_channel: Optional[str] = None

    @property
    def has_color(self) -> bool:
        """True for three-channel charts (stacked/grouping types)."""
        return self.color_name is not None

    def series_names(self) -> List[str]:
        """Distinct color/series values, in first-appearance order."""
        if not self.has_color:
            return []
        return list(dict.fromkeys(str(row[2]) for row in self.rows))

    def x_values(self) -> List[object]:
        """Distinct x values in first-appearance order."""
        return list(dict.fromkeys(row[0] for row in self.rows))

    def pivot(self) -> Tuple[List[object], dict]:
        """Pivot 3-column data into {series: [y per x]}, filling gaps
        with ``None`` — the layout stacked/grouped charts need."""
        xs = self.x_values()
        index = {x: i for i, x in enumerate(xs)}
        table: dict = {}
        for row in self.rows:
            series = str(row[2]) if self.has_color else self.y_name
            column = table.setdefault(series, [None] * len(xs))
            column[index[row[0]]] = row[1]
        return xs, table

    def canonical(self) -> tuple:
        """Row-order-insensitive form for result matching."""
        return (
            self.vis_type,
            tuple(sorted((tuple(str(v) for v in row) for row in self.rows))),
        )


def _channel(attr: Attribute, database: Database) -> str:
    if attr.is_aggregated:
        return "quantitative"
    ctype = database.column_type(attr.table, attr.column)
    return {"C": "nominal", "T": "temporal", "Q": "quantitative"}[ctype]


def render_data(
    vis: VisQuery,
    database: Database,
    cache: Optional[ExecutionCache] = None,
) -> VisData:
    """Execute *vis* and package the chart data.

    Binned temporal axes come back as bin labels (strings), so their
    channel is reported as nominal-ordinal rather than temporal.  An
    optional :class:`ExecutionCache` memoizes the execution across calls
    (the inference server layers its response cache over this one).
    """
    result = Executor(database, cache=cache).execute(vis)
    core = vis.primary_core
    select = core.select
    x_attr, y_attr = select[0], select[1]
    binned_columns = {
        group.attr.qualified_name for group in core.groups if group.kind == "binning"
    }
    x_channel = _channel(x_attr, database)
    if x_attr.qualified_name in binned_columns:
        x_channel = "ordinal"
    data = VisData(
        vis_type=vis.vis_type,
        x_name=str(x_attr),
        y_name=str(y_attr),
        x_channel=x_channel,
        y_channel=_channel(y_attr, database),
        rows=list(result.rows),
    )
    if len(select) > 2:
        data.color_name = str(select[2])
        data.color_channel = _channel(select[2], database)
    return data
