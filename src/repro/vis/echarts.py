"""VIS tree → ECharts option object.

ECharts wants pivoted series rather than long-form rows, so 3-variable
charts (stacked bar, grouping line/scatter) are pivoted into one series
per color value; pies become the ``{name, value}`` list ECharts expects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.grammar.ast_nodes import VisQuery
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database
from repro.vis.data import render_data


def to_echarts(
    vis: VisQuery,
    database: Database,
    cache: Optional[ExecutionCache] = None,
) -> Dict:
    """Compile *vis* to a renderable ECharts option dict."""
    data = render_data(vis, database, cache=cache)

    if vis.vis_type == "pie":
        return {
            "title": {"text": f"{data.y_name} by {data.x_name}"},
            "tooltip": {"trigger": "item"},
            "series": [
                {
                    "type": "pie",
                    "radius": "60%",
                    "data": [
                        {"name": str(row[0]), "value": row[1]} for row in data.rows
                    ],
                }
            ],
        }

    if vis.vis_type == "scatter":
        return {
            "xAxis": {"type": "value", "name": data.x_name},
            "yAxis": {"type": "value", "name": data.y_name},
            "series": [
                {"type": "scatter", "data": [[row[0], row[1]] for row in data.rows]}
            ],
        }

    if vis.vis_type == "grouping scatter":
        xs, table = data.pivot()
        series = []
        by_series: Dict[str, List] = {}
        for row in data.rows:
            by_series.setdefault(str(row[2]), []).append([row[0], row[1]])
        for name, points in by_series.items():
            series.append({"type": "scatter", "name": name, "data": points})
        return {
            "xAxis": {"type": "value", "name": data.x_name},
            "yAxis": {"type": "value", "name": data.y_name},
            "legend": {"data": list(by_series)},
            "series": series,
        }

    # Category-axis charts: bar, stacked bar, line, grouping line.
    chart_kind = "bar" if vis.vis_type in ("bar", "stacked bar") else "line"
    if data.has_color:
        xs, table = data.pivot()
        series = [
            {
                "type": chart_kind,
                "name": name,
                "data": values,
                **({"stack": "total"} if vis.vis_type == "stacked bar" else {}),
            }
            for name, values in table.items()
        ]
        legend = list(table)
    else:
        xs = [row[0] for row in data.rows]
        series = [{"type": chart_kind, "data": [row[1] for row in data.rows]}]
        legend = []
    option: Dict = {
        "xAxis": {"type": "category", "data": [str(x) for x in xs], "name": data.x_name},
        "yAxis": {"type": "value", "name": data.y_name},
        "series": series,
    }
    if legend:
        option["legend"] = {"data": legend}
    return option
