"""VIS backends: from VIS trees to renderable specifications.

Section 2.6 of the paper hard-codes the mapping from a vis tree to each
target language (~240 LoC for Vega-Lite, ~320 for ECharts).  This package
does the same: :func:`to_vega_lite` and :func:`to_echarts` execute the
tree's data part against a database and emit a complete, renderable spec
in the respective JSON dialect; :func:`render_data` exposes the
intermediate chart data (used by the result-matching metric).
"""

from repro.vis.ascii_chart import to_ascii
from repro.vis.data import VisData, render_data
from repro.vis.echarts import to_echarts
from repro.vis.ggplot import to_ggplot
from repro.vis.plotly_backend import to_plotly
from repro.vis.vega_lite import to_vega_lite

__all__ = [
    "VisData",
    "render_data",
    "to_ascii",
    "to_echarts",
    "to_ggplot",
    "to_plotly",
    "to_vega_lite",
]
