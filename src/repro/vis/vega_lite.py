"""VIS tree → Vega-Lite specification.

Emits a complete, self-contained Vega-Lite v5 spec: the data part of the
tree is executed against the database and inlined as ``data.values`` (the
same shape nvBench ships), and the visualize part maps to mark + encoding
channels.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.grammar.ast_nodes import VisQuery
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database
from repro.vis.data import VisData, render_data

SCHEMA_URL = "https://vega.github.io/schema/vega-lite/v5.json"

_MARKS = {
    "bar": "bar",
    "pie": "arc",
    "line": "line",
    "scatter": "point",
    "stacked bar": "bar",
    "grouping line": "line",
    "grouping scatter": "point",
}


def to_vega_lite(
    vis: VisQuery,
    database: Database,
    cache: Optional[ExecutionCache] = None,
) -> Dict:
    """Compile *vis* to a renderable Vega-Lite spec dict."""
    data = render_data(vis, database, cache=cache)
    spec: Dict = {
        "$schema": SCHEMA_URL,
        "mark": _MARKS[vis.vis_type],
        "data": {"values": _values(data)},
    }
    if vis.vis_type == "pie":
        spec["encoding"] = {
            "theta": {"field": _field(data.y_name), "type": "quantitative"},
            "color": {"field": _field(data.x_name), "type": "nominal"},
        }
        return spec

    encoding: Dict = {
        "x": {"field": _field(data.x_name), "type": data.x_channel},
        "y": {"field": _field(data.y_name), "type": data.y_channel},
    }
    core = vis.primary_core
    if core.order is not None:
        target = core.order.attr
        direction = "" if core.order.direction == "asc" else "-"
        if target.qualified_name == core.select[0].qualified_name and (
            target.agg == core.select[0].agg or target.agg is None
        ):
            encoding["x"]["sort"] = f"{direction}x"
        else:
            encoding["x"]["sort"] = f"{direction}y"
    if data.has_color:
        encoding["color"] = {
            "field": _field(data.color_name),
            "type": data.color_channel,
        }
        if vis.vis_type == "stacked bar":
            encoding["y"]["stack"] = "zero"
    spec["encoding"] = encoding
    return spec


def _field(label: str) -> str:
    """Vega-Lite field names: dots are path separators, so flatten."""
    return label.replace(".", "_").replace("(", "_").replace(")", "")


def _values(data: VisData) -> List[Dict]:
    names = [_field(data.x_name), _field(data.y_name)]
    if data.has_color:
        names.append(_field(data.color_name))
    return [dict(zip(names, row)) for row in data.rows]
