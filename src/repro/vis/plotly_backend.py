"""VIS tree → Plotly figure JSON.

Another backend in the Section 2.6 family: emits the ``{"data": [...],
"layout": {...}}`` dict that ``plotly.io.from_json`` (or Plotly.js)
renders directly.  Three-channel charts become one trace per series.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.grammar.ast_nodes import VisQuery
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database
from repro.vis.data import render_data

_TRACE_TYPES = {
    "bar": ("bar", None),
    "stacked bar": ("bar", "stack"),
    "line": ("scatter", None),
    "grouping line": ("scatter", None),
    "scatter": ("scatter", None),
    "grouping scatter": ("scatter", None),
}

_MODES = {
    "line": "lines+markers",
    "grouping line": "lines+markers",
    "scatter": "markers",
    "grouping scatter": "markers",
}


def to_plotly(
    vis: VisQuery,
    database: Database,
    cache: Optional[ExecutionCache] = None,
) -> Dict:
    """Compile *vis* to a Plotly figure dict."""
    data = render_data(vis, database, cache=cache)

    if vis.vis_type == "pie":
        return {
            "data": [
                {
                    "type": "pie",
                    "labels": [str(row[0]) for row in data.rows],
                    "values": [row[1] for row in data.rows],
                }
            ],
            "layout": {"title": {"text": f"{data.y_name} by {data.x_name}"}},
        }

    trace_type, barmode = _TRACE_TYPES[vis.vis_type]
    mode = _MODES.get(vis.vis_type)

    traces: List[Dict] = []
    if data.has_color:
        by_series: Dict[str, List] = {}
        for row in data.rows:
            by_series.setdefault(str(row[2]), []).append(row)
        for name, rows in by_series.items():
            trace = {
                "type": trace_type,
                "name": name,
                "x": [row[0] for row in rows],
                "y": [row[1] for row in rows],
            }
            if mode:
                trace["mode"] = mode
            traces.append(trace)
    else:
        trace = {
            "type": trace_type,
            "x": [row[0] for row in data.rows],
            "y": [row[1] for row in data.rows],
        }
        if mode:
            trace["mode"] = mode
        traces.append(trace)

    layout: Dict = {
        "xaxis": {"title": {"text": data.x_name}},
        "yaxis": {"title": {"text": data.y_name}},
    }
    if barmode:
        layout["barmode"] = barmode
    return {"data": traces, "layout": layout}
