"""VIS tree → ASCII chart for terminals.

Not one of the paper's targets, but the natural backend for a CLI-first
reproduction: examples and the ``translate`` command can show the chart
without a browser.  Bars render as scaled rows of ``█``; lines and
scatters as a dot grid; pies as a proportion table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grammar.ast_nodes import VisQuery
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database
from repro.vis.data import VisData, render_data

BAR_CHAR = "█"
DOT_CHAR = "*"


def to_ascii(
    vis: VisQuery,
    database: Database,
    width: int = 50,
    height: int = 12,
    cache: Optional[ExecutionCache] = None,
) -> str:
    """Render *vis* as monospaced text, ``width`` cells at most."""
    data = render_data(vis, database, cache=cache)
    if vis.vis_type in ("bar", "stacked bar"):
        return _bars(data, width)
    if vis.vis_type == "pie":
        return _pie(data, width)
    return _grid(data, width, height)


def _numeric(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _bars(data: VisData, width: int) -> str:
    if data.has_color:
        # Stacked bars: sum the series per x for the bar length and list
        # the per-series breakdown after the bar.
        xs, table = data.pivot()
        totals = {
            x: sum(_numeric(column[i]) for column in table.values())
            for i, x in enumerate(xs)
        }
        rows = [(x, totals[x]) for x in xs]
    else:
        rows = [(row[0], _numeric(row[1])) for row in data.rows]
    if not rows:
        return "(empty chart)"
    peak = max((value for _, value in rows), default=0.0) or 1.0
    label_width = min(max(len(str(label)) for label, _ in rows), 24)
    lines = [f"{data.y_name} by {data.x_name}"]
    for label, value in rows:
        bar = BAR_CHAR * max(int(value / peak * width), 0)
        lines.append(f"{str(label)[:label_width]:>{label_width}} | {bar} {value:g}")
    return "\n".join(lines)


def _pie(data: VisData, width: int) -> str:
    total = sum(_numeric(row[1]) for row in data.rows) or 1.0
    lines = [f"{data.y_name} by {data.x_name} (proportions)"]
    for row in data.rows:
        value = _numeric(row[1])
        share = value / total
        bar = BAR_CHAR * max(int(share * width), 0)
        lines.append(f"{str(row[0])[:20]:>20} | {bar} {share:.1%}")
    return "\n".join(lines)


def _grid(data: VisData, width: int, height: int) -> str:
    points = [
        (_numeric(_order_index(data, row[0])), _numeric(row[1]))
        for row in data.rows
    ]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = DOT_CHAR
    lines = [f"{data.y_name} vs {data.x_name}"]
    lines.extend("|" + "".join(line) for line in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)


def _order_index(data: VisData, x_value: object) -> float:
    """Numeric position of an x value (index for categorical axes)."""
    if isinstance(x_value, (int, float)):
        return float(x_value)
    return float(data.x_values().index(x_value))
