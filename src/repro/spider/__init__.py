"""Synthetic Spider-like NL2SQL benchmark substrate.

The real Spider dataset (Yu et al., 2018) is not available offline, so
this package generates a corpus with matched *structure*: cross-domain
multi-table databases with typed columns and foreign keys, plus (NL, SQL)
pairs spanning Spider's four hardness levels, where the NL text is
clause-aligned with the SQL.  The nl2sql-to-nl2vis synthesizer only
consumes this structure, so it exercises identical code paths.

Also provides the miniature TPC-H/TPC-DS schemas used by the Figure 7
filtering demonstration and the COVID-19 table used by the Figure 19
case study.
"""

from repro.spider.corpus import NLSQLPair, SpiderCorpus, build_spider_corpus
from repro.spider.covid import build_covid_database
from repro.spider.datagen import build_database
from repro.spider.tpc import build_tpcds_database, build_tpch_database
from repro.spider.vocab import DOMAINS, DomainSpec

__all__ = [
    "DOMAINS",
    "DomainSpec",
    "NLSQLPair",
    "SpiderCorpus",
    "build_covid_database",
    "build_database",
    "build_spider_corpus",
    "build_tpcds_database",
    "build_tpch_database",
]
