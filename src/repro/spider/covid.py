"""Synthetic COVID-19 table for the Figure 19 case study.

Same schema as the paper's case study — (Date, Country, Confirmed,
Active Cases, Recovered, Deaths, Daily Cases) — populated with a smooth
synthetic epidemic curve per country so trend charts look plausible.
"""

from __future__ import annotations

import numpy as np

from repro.storage.schema import Column, Database, Table

COUNTRIES = (
    "United States",
    "India",
    "Brazil",
    "Russia",
    "France",
    "Italy",
    "Spain",
    "Germany",
)


def build_covid_database(seed: int = 19, days: int = 240) -> Database:
    """Build the COVID-19 database starting at 2020-01-22."""
    rng = np.random.default_rng(seed)
    db = Database(name="covid_19", domain="health")
    table = Table(
        "covid_19",
        (
            Column("record_id", "C"),
            Column("date", "T"),
            Column("country", "C"),
            Column("confirmed", "Q"),
            Column("active_cases", "Q"),
            Column("recovered", "Q"),
            Column("deaths", "Q"),
            Column("daily_cases", "Q"),
        ),
    )
    start = np.datetime64("2020-01-22")
    record = 0
    for country_index, country in enumerate(COUNTRIES):
        # A logistic growth curve with country-specific scale and onset.
        scale = float(rng.uniform(2e5, 4e6))
        onset = float(rng.uniform(30, 80))
        rate = float(rng.uniform(0.06, 0.12))
        confirmed_prev = 0
        for day in range(days):
            confirmed = int(scale / (1.0 + np.exp(-rate * (day - onset))))
            daily = max(confirmed - confirmed_prev, 0)
            confirmed_prev = confirmed
            deaths = int(confirmed * float(rng.uniform(0.015, 0.03)))
            recovered = int(confirmed * float(rng.uniform(0.5, 0.8)))
            active = max(confirmed - deaths - recovered, 0)
            date = str(start + np.timedelta64(day, "D"))
            table.insert(
                (record, date, country, confirmed, active, recovered, deaths, daily)
            )
            record += 1
    db.add_table(table)
    return db
