"""Domain catalog for the synthetic Spider-like corpus.

Spider covers 138 domains; nvBench retains 105 after pruning, with the
top-5 by table count being Sport, Customer, School, Shop, and Student
(paper Table 2).  This catalog defines 105 domains, each as a set of
entity tables drawn from a small library of *archetypes*; the top-5 carry
a weight that gives them more databases, matching the paper's skew.

Archetypes bundle plausible attribute pools per entity kind:

* ``PERSON``  — people with demographics and money-like columns
* ``ORG``     — organizations with founding dates and size metrics
* ``EVENT``   — dated occurrences with scores/attendance
* ``ITEM``    — catalog objects with prices and categories
* ``PLACE``   — locations with capacities and areas
* ``TXN``     — transactions linking entities with amounts and dates
* ``MEDIA``   — titles with ratings and release dates
* ``RECORD``  — measurements/logs with values and timestamps
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: attribute pool entries: (column name, column type, value generator kind)
#: generator kinds are interpreted by :mod:`repro.spider.datagen`.
ARCHETYPES: Dict[str, List[Tuple[str, str, str]]] = {
    "PERSON": [
        ("name", "C", "person_name"),
        ("age", "Q", "age"),
        ("salary", "Q", "money"),
        ("city", "C", "city"),
        ("gender", "C", "gender"),
        ("rank", "Q", "small_int"),
        ("join_date", "T", "date"),
        ("email", "C", "email"),
        ("height", "Q", "height"),
        ("years_experience", "Q", "small_int"),
    ],
    "ORG": [
        ("name", "C", "org_name"),
        ("founded_year", "T", "year"),
        ("city", "C", "city"),
        ("budget", "Q", "big_money"),
        ("num_employees", "Q", "count_mid"),
        ("category", "C", "org_category"),
        ("revenue", "Q", "big_money"),
        ("rating", "Q", "rating"),
    ],
    "EVENT": [
        ("name", "C", "event_name"),
        ("event_date", "T", "date"),
        ("score", "Q", "score"),
        ("attendance", "Q", "count_big"),
        ("location", "C", "city"),
        ("result", "C", "result"),
        ("duration", "Q", "duration"),
        ("season", "T", "year"),
    ],
    "ITEM": [
        ("name", "C", "item_name"),
        ("price", "Q", "money"),
        ("category", "C", "item_category"),
        ("stock", "Q", "count_mid"),
        ("release_date", "T", "date"),
        ("weight", "Q", "weight"),
        ("rating", "Q", "rating"),
        ("manufacturer", "C", "org_name"),
    ],
    "PLACE": [
        ("name", "C", "place_name"),
        ("city", "C", "city"),
        ("capacity", "Q", "count_big"),
        ("area", "Q", "area"),
        ("opened_year", "T", "year"),
        ("kind", "C", "place_kind"),
        ("latitude", "Q", "latitude"),
    ],
    "TXN": [
        ("amount", "Q", "money"),
        ("txn_date", "T", "datetime"),
        ("status", "C", "status"),
        ("quantity", "Q", "small_int"),
        ("method", "C", "pay_method"),
        ("discount", "Q", "rate"),
    ],
    "MEDIA": [
        ("title", "C", "title"),
        ("release_date", "T", "date"),
        ("rating", "Q", "rating"),
        ("duration", "Q", "duration"),
        ("genre", "C", "genre"),
        ("language", "C", "language"),
        ("views", "Q", "count_big"),
    ],
    "RECORD": [
        ("value", "Q", "measure"),
        ("recorded_at", "T", "datetime"),
        ("level", "C", "level"),
        ("source", "C", "org_name"),
        ("reading", "Q", "measure"),
    ],
}


@dataclass(frozen=True)
class DomainSpec:
    """One domain: its name, entity tables, and a sampling weight.

    ``tables`` maps a table noun to its archetype; the generator adds a
    primary key, samples a subset of the archetype's attribute pool, and
    wires child tables to parents with foreign keys.
    """

    name: str
    tables: Tuple[Tuple[str, str], ...]
    weight: int = 1


def _domain(name: str, tables: Sequence[Tuple[str, str]], weight: int = 1) -> DomainSpec:
    return DomainSpec(name=name, tables=tuple(tables), weight=weight)


DOMAINS: Tuple[DomainSpec, ...] = (
    # --- top-5 heavy domains (paper Table 2) ---------------------------
    _domain("sport", [("team", "ORG"), ("player", "PERSON"), ("match", "EVENT"), ("stadium", "PLACE"), ("coach", "PERSON")], weight=8),
    _domain("customer", [("customer", "PERSON"), ("account", "TXN"), ("purchase", "TXN"), ("complaint", "RECORD")], weight=7),
    _domain("school", [("school", "ORG"), ("teacher", "PERSON"), ("class", "EVENT"), ("campus", "PLACE")], weight=6),
    _domain("shop", [("shop", "ORG"), ("product", "ITEM"), ("sale", "TXN"), ("supplier", "ORG")], weight=5),
    _domain("student", [("student", "PERSON"), ("course", "ITEM"), ("enrollment", "TXN"), ("dorm", "PLACE")], weight=4),
    # --- remaining 100 domains -----------------------------------------
    _domain("college", [("faculty", "PERSON"), ("department", "ORG"), ("lecture", "EVENT")]),
    _domain("hospital", [("doctor", "PERSON"), ("patient", "PERSON"), ("appointment", "EVENT"), ("ward", "PLACE")]),
    _domain("flight", [("flight", "EVENT"), ("airport", "PLACE"), ("airline", "ORG"), ("booking", "TXN")]),
    _domain("club", [("club", "ORG"), ("member", "PERSON"), ("activity", "EVENT")]),
    _domain("tv_show", [("show", "MEDIA"), ("episode", "MEDIA"), ("channel", "ORG")]),
    _domain("government", [("agency", "ORG"), ("official", "PERSON"), ("policy", "RECORD")]),
    _domain("movie", [("movie", "MEDIA"), ("director", "PERSON"), ("cinema", "PLACE")]),
    _domain("music", [("album", "MEDIA"), ("artist", "PERSON"), ("concert", "EVENT")]),
    _domain("restaurant", [("restaurant", "ORG"), ("dish", "ITEM"), ("reservation", "TXN")]),
    _domain("library", [("book", "MEDIA"), ("borrower", "PERSON"), ("loan", "TXN")]),
    _domain("bank", [("branch", "ORG"), ("client", "PERSON"), ("transaction", "TXN")]),
    _domain("insurance", [("policyholder", "PERSON"), ("claim", "TXN"), ("agent", "PERSON")]),
    _domain("real_estate", [("property", "PLACE"), ("agent", "PERSON"), ("viewing", "EVENT")]),
    _domain("airline_ops", [("aircraft", "ITEM"), ("pilot", "PERSON"), ("route", "RECORD")]),
    _domain("railway", [("train", "ITEM"), ("station", "PLACE"), ("trip", "EVENT")]),
    _domain("shipping", [("vessel", "ITEM"), ("port", "PLACE"), ("voyage", "EVENT")]),
    _domain("logistics", [("warehouse", "PLACE"), ("shipment", "TXN"), ("carrier", "ORG")]),
    _domain("ecommerce", [("seller", "ORG"), ("listing", "ITEM"), ("purchase", "TXN")]),
    _domain("hotel", [("hotel", "ORG"), ("room", "PLACE"), ("stay", "TXN")]),
    _domain("museum", [("museum", "ORG"), ("exhibit", "ITEM"), ("visitor", "PERSON")]),
    _domain("theater", [("theater", "PLACE"), ("play", "MEDIA"), ("performance", "EVENT")]),
    _domain("festival", [("festival", "EVENT"), ("performer", "PERSON"), ("venue", "PLACE")]),
    _domain("conference", [("conference", "EVENT"), ("speaker", "PERSON"), ("session", "EVENT")]),
    _domain("journal", [("journal", "MEDIA"), ("author", "PERSON"), ("article", "MEDIA")]),
    _domain("news", [("newspaper", "MEDIA"), ("reporter", "PERSON"), ("story", "MEDIA")]),
    _domain("radio", [("program", "MEDIA"), ("host", "PERSON"), ("broadcast", "EVENT")]),
    _domain("podcast", [("podcast", "MEDIA"), ("guest", "PERSON"), ("episode_log", "RECORD")]),
    _domain("gaming", [("game", "MEDIA"), ("studio", "ORG"), ("tournament", "EVENT")]),
    _domain("esports", [("squad", "ORG"), ("gamer", "PERSON"), ("league_match", "EVENT")]),
    _domain("olympics", [("athlete", "PERSON"), ("country", "ORG"), ("final", "EVENT")]),
    _domain("swimming", [("swimmer", "PERSON"), ("pool", "PLACE"), ("heat", "EVENT")]),
    _domain("cycling", [("cyclist", "PERSON"), ("race", "EVENT"), ("sponsor", "ORG")]),
    _domain("racing", [("driver", "PERSON"), ("circuit", "PLACE"), ("grand_prix", "EVENT")]),
    _domain("tennis", [("tennis_player", "PERSON"), ("open", "EVENT"), ("court", "PLACE")]),
    _domain("golf", [("golfer", "PERSON"), ("course_site", "PLACE"), ("round", "EVENT")]),
    _domain("chess", [("grandmaster", "PERSON"), ("chess_game", "EVENT"), ("federation", "ORG")]),
    _domain("wrestling", [("wrestler", "PERSON"), ("bout", "EVENT"), ("promotion", "ORG")]),
    _domain("boxing", [("boxer", "PERSON"), ("fight", "EVENT"), ("gym", "PLACE")]),
    _domain("climbing", [("climber", "PERSON"), ("summit", "PLACE"), ("expedition", "EVENT")]),
    _domain("farming", [("farm", "ORG"), ("crop", "ITEM"), ("harvest", "RECORD")]),
    _domain("vineyard", [("winery", "ORG"), ("wine", "ITEM"), ("tasting", "EVENT")]),
    _domain("brewery", [("brewery", "ORG"), ("beer", "ITEM"), ("batch", "RECORD")]),
    _domain("bakery", [("bakery", "ORG"), ("pastry", "ITEM"), ("daily_sale", "TXN")]),
    _domain("coffee", [("cafe", "ORG"), ("blend", "ITEM"), ("cup_sale", "TXN")]),
    _domain("fishing", [("boat", "ITEM"), ("catch", "RECORD"), ("harbor", "PLACE")]),
    _domain("forestry", [("forest", "PLACE"), ("ranger", "PERSON"), ("survey", "RECORD")]),
    _domain("mining", [("mine", "PLACE"), ("mineral", "ITEM"), ("extraction", "RECORD")]),
    _domain("energy", [("plant", "PLACE"), ("generator", "ITEM"), ("output", "RECORD")]),
    _domain("solar", [("array", "ITEM"), ("site", "PLACE"), ("production", "RECORD")]),
    _domain("weather", [("observation_station", "PLACE"), ("forecast", "RECORD"), ("storm", "EVENT")]),
    _domain("climate", [("region", "PLACE"), ("measurement", "RECORD"), ("research_body", "ORG")]),
    _domain("astronomy", [("telescope", "ITEM"), ("observation", "RECORD"), ("observatory", "PLACE")]),
    _domain("space", [("mission", "EVENT"), ("astronaut", "PERSON"), ("launch_site", "PLACE")]),
    _domain("aviation", [("helicopter", "ITEM"), ("hangar", "PLACE"), ("maintenance", "RECORD")]),
    _domain("automotive", [("car_model", "ITEM"), ("maker", "ORG"), ("test_drive", "EVENT")]),
    _domain("motorcycle", [("bike", "ITEM"), ("dealer", "ORG"), ("service_visit", "TXN")]),
    _domain("trucking", [("truck", "ITEM"), ("depot", "PLACE"), ("haul", "TXN")]),
    _domain("transit", [("bus", "ITEM"), ("stop", "PLACE"), ("ride", "TXN")]),
    _domain("parking", [("garage", "PLACE"), ("permit", "TXN"), ("attendant", "PERSON")]),
    _domain("construction", [("contractor", "ORG"), ("project_site", "PLACE"), ("inspection", "RECORD")]),
    _domain("architecture", [("firm", "ORG"), ("building", "PLACE"), ("blueprint", "RECORD")]),
    _domain("engineering", [("engineer", "PERSON"), ("prototype", "ITEM"), ("trial", "EVENT")]),
    _domain("manufacturing", [("factory", "PLACE"), ("component", "ITEM"), ("production_run", "RECORD")]),
    _domain("textile", [("mill", "ORG"), ("fabric", "ITEM"), ("dye_lot", "RECORD")]),
    _domain("fashion", [("designer", "PERSON"), ("garment", "ITEM"), ("runway_show", "EVENT")]),
    _domain("jewelry", [("jeweler", "ORG"), ("gem", "ITEM"), ("appraisal", "RECORD")]),
    _domain("furniture", [("workshop", "ORG"), ("piece", "ITEM"), ("delivery", "TXN")]),
    _domain("electronics", [("brand", "ORG"), ("device", "ITEM"), ("repair", "TXN")]),
    _domain("software", [("vendor", "ORG"), ("application", "ITEM"), ("release", "EVENT")]),
    _domain("startup", [("venture", "ORG"), ("founder", "PERSON"), ("funding_round", "TXN")]),
    _domain("hr", [("employee", "PERSON"), ("position", "ITEM"), ("review_cycle", "EVENT")]),
    _domain("recruiting", [("candidate", "PERSON"), ("opening", "ITEM"), ("interview", "EVENT")]),
    _domain("payroll", [("staff_member", "PERSON"), ("payment", "TXN"), ("bonus", "TXN")]),
    _domain("legal", [("lawyer", "PERSON"), ("case", "RECORD"), ("hearing", "EVENT")]),
    _domain("court", [("judge", "PERSON"), ("trial_event", "EVENT"), ("district", "PLACE")]),
    _domain("police", [("officer", "PERSON"), ("incident", "EVENT"), ("precinct", "PLACE")]),
    _domain("fire_department", [("firefighter", "PERSON"), ("callout", "EVENT"), ("fire_station", "PLACE")]),
    _domain("charity", [("nonprofit", "ORG"), ("donor", "PERSON"), ("donation", "TXN")]),
    _domain("volunteering", [("volunteer", "PERSON"), ("drive", "EVENT"), ("chapter", "ORG")]),
    _domain("election", [("voting_candidate", "PERSON"), ("constituency", "PLACE"), ("poll", "RECORD")]),
    _domain("census", [("household", "RECORD"), ("tract", "PLACE"), ("enumerator", "PERSON")]),
    _domain("tourism", [("tour", "EVENT"), ("guide", "PERSON"), ("landmark", "PLACE")]),
    _domain("cruise", [("ship", "ITEM"), ("itinerary", "RECORD"), ("passenger", "PERSON")]),
    _domain("camping", [("campground", "PLACE"), ("site_booking", "TXN"), ("trail", "PLACE")]),
    _domain("zoo", [("zoo", "ORG"), ("animal", "ITEM"), ("feeding", "RECORD")]),
    _domain("aquarium", [("tank", "PLACE"), ("species", "ITEM"), ("caretaker", "PERSON")]),
    _domain("veterinary", [("vet", "PERSON"), ("pet", "ITEM"), ("visit", "TXN")]),
    _domain("pharmacy", [("pharmacy", "ORG"), ("drug", "ITEM"), ("prescription", "TXN")]),
    _domain("dental", [("dentist", "PERSON"), ("procedure", "ITEM"), ("dental_visit", "TXN")]),
    _domain("fitness", [("gym_club", "ORG"), ("trainer", "PERSON"), ("workout", "EVENT")]),
    _domain("yoga", [("studio_org", "ORG"), ("instructor", "PERSON"), ("yoga_class", "EVENT")]),
    _domain("spa", [("spa", "ORG"), ("treatment", "ITEM"), ("spa_booking", "TXN")]),
    _domain("salon", [("salon", "ORG"), ("stylist", "PERSON"), ("salon_appointment", "TXN")]),
    _domain("wedding", [("planner", "ORG"), ("ceremony", "EVENT"), ("venue_hall", "PLACE")]),
    _domain("photography", [("photographer", "PERSON"), ("shoot", "EVENT"), ("print_order", "TXN")]),
    _domain("art", [("gallery", "ORG"), ("artwork", "ITEM"), ("auction", "EVENT")]),
    _domain("crafts", [("artisan", "PERSON"), ("craft_item", "ITEM"), ("fair", "EVENT")]),
    _domain("gardening", [("nursery", "ORG"), ("seedling", "ITEM"), ("planting", "RECORD")]),
    _domain("social_media", [("account_profile", "PERSON"), ("post", "MEDIA"), ("follow_event", "RECORD")]),
    _domain("telecom", [("carrier_org", "ORG"), ("plan", "ITEM"), ("call_record", "RECORD")]),
)

#: Quick lookup by domain name.
DOMAIN_INDEX: Dict[str, DomainSpec] = {spec.name: spec for spec in DOMAINS}

assert len(DOMAINS) == 105, f"expected 105 domains, have {len(DOMAINS)}"

#: Value pools used by the column value generators.
FIRST_NAMES = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Susan", "Richard", "Jessica",
    "Joseph", "Sarah", "Thomas", "Karen", "Wei", "Li", "Ana", "Luis",
    "Yuki", "Omar", "Fatima", "Ivan", "Elena", "Noah", "Ava", "Lucas",
)
LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Chen", "Wang", "Kim", "Singh",
    "Patel", "Nguyen", "Kumar", "Ali", "Ivanov", "Sato", "Silva", "Costa",
)
CITIES = (
    "New York", "Los Angeles", "Chicago", "Houston", "Phoenix", "Boston",
    "Seattle", "Denver", "Atlanta", "Miami", "London", "Paris", "Berlin",
    "Tokyo", "Beijing", "Sydney", "Toronto", "Dubai", "Madrid", "Rome",
)
ORG_WORDS = (
    "United", "Global", "Prime", "Summit", "Apex", "Horizon", "Pioneer",
    "Sterling", "Beacon", "Crescent", "Vertex", "Atlas", "Nova", "Zenith",
)
ORG_SUFFIXES = ("Group", "Corp", "Partners", "Holdings", "Labs", "Works", "Union")
ITEM_ADJECTIVES = (
    "Classic", "Deluxe", "Compact", "Ultra", "Eco", "Smart", "Pro",
    "Mini", "Max", "Prime", "Swift", "Solid",
)
ITEM_NOUNS = (
    "Widget", "Module", "Kit", "Pack", "Set", "Unit", "Series", "Edition",
    "Bundle", "Model",
)
GENRES = ("drama", "comedy", "action", "documentary", "thriller", "romance", "sci-fi")
LANGUAGES = ("English", "Spanish", "French", "Mandarin", "Hindi", "Arabic", "Japanese")
STATUSES = ("pending", "completed", "cancelled", "refunded", "shipped")
PAY_METHODS = ("credit card", "cash", "wire", "voucher", "mobile")
LEVELS = ("low", "medium", "high", "critical")
RESULTS = ("win", "loss", "draw")
GENDERS = ("male", "female")
PLACE_KINDS = ("indoor", "outdoor", "mixed")
ORG_CATEGORIES = ("public", "private", "nonprofit", "cooperative")
ITEM_CATEGORIES = (
    "standard", "premium", "budget", "limited", "seasonal", "clearance",
)
