"""Generate (NL, SQL) pairs over a synthetic database.

Each pair is built the way Spider questions read: the SQL AST is sampled
feature-by-feature (projection, filters, grouping, ordering, limits,
joins, set operations, nested subqueries) and the NL question is composed
*clause-aligned* from several phrasings per clause, so the text mentions
exactly the columns, comparisons, and values the SQL uses — which is the
property the nl2sql-to-nl2vis NL-edit step depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Order,
    Predicate,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    SubqueryComparison,
)
from repro.sqlparse.printer import to_sql
from repro.storage.schema import Column, Database, Table


@dataclass
class GeneratedQuery:
    """A sampled SQL query with its aligned NL question."""

    nl: str
    sql: str
    query: SQLQuery


def _phrase(name: str) -> str:
    return name.replace("_", " ")


def _plural(name: str) -> str:
    """English-ish plural of a table noun for NL text."""
    word = _phrase(name)
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    if word.endswith("y") and len(word) > 1 and word[-2] not in "aeiou":
        return word[:-1] + "ies"
    return word + "s"


_AGG_WORDS = {
    "avg": "average",
    "sum": "total",
    "max": "maximum",
    "min": "minimum",
    "count": "number",
}


def _attr_phrase(attr: Attribute) -> str:
    """A readable NL phrase for an attribute, aggregate-aware."""
    if attr.agg == "count":
        if attr.column == "*":
            return "number of records"
        return f"number of {_phrase(attr.column)}"
    if attr.agg is not None:
        return f"{_AGG_WORDS[attr.agg]} {_phrase(attr.column)}"
    return _phrase(attr.column)


class QueryGenerator:
    """Samples (NL, SQL) pairs for one database."""

    def __init__(self, database: Database, rng: np.random.Generator):
        self.database = database
        self.rng = rng

    # ----- public entry -------------------------------------------------

    def generate(self) -> Optional[GeneratedQuery]:
        """Sample one pair; returns ``None`` when the database has no
        suitable tables (caller retries)."""
        roll = self.rng.random()
        if roll < 0.07:
            made = self._make_set_query()
        else:
            made = self._make_plain_query()
        if made is None:
            return None
        nl, query = made
        return GeneratedQuery(nl=nl, sql=to_sql(query, self.database), query=query)

    # ----- core sampling ------------------------------------------------

    def _usable_tables(self, min_columns: int = 2) -> List[Table]:
        return [
            table
            for table in self.database.tables.values()
            if len(table.columns) >= min_columns and table.row_count >= 2
        ]

    def _make_plain_query(self) -> Optional[Tuple[str, SQLQuery]]:
        tables = self._usable_tables()
        if not tables:
            return None
        if self.rng.random() < 0.22:
            simple = self._make_simple_lookup(tables)
            if simple is not None:
                return simple
        table = tables[int(self.rng.integers(len(tables)))]
        join_table = self._maybe_join_table(table)
        nl, core = self._make_core(table, join_table)
        if core is None:
            return None
        return nl, SQLQuery(body=core)

    def _make_simple_lookup(
        self, tables: List[Table]
    ) -> Optional[Tuple[str, SQLQuery]]:
        """Spider-style trivial question: two bare columns, no clauses.

        Prefers a small table with an entity-label column plus a numeric
        one — these are the questions that become nvBench's "easy" tier.
        """
        rng = self.rng
        candidates = []
        for table in tables:
            if table.row_count > 40:
                continue
            labels = [
                c for c in table.columns
                if c.ctype == "C" and not c.name.endswith("_id")
            ]
            others = [
                c for c in table.columns
                if c.ctype in ("Q", "T") and not c.name.endswith("_id")
            ]
            if labels and others:
                candidates.append((table, labels, others))
        if not candidates:
            return None
        table, labels, others = candidates[int(rng.integers(len(candidates)))]
        label = labels[int(rng.integers(len(labels)))]
        other = others[int(rng.integers(len(others)))]
        select = (
            Attribute(column=label.name, table=table.name),
            Attribute(column=other.name, table=table.name),
        )
        table_plural = _plural(table.name)
        nl = str(
            rng.choice(
                [
                    f"What are the {_phrase(label.name)} and "
                    f"{_phrase(other.name)} of all {table_plural}?",
                    f"Show the {_phrase(other.name)} of each "
                    f"{_phrase(table.name)} by {_phrase(label.name)}.",
                    f"List every {_phrase(table.name)} with its "
                    f"{_phrase(label.name)} and {_phrase(other.name)}.",
                ]
            )
        )
        return nl, SQLQuery(body=QueryCore(select=select))

    def _make_set_query(self) -> Optional[Tuple[str, SQLQuery]]:
        tables = self._usable_tables()
        candidates = [t for t in tables if self._filterable_columns(t)]
        if not candidates:
            return None
        table = candidates[int(self.rng.integers(len(candidates)))]
        # Prefer a (label, measure) projection so the set result itself is
        # chartable; fall back to a single attribute.
        labels = [
            c for c in table.columns
            if c.ctype == "C" and not c.name.endswith("_id")
        ]
        measures = [c for c in table.columns if c.ctype == "Q"]
        if labels and measures and self.rng.random() < 0.75:
            label = labels[int(self.rng.integers(len(labels)))]
            measure = measures[int(self.rng.integers(len(measures)))]
            select = (
                Attribute(column=label.name, table=table.name),
                Attribute(column=measure.name, table=table.name),
            )
            column_phrase = f"{_phrase(label.name)} and {_phrase(measure.name)}"
        else:
            attr = self._pick_attributes(table, 1)[0]
            select = (attr,)
            column_phrase = _phrase(attr.column)
        left_pred, left_nl = self._make_predicate(table)
        right_pred, right_nl = self._make_predicate(table)
        if left_pred is None or right_pred is None:
            return None
        left = QueryCore(select=select, filter=Filter(left_pred))
        right = QueryCore(select=select, filter=Filter(right_pred))
        op = str(self.rng.choice(["intersect", "union", "except"]))
        table_plural = _plural(table.name)
        table_phrase = _phrase(table.name)
        if op == "intersect":
            nl = (
                f"Find the {column_phrase} of {table_plural} that {left_nl} "
                f"and also {right_nl}."
            )
        elif op == "union":
            nl = (
                f"List the {column_phrase} of {table_plural} that {left_nl} "
                f"or that {right_nl}."
            )
        else:
            nl = (
                f"Show the {column_phrase} of {table_plural} that {left_nl} "
                f"but not those that {right_nl}."
            )
        return nl, SQLQuery(body=SetQuery(op=op, left=left, right=right))

    def _maybe_join_table(self, table: Table) -> Optional[Table]:
        if self.rng.random() > 0.18:
            return None
        partners = []
        for fk in self.database.foreign_keys:
            if fk.table == table.name:
                partners.append(fk.ref_table)
            elif fk.ref_table == table.name:
                partners.append(fk.table)
        partners = [
            p
            for p in dict.fromkeys(partners)
            if len(self.database.table(p).columns) >= 2
        ]
        if not partners:
            return None
        return self.database.table(str(self.rng.choice(partners)))

    def _make_core(
        self, table: Table, join_table: Optional[Table]
    ) -> Tuple[str, Optional[QueryCore]]:
        rng = self.rng
        grouped = rng.random() < 0.26
        if grouped:
            nl, core = self._make_grouped_core(table, join_table)
        else:
            nl, core = self._make_projection_core(table, join_table)
        if core is None:
            return "", None

        clauses = [nl]
        # A HAVING condition may already live in the grouped core's
        # filter; a sampled WHERE predicate is AND-ed with it.
        filter_ = core.filter
        if rng.random() < 0.28:
            pred, pred_nl = self._make_predicate(table, allow_nested=True)
            if pred is not None:
                if filter_ is not None:
                    filter_ = Filter(
                        root=LogicalPredicate("and", left=pred, right=filter_.root)
                    )
                else:
                    filter_ = Filter(root=pred)
                clauses.append(f"whose {pred_nl}" if rng.random() < 0.5 else f"that {pred_nl}")

        order = None
        superlative = None
        sortable = list(core.select)
        if rng.random() < 0.20 and sortable:
            attr = sortable[int(rng.integers(len(sortable)))]
            attr_phrase = _attr_phrase(attr)
            direction = str(rng.choice(["asc", "desc"]))
            word = "ascending" if direction == "asc" else "descending"
            if rng.random() < 0.35:
                k = int(rng.integers(1, 6))
                superlative = Superlative(
                    kind="most" if direction == "desc" else "least", k=k, attr=attr
                )
                extreme = "most" if direction == "desc" else "least"
                clauses.append(f"and give the top {k} with the {extreme} {attr_phrase}")
            else:
                order = Order(direction=direction, attr=attr)
                clauses.append(
                    str(
                        rng.choice(
                            [
                                f"sorted by {attr_phrase} in {word} order",
                                f"ordered by {attr_phrase} {word}",
                                f"and list them by {attr_phrase} in {word} order",
                            ]
                        )
                    )
                )

        core = QueryCore(
            select=core.select,
            filter=filter_,
            groups=core.groups,
            order=order,
            superlative=superlative,
        )
        sentence = " ".join(clauses).strip()
        if not sentence.endswith((".", "?")):
            sentence += "?" if sentence.lower().startswith(("what", "how", "which")) else "."
        return sentence, core

    def _make_projection_core(
        self, table: Table, join_table: Optional[Table]
    ) -> Tuple[str, Optional[QueryCore]]:
        rng = self.rng
        n_attrs = int(rng.choice([1, 2, 3, 4], p=[0.28, 0.42, 0.22, 0.08]))
        attrs = self._pick_attributes(table, n_attrs)
        table_plural = _plural(table.name)
        table_phrase = _phrase(table.name)
        if join_table is not None:
            join_attrs = self._pick_attributes(join_table, 1)
            attrs = attrs + join_attrs
            phrase_join = (
                f" together with the {_phrase(join_attrs[0].column)} of the "
                f"corresponding {_phrase(join_table.name)}"
            )
        else:
            phrase_join = ""
        listing = self._column_listing(attrs)
        opener = str(
            rng.choice(
                [
                    f"Show the {listing} of all {table_plural}{phrase_join}",
                    f"What are the {listing} of each {table_phrase}{phrase_join}",
                    f"List the {listing} for every {table_phrase}{phrase_join}",
                    f"Find the {listing} of {table_plural}{phrase_join}",
                    f"Return the {listing} of the {table_plural}{phrase_join}",
                ]
            )
        )
        return opener, QueryCore(select=tuple(attrs))

    def _make_grouped_core(
        self, table: Table, join_table: Optional[Table]
    ) -> Tuple[str, Optional[QueryCore]]:
        rng = self.rng
        group_cols = [c for c in table.columns if c.ctype == "C" and not c.name.endswith("_id")]
        if not group_cols:
            group_cols = [c for c in table.columns if c.ctype == "C"]
        if not group_cols:
            return "", None
        group_col = group_cols[int(rng.integers(len(group_cols)))]
        group_attr = Attribute(column=group_col.name, table=table.name)
        table_plural = _plural(table.name)
        table_phrase = _phrase(table.name)
        group_phrase = _phrase(group_col.name)

        quantitative = [
            c for c in table.columns if c.ctype == "Q" and c.name != group_col.name
        ]
        use_count = not quantitative or rng.random() < 0.45
        if use_count:
            measure = Attribute(column="*", table=table.name, agg="count")
            opener = str(
                rng.choice(
                    [
                        f"How many {table_plural} are there for each {group_phrase}",
                        f"Count the number of {table_plural} in each {group_phrase}",
                        f"Find the number of {table_plural} per {group_phrase}",
                    ]
                )
            )
        else:
            target = quantitative[int(rng.integers(len(quantitative)))]
            agg = str(rng.choice(["avg", "sum", "max", "min"]))
            measure = Attribute(column=target.name, table=table.name, agg=agg)
            agg_word = {"avg": "average", "sum": "total", "max": "maximum", "min": "minimum"}[agg]
            opener = str(
                rng.choice(
                    [
                        f"What is the {agg_word} {_phrase(target.name)} of "
                        f"{table_plural} for each {group_phrase}",
                        f"Show the {agg_word} {_phrase(target.name)} per "
                        f"{group_phrase} of {table_plural}",
                        f"Find the {agg_word} {_phrase(target.name)} for the "
                        f"{table_plural} in each {group_phrase}",
                    ]
                )
            )
        having = None
        if rng.random() < 0.18:
            # A Spider-style HAVING condition on the grouped measure.
            if measure.agg == "count":
                threshold: object = int(rng.integers(2, 5))
            else:
                values = [
                    v for v in table.column_values(measure.column)
                    if isinstance(v, (int, float))
                ]
                if values:
                    threshold = values[int(rng.integers(len(values)))]
                else:
                    threshold = 1
            having = Filter(Comparison(op=">=", attr=measure, value=threshold))
            opener += (
                f", keeping only the {group_phrase} groups whose "
                f"{_attr_phrase(measure)} is at least {threshold}"
            )
        core = QueryCore(
            select=(group_attr, measure),
            groups=(Group(kind="grouping", attr=group_attr),),
            filter=having,
        )
        return opener, core

    # ----- attribute and predicate sampling ------------------------------

    def _pick_attributes(self, table: Table, count: int) -> List[Attribute]:
        pool = [c for c in table.columns if not c.name.endswith("_id")]
        if not pool:
            pool = list(table.columns)
        count = min(count, len(pool))
        picked = self.rng.choice(len(pool), size=count, replace=False)
        return [
            Attribute(column=pool[i].name, table=table.name)
            for i in sorted(picked.tolist())
        ]

    def _column_listing(self, attrs: Sequence[Attribute]) -> str:
        names = [_phrase(a.column) for a in attrs]
        if len(names) == 1:
            return names[0]
        return ", ".join(names[:-1]) + " and " + names[-1]

    def _filterable_columns(self, table: Table) -> List[Column]:
        return [
            c
            for c in table.columns
            if not c.name.endswith("_id") and table.row_count >= 2
        ]

    def _make_predicate(
        self, table: Table, allow_nested: bool = False
    ) -> Tuple[Optional[Predicate], str]:
        rng = self.rng
        columns = self._filterable_columns(table)
        if not columns:
            return None, ""
        if allow_nested and rng.random() < 0.15:
            nested = self._make_nested_predicate(table)
            if nested is not None:
                return nested
        first = self._make_simple_predicate(table, columns)
        if first is None:
            return None, ""
        pred, nl = first
        if rng.random() < 0.22:
            second = self._make_simple_predicate(table, columns)
            if second is not None and second[0] != pred:
                op = str(rng.choice(["and", "or"], p=[0.7, 0.3]))
                pred = LogicalPredicate(op=op, left=pred, right=second[0])
                nl = f"{nl} {op} {second[1]}"
        return pred, nl

    def _make_simple_predicate(
        self, table: Table, columns: List[Column]
    ) -> Optional[Tuple[Predicate, str]]:
        rng = self.rng
        column = columns[int(rng.integers(len(columns)))]
        attr = Attribute(column=column.name, table=table.name)
        values = [v for v in table.column_values(column.name) if v is not None]
        if not values:
            return None
        value = values[int(rng.integers(len(values)))]
        column_phrase = _phrase(column.name)
        if column.ctype == "Q":
            op = str(rng.choice([">", "<", ">=", "<=", "=", "between"]))
            if op == "between":
                other = values[int(rng.integers(len(values)))]
                low, high = sorted([value, other])
                return (
                    Between(attr=attr, low=low, high=high),
                    f"{column_phrase} is between {low} and {high}",
                )
            words = {
                ">": "is greater than",
                "<": "is less than",
                ">=": "is at least",
                "<=": "is at most",
                "=": "equals",
            }
            return (
                Comparison(op=op, attr=attr, value=value),
                f"{column_phrase} {words[op]} {value}",
            )
        if column.ctype == "T":
            op = str(rng.choice([">", "<", "="]))
            words = {">": "is after", "<": "is before", "=": "is on"}
            return (
                Comparison(op=op, attr=attr, value=value),
                f"{column_phrase} {words[op]} {value}",
            )
        roll = rng.random()
        if roll < 0.15 and isinstance(value, str) and len(value) >= 3:
            piece = value.split()[0]
            return (
                Like(attr=attr, pattern=f"%{piece}%"),
                f"{column_phrase} contains the word {piece}",
            )
        op = "=" if roll < 0.85 else "!="
        verb = "is" if op == "=" else "is not"
        return (
            Comparison(op=op, attr=attr, value=value),
            f"{column_phrase} {verb} {value}",
        )

    def _make_nested_predicate(
        self, table: Table
    ) -> Optional[Tuple[Predicate, str]]:
        rng = self.rng
        quantitative = [
            c for c in table.columns if c.ctype == "Q" and not c.name.endswith("_id")
        ]
        if quantitative and rng.random() < 0.6:
            column = quantitative[int(rng.integers(len(quantitative)))]
            attr = Attribute(column=column.name, table=table.name)
            sub = QueryCore(
                select=(Attribute(column=column.name, table=table.name, agg="avg"),)
            )
            op = str(rng.choice([">", "<"]))
            word = "above" if op == ">" else "below"
            return (
                SubqueryComparison(op=op, attr=attr, query=sub),
                f"{_phrase(column.name)} is {word} the average {_phrase(column.name)}",
            )
        # [NOT] IN over a filtered subquery on the same table.
        columns = self._filterable_columns(table)
        if not columns:
            return None
        column = columns[int(rng.integers(len(columns)))]
        attr = Attribute(column=column.name, table=table.name)
        simple = self._make_simple_predicate(table, columns)
        if simple is None:
            return None
        pred, pred_nl = simple
        sub = QueryCore(select=(attr,), filter=Filter(root=pred))
        negated = bool(rng.random() < 0.4)
        if negated:
            return (
                InSubquery(attr=attr, query=sub, negated=True),
                f"{_phrase(column.name)} never appears among those whose {pred_nl}",
            )
        return (
            InSubquery(attr=attr, query=sub, negated=False),
            f"{_phrase(column.name)} appears among those whose {pred_nl}",
        )
