"""Miniature TPC-H and TPC-DS databases (Figure 7 demonstration).

The paper runs its transformation and filtering machinery over TPC-H and
TPC-DS to show which chart classes the DeepEye-style filter rejects:
pie charts with too many slices (TPC-H Q20-style) and single-value bar
charts (TPC-DS Q9-style) are bad; year-trend bars (Q8) and two-variable
scatters (Q7) are good.  These miniatures carry just the tables and
columns those four demonstrations touch.
"""

from __future__ import annotations

import numpy as np

from repro.storage.schema import Column, Database, ForeignKey, Table


def build_tpch_database(seed: int = 42, scale: int = 200) -> Database:
    """A small TPC-H: supplier, part, partsupp, orders, lineitem, nation."""
    rng = np.random.default_rng(seed)
    db = Database(name="tpch", domain="tpc")

    nation = Table(
        "nation", (Column("n_nationkey", "C"), Column("n_name", "C"))
    )
    nations = [
        "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
        "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
        "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
        "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
        "UNITED STATES",
    ]
    nation.extend([(i, name) for i, name in enumerate(nations)])
    db.add_table(nation)

    supplier = Table(
        "supplier",
        (
            Column("s_suppkey", "C"),
            Column("s_name", "C"),
            Column("s_nationkey", "C"),
            Column("s_acctbal", "Q"),
        ),
    )
    # Many distinct suppliers: the Q20-style pie over supplier names has
    # far too many slices, which is exactly what the filter must reject.
    for key in range(scale):
        supplier.insert(
            (
                key,
                f"Supplier#{key:05d}",
                int(rng.integers(len(nations))),
                round(float(rng.normal(4500, 2000)), 2),
            )
        )
    db.add_table(supplier)

    orders = Table(
        "orders",
        (
            Column("o_orderkey", "C"),
            Column("o_orderdate", "T"),
            Column("o_totalprice", "Q"),
            Column("o_suppkey", "C"),
        ),
    )
    for key in range(scale * 4):
        year = int(rng.integers(1992, 1999))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        orders.insert(
            (
                key,
                f"{year:04d}-{month:02d}-{day:02d}",
                round(float(rng.lognormal(9.5, 0.6)), 2),
                int(rng.integers(scale)),
            )
        )
    db.add_table(orders)
    db.foreign_keys.append(ForeignKey("supplier", "s_nationkey", "nation", "n_nationkey"))
    db.foreign_keys.append(ForeignKey("orders", "o_suppkey", "supplier", "s_suppkey"))
    return db


def build_tpcds_database(seed: int = 43, scale: int = 300) -> Database:
    """A small TPC-DS: store_sales with item and store dimensions."""
    rng = np.random.default_rng(seed)
    db = Database(name="tpcds", domain="tpc")

    item = Table(
        "item",
        (
            Column("i_item_sk", "C"),
            Column("i_category", "C"),
            Column("i_current_price", "Q"),
        ),
    )
    categories = ("Books", "Electronics", "Home", "Jewelry", "Music", "Shoes", "Sports")
    for key in range(60):
        item.insert(
            (
                key,
                categories[int(rng.integers(len(categories)))],
                round(float(rng.lognormal(3.0, 0.5)), 2),
            )
        )
    db.add_table(item)

    store_sales = Table(
        "store_sales",
        (
            Column("ss_ticket", "C"),
            Column("ss_item_sk", "C"),
            Column("ss_quantity", "Q"),
            Column("ss_net_paid", "Q"),
            Column("ss_sold_date", "T"),
        ),
    )
    for key in range(scale * 4):
        year = int(rng.integers(1998, 2003))
        month = int(rng.integers(1, 13))
        quantity = int(rng.integers(1, 40))
        store_sales.insert(
            (
                key,
                int(rng.integers(60)),
                quantity,
                round(quantity * float(rng.lognormal(3.0, 0.5)), 2),
                f"{year:04d}-{month:02d}-{int(rng.integers(1, 29)):02d}",
            )
        )
    db.add_table(store_sales)
    db.foreign_keys.append(ForeignKey("store_sales", "ss_item_sk", "item", "i_item_sk"))
    return db
