"""Corpus container and builder for the synthetic Spider-like benchmark.

``build_spider_corpus`` assembles databases across the 105-domain catalog
(weighted so Sport/Customer/School/Shop/Student carry the most tables, as
in Table 2) and samples (NL, SQL) pairs per database.  The corpus is
JSON-serializable so a built benchmark can be saved and reloaded without
regeneration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.grammar.ast_nodes import SQLQuery
from repro.spider.datagen import build_database
from repro.spider.querygen import QueryGenerator
from repro.spider.vocab import DOMAINS, DomainSpec
from repro.sqlparse.parser import parse_sql
from repro.storage.schema import Column, Database, ForeignKey, Table


@dataclass
class CorpusConfig:
    """Knobs for corpus size; defaults approximate nvBench's inputs.

    Tests and quick benches shrink ``num_databases`` and
    ``pairs_per_database`` — every downstream component is size-agnostic.
    """

    num_databases: int = 153
    pairs_per_database: int = 24
    row_scale: float = 1.0
    max_rows: int = 3000
    seed: int = 7


#: The paper-shape corpus: 153 databases, enough (NL, SQL) inputs that
#: the synthesizer yields ≥ 25k (NL, VIS) pairs (nvBench ships 25,750).
#: Built through the streamed, sharded engine (``docs/CORPUS.md``) —
#: never materialized in one pass.
PAPER_SCALE_CORPUS = CorpusConfig(
    num_databases=153, pairs_per_database=50, row_scale=0.5, seed=7
)


@dataclass
class NLSQLPair:
    """One benchmark example: an NL question and its SQL query."""

    nl: str
    sql: str
    query: SQLQuery
    db_name: str


@dataclass
class SpiderCorpus:
    """Databases plus (NL, SQL) pairs."""

    databases: Dict[str, Database] = field(default_factory=dict)
    pairs: List[NLSQLPair] = field(default_factory=list)

    @property
    def domains(self) -> List[str]:
        """Distinct domain names, sorted."""
        return sorted({db.domain for db in self.databases.values()})

    @property
    def total_tables(self) -> int:
        """Table count across all databases."""
        return sum(len(db.tables) for db in self.databases.values())

    def pairs_for(self, db_name: str) -> List[NLSQLPair]:
        """All pairs over one database."""
        return [pair for pair in self.pairs if pair.db_name == db_name]


def _domain_schedule(num_databases: int, rng: np.random.Generator) -> List[DomainSpec]:
    """Assign domains to database slots.

    With enough slots every domain appears at least once and the heavy
    domains get the extras; with fewer slots, the heaviest domains win.
    """
    by_weight = sorted(DOMAINS, key=lambda d: (-d.weight, d.name))
    if num_databases <= len(DOMAINS):
        return list(by_weight[:num_databases])
    schedule = list(DOMAINS)
    extras = num_databases - len(DOMAINS)
    weights = np.array([d.weight for d in DOMAINS], dtype=float)
    weights /= weights.sum()
    picks = rng.choice(len(DOMAINS), size=extras, p=weights)
    schedule.extend(DOMAINS[int(i)] for i in picks)
    return schedule


def build_spider_corpus(config: Optional[CorpusConfig] = None) -> SpiderCorpus:
    """Build a full corpus per *config* (deterministic for a given seed)."""
    config = config or CorpusConfig()
    rng = np.random.default_rng(config.seed)
    corpus = SpiderCorpus()
    counters: Dict[str, int] = {}
    for spec in _domain_schedule(config.num_databases, rng):
        counters[spec.name] = counters.get(spec.name, 0) + 1
        db_name = f"{spec.name}_{counters[spec.name]}"
        database = build_database(
            spec, db_name, rng, row_scale=config.row_scale, max_rows=config.max_rows
        )
        corpus.databases[db_name] = database
        generator = QueryGenerator(database, rng)
        made = 0
        attempts = 0
        while made < config.pairs_per_database and attempts < config.pairs_per_database * 6:
            attempts += 1
            generated = generator.generate()
            if generated is None:
                continue
            corpus.pairs.append(
                NLSQLPair(
                    nl=generated.nl,
                    sql=generated.sql,
                    query=generated.query,
                    db_name=db_name,
                )
            )
            made += 1
    return corpus


# ----- streamed per-database generation ------------------------------------


def domain_schedule(config: CorpusConfig) -> List[tuple]:
    """``(DomainSpec, db_name)`` per database slot, deterministically.

    The schedule (and so every database's name and domain) depends only
    on ``(num_databases, seed)`` — the same assignment
    :func:`build_spider_corpus` uses, computable without generating any
    data.  This is what lets the streamed build address one database at
    a time.
    """
    rng = np.random.default_rng(config.seed)
    counters: Dict[str, int] = {}
    named = []
    for spec in _domain_schedule(config.num_databases, rng):
        counters[spec.name] = counters.get(spec.name, 0) + 1
        named.append((spec, f"{spec.name}_{counters[spec.name]}"))
    return named


def generate_corpus_unit(
    config: CorpusConfig, db_index: int
) -> Tuple[Database, List[NLSQLPair]]:
    """Generate database *db_index* of the streamed corpus, independently.

    Unlike :func:`build_spider_corpus` — which threads one RNG through
    every database in order, so database *k* depends on databases
    ``0..k-1`` — each streamed unit draws from its own
    ``(seed, salt, db_index)``-derived RNG.  Units are therefore
    individually addressable: the sharded build generates, synthesizes,
    and discards one at a time, and an incremental rebuild can skip or
    regenerate any single database without touching the rest.
    """
    schedule = domain_schedule(config)
    if not 0 <= db_index < len(schedule):
        raise IndexError(f"db_index {db_index} out of range 0..{len(schedule) - 1}")
    spec, db_name = schedule[db_index]
    # 9176 salts the stream apart from build_spider_corpus' and the
    # synthesizer's (seed, index) streams.
    rng = np.random.default_rng((config.seed, 9176, db_index))
    database = build_database(
        spec, db_name, rng, row_scale=config.row_scale, max_rows=config.max_rows
    )
    generator = QueryGenerator(database, rng)
    pairs: List[NLSQLPair] = []
    attempts = 0
    while (
        len(pairs) < config.pairs_per_database
        and attempts < config.pairs_per_database * 6
    ):
        attempts += 1
        generated = generator.generate()
        if generated is None:
            continue
        pairs.append(
            NLSQLPair(
                nl=generated.nl,
                sql=generated.sql,
                query=generated.query,
                db_name=db_name,
            )
        )
    return database, pairs


def iter_corpus_units(
    config: CorpusConfig, limit: Optional[int] = None
) -> "Iterator[Tuple[int, Database, List[NLSQLPair]]]":
    """Yield ``(db_index, database, pairs)`` one database at a time."""
    count = config.num_databases if limit is None else min(limit, config.num_databases)
    for db_index in range(count):
        database, pairs = generate_corpus_unit(config, db_index)
        yield db_index, database, pairs


# ----- JSON (de)serialization ---------------------------------------------


def save_corpus(corpus: SpiderCorpus, path: str) -> None:
    """Write *corpus* (schemas, rows, pairs) to a JSON file."""
    payload = {
        "databases": [
            {
                "name": db.name,
                "domain": db.domain,
                "tables": [
                    {
                        "name": table.name,
                        "columns": [
                            {"name": c.name, "ctype": c.ctype} for c in table.columns
                        ],
                        "rows": [list(row) for row in table.rows],
                    }
                    for table in db.tables.values()
                ],
                "foreign_keys": [
                    {
                        "table": fk.table,
                        "column": fk.column,
                        "ref_table": fk.ref_table,
                        "ref_column": fk.ref_column,
                    }
                    for fk in db.foreign_keys
                ],
            }
            for db in corpus.databases.values()
        ],
        "pairs": [
            {"nl": pair.nl, "sql": pair.sql, "db_name": pair.db_name}
            for pair in corpus.pairs
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_corpus(path: str) -> SpiderCorpus:
    """Load a corpus saved with :func:`save_corpus`; SQL is re-parsed
    into ASTs against the loaded schemas."""
    payload = json.loads(Path(path).read_text())
    corpus = SpiderCorpus()
    for db_payload in payload["databases"]:
        database = Database(name=db_payload["name"], domain=db_payload["domain"])
        for table_payload in db_payload["tables"]:
            table = Table(
                name=table_payload["name"],
                columns=tuple(
                    Column(name=c["name"], ctype=c["ctype"])
                    for c in table_payload["columns"]
                ),
            )
            table.extend([tuple(row) for row in table_payload["rows"]])
            database.add_table(table)
        database.foreign_keys = [
            ForeignKey(
                table=fk["table"],
                column=fk["column"],
                ref_table=fk["ref_table"],
                ref_column=fk["ref_column"],
            )
            for fk in db_payload["foreign_keys"]
        ]
        corpus.databases[database.name] = database
    for pair_payload in payload["pairs"]:
        database = corpus.databases[pair_payload["db_name"]]
        corpus.pairs.append(
            NLSQLPair(
                nl=pair_payload["nl"],
                sql=pair_payload["sql"],
                query=parse_sql(pair_payload["sql"], database),
                db_name=pair_payload["db_name"],
            )
        )
    return corpus
