"""Database construction for the synthetic Spider-like corpus.

Builds one :class:`~repro.storage.schema.Database` per (domain, index):
each entity table gets a primary key, a sampled subset of its archetype's
attribute pool, and — for dependent archetypes (TXN/RECORD/EVENT) —
foreign keys to parent tables.

Quantitative columns deliberately draw from a mixture of distributions
(log-normal most common, then normal, exponential, power-law, and some
that fit none) so the Figure 9 goodness-of-fit statistics have the same
texture as nvBench; row counts are log-normally distributed so most
tables are small with a heavy tail (Figure 8).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.spider.vocab import (
    ARCHETYPES,
    CITIES,
    FIRST_NAMES,
    GENDERS,
    GENRES,
    ITEM_ADJECTIVES,
    ITEM_CATEGORIES,
    ITEM_NOUNS,
    LANGUAGES,
    LAST_NAMES,
    LEVELS,
    ORG_CATEGORIES,
    ORG_SUFFIXES,
    ORG_WORDS,
    PAY_METHODS,
    PLACE_KINDS,
    RESULTS,
    STATUSES,
    DomainSpec,
)
from repro.storage.schema import Column, Database, ForeignKey, Table

#: archetypes that reference earlier tables with foreign keys
_DEPENDENT_ARCHETYPES = frozenset({"TXN", "RECORD", "EVENT"})


def build_database(
    spec: DomainSpec,
    name: str,
    rng: np.random.Generator,
    row_scale: float = 1.0,
    max_rows: int = 3000,
) -> Database:
    """Build a populated database for domain *spec*.

    ``row_scale`` scales every table's row count (tests use small scales;
    the full benchmark build uses 1.0); ``max_rows`` caps the heavy tail.
    """
    database = Database(name=name, domain=spec.name)
    parent_keys: List[Tuple[str, str, List[int]]] = []
    for table_noun, archetype in spec.tables:
        table, pk_values = _build_table(
            table_noun, archetype, parent_keys, database, rng, row_scale, max_rows
        )
        database.add_table(table)
        if archetype not in _DEPENDENT_ARCHETYPES:
            parent_keys.append((table.name, f"{table_noun}_id", pk_values))
    return database


def _build_table(
    table_noun: str,
    archetype: str,
    parent_keys: List[Tuple[str, str, List[int]]],
    database: Database,
    rng: np.random.Generator,
    row_scale: float,
    max_rows: int,
) -> Tuple[Table, List[int]]:
    pool = ARCHETYPES[archetype]
    pool_size = len(pool)
    keep = int(rng.integers(2, min(6, pool_size) + 1))
    chosen_idx = sorted(rng.choice(pool_size, size=keep, replace=False).tolist())
    chosen = [pool[i] for i in chosen_idx]

    columns: List[Column] = [Column(name=f"{table_noun}_id", ctype="C")]

    fk_columns: List[Tuple[str, List[int], ForeignKey]] = []
    if archetype in _DEPENDENT_ARCHETYPES and parent_keys:
        how_many = min(len(parent_keys), int(rng.integers(1, 3)))
        picked = rng.choice(len(parent_keys), size=how_many, replace=False)
        for parent_index in sorted(picked.tolist()):
            parent_table, parent_pk, parent_values = parent_keys[parent_index]
            fk_name = parent_pk if parent_pk != f"{table_noun}_id" else f"ref_{parent_pk}"
            fk = ForeignKey(
                table=table_noun,
                column=fk_name,
                ref_table=parent_table,
                ref_column=parent_pk,
            )
            columns.append(Column(name=fk_name, ctype="C"))
            fk_columns.append((fk_name, parent_values, fk))

    for column_name, ctype, kind in chosen:
        columns.append(Column(name=column_name, ctype=ctype))

    n_rows = _sample_row_count(archetype, rng, row_scale, max_rows)
    table = Table(name=table_noun, columns=tuple(columns))

    pk_values = list(range(1, n_rows + 1))
    data_columns: List[List[object]] = [pk_values]
    for fk_name, parent_values, fk in fk_columns:
        if parent_values:
            data_columns.append(
                rng.choice(parent_values, size=n_rows).tolist()
            )
        else:
            data_columns.append([None] * n_rows)
        database.foreign_keys.append(fk)
    for column_name, ctype, kind in chosen:
        data_columns.append(_make_values(kind, n_rows, rng))

    for row_index in range(n_rows):
        table.insert(tuple(col[row_index] for col in data_columns))
    return table, pk_values


def _sample_row_count(
    archetype: str, rng: np.random.Generator, row_scale: float, max_rows: int
) -> int:
    # Log-normal row counts: most tables 5-100 rows, a heavy tail of big
    # ones (paper Figure 8(b)).  Dependent tables are larger on average.
    mu = 3.6 if archetype in _DEPENDENT_ARCHETYPES else 3.0
    count = int(np.exp(rng.normal(mu, 1.0)) * row_scale)
    return int(np.clip(count, 1, max_rows))


# ----- value generators ---------------------------------------------------


def _make_values(kind: str, n: int, rng: np.random.Generator) -> List[object]:
    maker = _VALUE_MAKERS.get(kind)
    if maker is None:
        raise ValueError(f"unknown value generator kind: {kind!r}")
    return maker(rng, n)


def _quantitative(rng: np.random.Generator, n: int, flavor: str) -> np.ndarray:
    """Draw *n* values from the named distribution family."""
    if flavor == "lognormal":
        return rng.lognormal(mean=3.0, sigma=0.8, size=n)
    if flavor == "normal":
        return rng.normal(loc=100.0, scale=20.0, size=n)
    if flavor == "exponential":
        return rng.exponential(scale=50.0, size=n)
    if flavor == "powerlaw":
        return (rng.pareto(a=2.5, size=n) + 1.0) * 10.0
    if flavor == "mixture":
        # Bimodal: fits none of the six reference distributions.
        flags = rng.random(n) < 0.5
        low = rng.normal(20.0, 5.0, size=n)
        high = rng.normal(120.0, 10.0, size=n)
        return np.where(flags, low, high)
    raise ValueError(f"unknown distribution flavor: {flavor!r}")


def _pick_flavor(rng: np.random.Generator) -> str:
    # Marginals chosen to echo Figure 9(a): log-normal most common,
    # a sizable "fits nothing" share, no uniform.
    return str(
        rng.choice(
            ["lognormal", "normal", "exponential", "powerlaw", "mixture"],
            p=[0.38, 0.22, 0.13, 0.07, 0.20],
        )
    )


def _money(rng: np.random.Generator, n: int) -> List[object]:
    values = _quantitative(rng, n, _pick_flavor(rng))
    return [round(float(abs(v)) * 10, 2) for v in values]


def _big_money(rng: np.random.Generator, n: int) -> List[object]:
    values = _quantitative(rng, n, "lognormal")
    return [round(float(v) * 10000, 2) for v in values]


def _age(rng: np.random.Generator, n: int) -> List[object]:
    return [int(np.clip(v, 18, 75)) for v in rng.normal(36, 11, size=n)]


def _height(rng: np.random.Generator, n: int) -> List[object]:
    return [round(float(v), 1) for v in rng.normal(175, 9, size=n)]


def _weight(rng: np.random.Generator, n: int) -> List[object]:
    return [round(float(v), 1) for v in rng.lognormal(4.2, 0.25, size=n)]


def _rating(rng: np.random.Generator, n: int) -> List[object]:
    return [round(float(np.clip(v, 1.0, 10.0)), 1) for v in rng.normal(6.8, 1.6, size=n)]


def _score(rng: np.random.Generator, n: int) -> List[object]:
    return [int(abs(v)) for v in rng.normal(55, 25, size=n)]


def _small_int(rng: np.random.Generator, n: int) -> List[object]:
    return [int(v) for v in rng.integers(1, 12, size=n)]


def _count_mid(rng: np.random.Generator, n: int) -> List[object]:
    return [int(v) for v in _quantitative(rng, n, _pick_flavor(rng)).clip(0)]


def _count_big(rng: np.random.Generator, n: int) -> List[object]:
    return [int(v * 100) for v in _quantitative(rng, n, "lognormal")]


def _rate(rng: np.random.Generator, n: int) -> List[object]:
    return [round(float(v), 3) for v in rng.beta(2.0, 5.0, size=n)]


def _duration(rng: np.random.Generator, n: int) -> List[object]:
    return [int(v) + 1 for v in rng.exponential(60, size=n)]


def _measure(rng: np.random.Generator, n: int) -> List[object]:
    values = _quantitative(rng, n, _pick_flavor(rng))
    return [round(float(v), 2) for v in values]


def _area(rng: np.random.Generator, n: int) -> List[object]:
    return [round(float(v) * 50, 1) for v in rng.lognormal(3.5, 0.9, size=n)]


def _latitude(rng: np.random.Generator, n: int) -> List[object]:
    return [round(float(v), 4) for v in rng.uniform(-60, 70, size=n)]


def _year(rng: np.random.Generator, n: int) -> List[object]:
    return [int(v) for v in rng.integers(1950, 2022, size=n)]


def _date(rng: np.random.Generator, n: int) -> List[object]:
    years = rng.integers(1995, 2022, size=n)
    months = rng.integers(1, 13, size=n)
    days = rng.integers(1, 29, size=n)
    return [f"{y:04d}-{m:02d}-{d:02d}" for y, m, d in zip(years, months, days)]


def _datetime(rng: np.random.Generator, n: int) -> List[object]:
    dates = _date(rng, n)
    hours = rng.integers(0, 24, size=n)
    minutes = rng.integers(0, 60, size=n)
    return [f"{d} {h:02d}:{m:02d}" for d, h, m in zip(dates, hours, minutes)]


def _dedup(names: List[str]) -> List[object]:
    """Disambiguate repeats — entity-name columns in Spider tables are
    effectively unique, which is what makes ungrouped per-entity bar
    charts (the "easy" tier) readable."""
    seen: dict = {}
    out: List[object] = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        out.append(name if count == 0 else f"{name} {_ROMAN[count % len(_ROMAN)]}")
    return out


_ROMAN = ("II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII")


def _person_name(rng: np.random.Generator, n: int) -> List[object]:
    firsts = rng.choice(FIRST_NAMES, size=n)
    lasts = rng.choice(LAST_NAMES, size=n)
    return _dedup([f"{f} {l}" for f, l in zip(firsts, lasts)])


def _org_name(rng: np.random.Generator, n: int) -> List[object]:
    words = rng.choice(ORG_WORDS, size=n)
    suffixes = rng.choice(ORG_SUFFIXES, size=n)
    return _dedup([f"{w} {s}" for w, s in zip(words, suffixes)])


def _event_name(rng: np.random.Generator, n: int) -> List[object]:
    words = rng.choice(ORG_WORDS, size=n)
    kinds = rng.choice(["Open", "Cup", "Gala", "Summit", "Derby", "Finals"], size=n)
    return _dedup([f"{w} {k}" for w, k in zip(words, kinds)])


def _item_name(rng: np.random.Generator, n: int) -> List[object]:
    adjectives = rng.choice(ITEM_ADJECTIVES, size=n)
    nouns = rng.choice(ITEM_NOUNS, size=n)
    numbers = rng.integers(1, 90, size=n)
    return _dedup([f"{a} {b} {num}" for a, b, num in zip(adjectives, nouns, numbers)])


def _place_name(rng: np.random.Generator, n: int) -> List[object]:
    words = rng.choice(ORG_WORDS, size=n)
    kinds = rng.choice(["Arena", "Park", "Center", "Hall", "Field", "Plaza"], size=n)
    return _dedup([f"{w} {k}" for w, k in zip(words, kinds)])


def _title(rng: np.random.Generator, n: int) -> List[object]:
    lefts = rng.choice(["Silent", "Golden", "Hidden", "Broken", "Endless", "Burning"], size=n)
    rights = rng.choice(["River", "Sky", "Road", "City", "Garden", "Echo"], size=n)
    return _dedup([f"The {a} {b}" for a, b in zip(lefts, rights)])


def _email(rng: np.random.Generator, n: int) -> List[object]:
    firsts = rng.choice(FIRST_NAMES, size=n)
    numbers = rng.integers(1, 999, size=n)
    return [f"{f.lower()}{num}@example.org" for f, num in zip(firsts, numbers)]


def _choice_maker(pool: Tuple[str, ...]):
    def maker(rng: np.random.Generator, n: int) -> List[object]:
        return rng.choice(pool, size=n).tolist()

    return maker


_VALUE_MAKERS: Dict[str, Callable[[np.random.Generator, int], List[object]]] = {
    "money": _money,
    "big_money": _big_money,
    "age": _age,
    "height": _height,
    "weight": _weight,
    "rating": _rating,
    "score": _score,
    "small_int": _small_int,
    "count_mid": _count_mid,
    "count_big": _count_big,
    "rate": _rate,
    "duration": _duration,
    "measure": _measure,
    "area": _area,
    "latitude": _latitude,
    "year": _year,
    "date": _date,
    "datetime": _datetime,
    "person_name": _person_name,
    "org_name": _org_name,
    "event_name": _event_name,
    "item_name": _item_name,
    "place_name": _place_name,
    "title": _title,
    "email": _email,
    "city": _choice_maker(CITIES),
    "gender": _choice_maker(GENDERS),
    "status": _choice_maker(STATUSES),
    "pay_method": _choice_maker(PAY_METHODS),
    "level": _choice_maker(LEVELS),
    "result": _choice_maker(RESULTS),
    "genre": _choice_maker(GENRES),
    "language": _choice_maker(LANGUAGES),
    "place_kind": _choice_maker(PLACE_KINDS),
    "org_category": _choice_maker(ORG_CATEGORIES),
    "item_category": _choice_maker(ITEM_CATEGORIES),
}
