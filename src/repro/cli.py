"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``build-corpus``     build a Spider-like NL2SQL corpus and save it as JSON
``build-benchmark``  run the full synthesizer over a corpus; save the pairs
``stats``            print Table-2/Table-3 style statistics for a benchmark
``train``            train a seq2vis variant on a benchmark; save the model
``translate``        translate an NL question with a saved model
``pipeline``         staged copilot: route → generate → verify → execute → repair
``judge``            judged evaluation: per-scenario × per-dimension accuracy
``serve``            run the batched HTTP inference service
``trace``            summarize a JSONL span export written by ``--trace``

``build-benchmark``, ``train``, ``translate``, ``pipeline``, and ``serve`` all accept
``--trace PATH`` to export a span tree of the run as JSONL (see
``docs/OBSERVABILITY.md``); ``trace summarize PATH`` renders it.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.nvbench import (
    NVBenchConfig,
    build_nvbench,
    load_nvbench_dir,
    load_nvbench_pairs,
    paper_scale_config,
    save_nvbench_pairs,
)
from repro.perf import BuildProfiler
from repro.spider.corpus import (
    CorpusConfig,
    build_spider_corpus,
    load_corpus,
    save_corpus,
)


def _open_tracer(path: Optional[str]):
    """``(tracer, exporter)`` for ``--trace PATH``; ``(None, None)`` off.

    The caller must ``exporter.close()`` (after the traced work) so the
    JSONL file is flushed before the command exits.
    """
    if not path:
        return None, None
    from repro.obs import JsonlExporter, Tracer

    exporter = JsonlExporter(path)
    return Tracer(exporter=exporter), exporter


def _close_tracer(exporter, path: Optional[str]) -> None:
    if exporter is not None:
        exporter.close()
        print(f"wrote {exporter.exported} spans to {path} "
              f"(render with: python -m repro trace summarize {path})")


def _corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--databases", type=int, default=40,
                        help="number of databases to generate")
    parser.add_argument("--pairs-per-db", type=int, default=16,
                        help="(NL, SQL) pairs per database")
    parser.add_argument("--row-scale", type=float, default=0.5,
                        help="row-count scale factor")
    parser.add_argument("--seed", type=int, default=7)


def _cmd_build_corpus(args: argparse.Namespace) -> int:
    config = CorpusConfig(
        num_databases=args.databases,
        pairs_per_database=args.pairs_per_db,
        row_scale=args.row_scale,
        seed=args.seed,
    )
    corpus = build_spider_corpus(config)
    save_corpus(corpus, args.out)
    print(f"wrote {len(corpus.pairs)} (NL, SQL) pairs over "
          f"{len(corpus.databases)} databases to {args.out}")
    return 0


def _cmd_build_benchmark(args: argparse.Namespace) -> int:
    # --out ending in .json keeps the classic single-file build; any
    # other path is a shard directory (docs/CORPUS.md).
    sharded = not args.out.endswith(".json")
    stream = args.stream or args.paper_scale
    if args.resume and not sharded:
        print("--resume needs a shard directory --out (not a .json file)",
              file=sys.stderr)
        return 2
    if stream and args.corpus:
        print("--stream/--paper-scale generate their own corpus; "
              "drop --corpus", file=sys.stderr)
        return 2
    corpus = load_corpus(args.corpus) if args.corpus else None
    if args.paper_scale:
        config = paper_scale_config(use_cache=not args.no_cache,
                                    seed=args.seed)
    else:
        config = NVBenchConfig(
            corpus=CorpusConfig(
                num_databases=args.databases,
                pairs_per_database=args.pairs_per_db,
                row_scale=args.row_scale,
                seed=args.seed,
            ),
            use_cache=not args.no_cache,
            seed=args.seed,
        )
    profiler = BuildProfiler()
    tracer, exporter = _open_tracer(args.trace)
    bench = build_nvbench(
        corpus=corpus, config=config, workers=args.workers,
        profiler=profiler, tracer=tracer,
        out=args.out if sharded else None,
        resume=args.resume, stream=stream,
        max_databases=args.max_databases,
    )
    _close_tracer(exporter, args.trace)
    if sharded:
        counters = profiler.report()["counters"]
        print(f"wrote {len(bench.pairs)} (NL, VIS) pairs over "
              f"{len(bench.databases)} database shards to {args.out} "
              f"(built {counters.get('shards_built', 0)}, "
              f"skipped clean {counters.get('shards_skipped_clean', 0)})")
    else:
        if not args.corpus:
            save_corpus(bench.corpus, args.out + ".corpus.json")
            print(f"wrote corpus to {args.out}.corpus.json")
        save_nvbench_pairs(bench, args.out)
        print(f"wrote {len(bench.pairs)} (NL, VIS) pairs "
              f"({len(bench.distinct_vis)} distinct vis) to {args.out}")
    # Pairs are saved first so a bad --profile path cannot lose the build.
    if args.profile:
        profiler.write_json(args.profile)
        print(f"wrote build profile to {args.profile}")
    return 0


def _load_bench(args: argparse.Namespace):
    """The benchmark named by --benchmark DIR or --corpus/--pairs.

    Returns ``None`` (with a message on stderr) when the flags don't add
    up; shard directories load lazily, so stats/training over a
    paper-scale benchmark never materialize it whole.
    """
    if args.benchmark:
        if args.corpus or args.pairs:
            print("--benchmark replaces --corpus/--pairs; pick one",
                  file=sys.stderr)
            return None
        return load_nvbench_dir(args.benchmark)
    if not (args.corpus and args.pairs):
        print("need either --benchmark DIR or both --corpus and --pairs",
              file=sys.stderr)
        return None
    corpus = load_corpus(args.corpus)
    return load_nvbench_pairs(corpus, args.pairs)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.stats.dataset_stats import dataset_summary
    from repro.stats.nl_stats import nl_vis_table

    bench = _load_bench(args)
    if bench is None:
        return 2
    summary = dataset_summary(bench.corpus)
    print(f"databases: {summary.n_databases}  tables: {summary.n_tables}  "
          f"domains: {summary.n_domains}")
    print(f"columns: {summary.n_columns} (avg {summary.avg_columns:.2f})  "
          f"rows: {summary.n_rows} (avg {summary.avg_rows:.1f})")
    print("column types:",
          {k: f"{v:.1%}" for k, v in summary.column_type_fractions().items()})
    print()
    for row in nl_vis_table(bench):
        print(f"{row.vis_type:17s} vis={row.n_vis:5d} pairs={row.n_pairs:6d} "
              f"avg words={row.avg_words:5.1f} BLEU={row.avg_bleu:.3f}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.harness import (
        ExperimentConfig, build_model, evaluate_model, make_datasets,
    )
    from repro.neural.persist import save_model
    from repro.neural.trainer import TrainConfig, train_model
    from repro.perf import TrainProfiler

    bench = _load_bench(args)
    if bench is None:
        return 2
    config = ExperimentConfig(
        embed_dim=args.embed_dim,
        hidden_dim=args.hidden_dim,
        train=TrainConfig(
            epochs=args.epochs, batch_size=args.batch_size,
            lr=args.lr, patience=args.patience, verbose=True,
            dtype=args.dtype,
        ),
    )
    train_set, val_set, test_set = make_datasets(bench, config)
    model = build_model(args.variant, train_set, config)
    print(f"training seq2vis ({args.variant}, {args.dtype}) "
          f"on {len(train_set)} pairs ...")
    profiler = TrainProfiler() if args.profile else None
    tracer, exporter = _open_tracer(args.trace)
    result = train_model(model, train_set, val_set, config.train,
                         profile=profiler, tracer=tracer)
    _close_tracer(exporter, args.trace)
    report = evaluate_model(model, test_set, bench)
    print(f"tree accuracy {report.tree_accuracy:.1%}  "
          f"result accuracy {report.result_accuracy:.1%}")
    written = save_model(model, train_set.in_vocab, train_set.out_vocab,
                         args.out, optimizer=result.optimizer)
    print(f"saved model to {written}")
    # Model first so a bad --profile path cannot lose the training run.
    if profiler is not None:
        profiler.write_json(args.profile)
        print(f"wrote train profile to {args.profile} "
              f"({profiler.tokens_per_sec:.0f} tokens/sec)")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    import json

    from repro.neural.persist import load_model
    from repro.serve import DecodeConfig, render_spec, translate_question

    corpus = load_corpus(args.corpus)
    if args.database not in corpus.databases:
        print(f"unknown database {args.database!r}; choices: "
              f"{sorted(corpus.databases)[:10]} ...", file=sys.stderr)
        return 2
    database = corpus.databases[args.database]
    try:
        decode = DecodeConfig(
            beam_width=args.beam_width, num_candidates=args.candidates
        )
    except ValueError as exc:
        print(f"bad decode options: {exc}", file=sys.stderr)
        return 2
    model, in_vocab, out_vocab = load_model(args.model, precision=args.precision)

    from repro.obs import traced

    tracer, exporter = _open_tracer(args.trace)
    with traced(tracer, "translate", db=args.database, format=args.format,
                decode=decode.cache_tag()):
        result = translate_question(
            model, in_vocab, out_vocab, args.question, database,
            tracer=tracer, decode=decode,
        )
        spec = None
        if result.tree is not None and args.format != "text":
            with traced(tracer, "render", format=args.format):
                spec = render_spec(result, database, args.format)
    _close_tracer(exporter, args.trace)
    print("predicted tokens:", " ".join(result.tokens))
    if result.candidates:
        for rank, candidate in enumerate(result.candidates):
            label = candidate.vis or f"({candidate.error})"
            flags = _candidate_flags(candidate, database)
            print(f"candidate {rank}: score={candidate.score:+.4f} {label}{flags}")
    if result.tree is None:
        print(f"(not a parseable vis tree: {result.error})")
        return 0
    print("predicted tree :", result.vis_text)
    if spec is not None:
        if isinstance(spec, str):
            print(spec)
        else:
            print(json.dumps(spec, indent=2, default=str))
    return 0


def _candidate_flags(candidate, database) -> str:
    """Table-1 legality marker for one ranked beam candidate."""
    from repro.core import validate_chart
    from repro.grammar.ast_nodes import VisQuery
    from repro.grammar.serialize import from_tokens

    try:
        tree = from_tokens(candidate.tokens)
    except Exception:
        return "  [unparseable]"
    if not isinstance(tree, VisQuery):
        return "  [not a vis]"
    validation = validate_chart(tree, database)
    if validation.ok:
        return ""
    return f"  [{validation.status}: {','.join(validation.codes())}]"


def _cmd_pipeline(args: argparse.Namespace) -> int:
    import json

    from repro.pipeline import Budget, Generator, Pipeline
    from repro.serve import BaselineTranslator

    corpus = load_corpus(args.corpus)
    if args.database and args.database not in corpus.databases:
        print(f"unknown database {args.database!r}; choices: "
              f"{sorted(corpus.databases)[:10]} ...", file=sys.stderr)
        return 2
    if args.model:
        from repro.serve import NeuralTranslator

        translator = NeuralTranslator.from_npz(args.model)
    else:
        translator = BaselineTranslator.from_name(args.baseline)
    try:
        budget = Budget(
            total_ms=args.budget_ms,
            stage_ms=args.stage_ms,
            max_rows=args.max_rows,
            k=args.k,
            repair=not args.no_repair,
        )
    except ValueError as exc:
        print(f"bad budget: {exc}", file=sys.stderr)
        return 2

    tracer, exporter = _open_tracer(args.trace)
    pipeline = Pipeline(
        corpus.databases, Generator(translator), budget=budget, tracer=tracer
    )
    result = pipeline.run(args.question, args.database or None)
    _close_tracer(exporter, args.trace)

    if args.json:
        print(json.dumps(result.to_json(), indent=2, default=str))
        return 0

    routed = "routed to" if result.routed else "database"
    print(f"{routed} {result.db_name}"
          + (f" (score {result.routes[0].score:.2f})" if result.routes else ""))
    for candidate in result.candidates:
        marks = []
        if candidate.repaired:
            marks.append("repaired: " + "; ".join(candidate.repairs))
        if candidate.violations:
            marks.append(",".join(v.code for v in candidate.violations))
        if candidate.execution is not None and candidate.execution.ok:
            rows = candidate.execution.rows
            marks.append(f"{rows} rows" + (" (truncated)" if
                                           candidate.execution.truncated else ""))
        suffix = f"  [{' | '.join(marks)}]" if marks else ""
        label = candidate.vis_text or f"({candidate.error})"
        print(f"  {candidate.status:9s} score={candidate.score:+.3f} "
              f"{label}{suffix}")
    print(f"charts: {len(result.charts)} valid"
          + (" (ambiguous question)" if result.ambiguous else ""))
    timings = "  ".join(
        f"{name}={ms:.1f}ms" for name, ms in sorted(result.stage_timings.items())
    )
    print(f"stages: {timings}")
    if result.partial:
        print(f"budget exhausted during {result.timed_out!r}; partial result")
    return 0


def _cmd_judge(args: argparse.Namespace) -> int:
    import json

    from repro.eval import (
        format_matrix,
        judge_matrix,
        run_scenario,
        scenario_names,
    )

    bench = _load_bench(args)
    if bench is None:
        return 2
    names = args.scenario or scenario_names()
    unknown = sorted(set(names) - set(scenario_names()))
    if unknown:
        print(f"unknown scenario(s) {unknown}; choices: {scenario_names()}",
              file=sys.stderr)
        return 2
    if args.model:
        from repro.serve import NeuralTranslator

        translator = NeuralTranslator.from_npz(args.model)
    else:
        from repro.serve import BaselineTranslator

        translator = BaselineTranslator.from_name(args.baseline)

    tracer, exporter = _open_tracer(args.trace)
    reports = [
        run_scenario(
            name, bench, translator=translator, k=args.k,
            max_examples=args.max_examples, tracer=tracer,
        )
        for name in names
    ]
    _close_tracer(exporter, args.trace)

    matrix = judge_matrix(reports)
    if args.out:
        merged = {}
        if os.path.exists(args.out):
            with open(args.out) as handle:
                merged = json.load(handle)
        merged["judged"] = matrix
        with open(args.out, "w") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
        print(f"merged judged matrix into {args.out}")
    if args.json:
        print(json.dumps(
            {**matrix, "reports": [report.to_json() for report in reports]},
            indent=2, default=str,
        ))
        return 0
    print(format_matrix(reports))
    for report in reports:
        repaired = report.counters.get("repaired_total", 0)
        born = report.counters.get("born_legal_total", 0)
        print(f"{report.scenario}: {len(report.examples)} examples, "
              f"{repaired} repaired-to-legal vs {born} born-legal answers")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import InferenceServer, ModelRegistry, ServerConfig

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    corpus = load_corpus(args.corpus)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        flush_interval=args.flush_ms / 1000.0,
        max_queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        cache_size=args.cache_size,
        encoder_cache_size=args.encoder_cache_size,
        default_format=args.format,
        default_beam_width=args.beam_width,
    )
    if args.workers > 1:
        return _serve_pool(args, corpus, config)

    registry = ModelRegistry()
    for spec in args.model or []:
        name, _, path = spec.partition("=")
        if not name or not path:
            print(f"--model wants NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        registry.load_npz(name, path, precision=args.precision)
    if args.baselines or not len(registry):
        registry.register_baselines()
    if args.default:
        try:
            registry.set_default(args.default)
        except KeyError:
            print(f"unknown default model {args.default!r}; "
                  f"registered: {registry.names()}", file=sys.stderr)
            return 2
    if args.warm:
        for name, seconds in registry.warm(corpus.databases).items():
            print(f"warmed {name} in {seconds * 1000:.1f} ms")

    tracer, exporter = _open_tracer(args.trace)
    server = InferenceServer(
        registry, corpus.databases, config=config, tracer=tracer
    )

    async def _main() -> None:
        host, port = await server.start()
        print(f"serving {registry.names()} on http://{host}:{port} "
              f"(batch<={config.max_batch_size}, flush {args.flush_ms}ms, "
              f"queue {config.max_queue_depth})")
        try:
            await server._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            # Runs inside the same loop on Ctrl-C: drain, then exit.
            await server.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # Pre-3.11 asyncio delivers Ctrl-C as a plain KeyboardInterrupt;
        # 3.11+ cancels _main instead, which drains via its finally and
        # returns here normally.
        pass
    _close_tracer(exporter, args.trace)
    print("server drained; bye")
    return 0


def _serve_pool(args: argparse.Namespace, corpus, config) -> int:
    """``serve --workers N`` (N > 1): the multi-process front/worker pool.

    With ``--trace`` the argument names a **directory**: the front
    writes ``front.jsonl`` and each worker ``worker-N.jsonl``, and
    ``repro trace summarize DIR`` stitches them into one tree.
    """
    import asyncio
    from pathlib import Path

    from repro.serve import PoolConfig, WorkerPool

    tracer = exporter = None
    if args.trace:
        from repro.obs import JsonlExporter, Tracer

        Path(args.trace).mkdir(parents=True, exist_ok=True)
        exporter = JsonlExporter(Path(args.trace) / "front.jsonl")
        tracer = Tracer(exporter=exporter)

    pool = WorkerPool(
        corpus.databases,
        PoolConfig(
            workers=args.workers,
            host=args.host,
            port=args.port,
            worker=config,
            warm=args.warm,
            trace_dir=args.trace,
        ),
        tracer=tracer,
    )
    models = 0
    for spec in args.model or []:
        name, _, path = spec.partition("=")
        if not name or not path:
            print(f"--model wants NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        pool.load_npz(name, path, precision=args.precision)
        models += 1
    if args.baselines or not models:
        pool.register_baselines()
    if args.default:
        pool.set_default(args.default)

    async def _main() -> None:
        host, port = await pool.start()
        print(f"serving on http://{host}:{port} with {args.workers} decode "
              f"workers (shared weights; batch<={config.max_batch_size} "
              f"per worker, flush {args.flush_ms}ms)")
        try:
            await pool._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await pool.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    _close_tracer(exporter, args.trace and str(Path(args.trace) / "front.jsonl"))
    print("pool drained; bye")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import load_spans, summarize

    try:
        records = load_spans(args.path)
    except FileNotFoundError:
        print(f"no such span export: {args.path}", file=sys.stderr)
        return 2
    if not records:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    try:
        print(summarize(
            records,
            trace_id=args.trace_id,
            min_ms=args.min_ms,
            max_depth=args.max_depth,
            max_traces=args.max_traces,
        ))
    except BrokenPipeError:
        # the reader (head, a pager) closed the pipe; hand it a devnull
        # stdout so the interpreter's exit flush stays quiet too
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="nvBench reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-corpus", help="generate a Spider-like corpus")
    _corpus_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_build_corpus)

    p = sub.add_parser("build-benchmark", help="synthesize an nvBench-style benchmark")
    _corpus_args(p)
    p.add_argument("--corpus", help="reuse a saved corpus JSON")
    p.add_argument("--out", required=True,
                   help="a .json file for the classic single-file build, "
                        "or a directory for the sharded, resumable build "
                        "(docs/CORPUS.md)")
    p.add_argument("--workers", type=int, default=1,
                   help="shard the build by database over N processes")
    p.add_argument("--resume", action="store_true",
                   help="reuse clean shards from a previous build to the "
                        "same --out directory (content keys re-verified)")
    p.add_argument("--stream", action="store_true",
                   help="generate the corpus one database at a time "
                        "(bounded memory; requires a directory --out)")
    p.add_argument("--paper-scale", action="store_true",
                   help="the paper-shape streamed build: 153 databases, "
                        ">=25k pairs (implies --stream)")
    p.add_argument("--max-databases", type=int,
                   help="cap the streamed database count (CI smoke runs)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the execution-result cache")
    p.add_argument("--profile",
                   help="write a JSON build profile (stage timings, cache stats)")
    p.add_argument("--trace",
                   help="write a JSONL span export of the build (one trace: "
                        "stages, shards, per-pair synthesis)")
    p.set_defaults(func=_cmd_build_benchmark)

    p = sub.add_parser("stats", help="print benchmark statistics")
    p.add_argument("--benchmark",
                   help="sharded benchmark directory written by "
                        "build-benchmark --out DIR (replaces "
                        "--corpus/--pairs; loads lazily)")
    p.add_argument("--corpus")
    p.add_argument("--pairs")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("train", help="train a seq2vis model")
    p.add_argument("--benchmark",
                   help="sharded benchmark directory written by "
                        "build-benchmark --out DIR (replaces "
                        "--corpus/--pairs; loads lazily)")
    p.add_argument("--corpus")
    p.add_argument("--pairs")
    p.add_argument("--variant", choices=("basic", "attention", "copy"),
                   default="attention")
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--batch-size", type=int, default=24)
    p.add_argument("--lr", type=float, default=5e-3)
    p.add_argument("--patience", type=int, default=5)
    p.add_argument("--embed-dim", type=int, default=56)
    p.add_argument("--hidden-dim", type=int, default=96)
    p.add_argument("--dtype", choices=("float32", "float64"),
                   default="float32",
                   help="training dtype (float64 reproduces the reference "
                        "numerics exactly)")
    p.add_argument("--profile",
                   help="write a JSON training profile (tokens/sec, "
                        "step-time histogram, per-epoch breakdown)")
    p.add_argument("--trace",
                   help="write a JSONL span export of the run (train → "
                        "epoch → step/evaluate spans)")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("translate", help="translate one NL question")
    p.add_argument("--corpus", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--database", required=True)
    p.add_argument("--format", default="text",
                   choices=("text", "vega-lite", "echarts", "plotly",
                            "ascii", "ggplot"),
                   help="also emit the rendered spec in this backend format")
    p.add_argument("--beam-width", type=int, default=1,
                   help="beam search width (1 = greedy decode)")
    p.add_argument("--candidates", type=int, default=1,
                   help="print this many ranked beam candidates "
                        "(requires --beam-width > 1)")
    p.add_argument("--precision",
                   choices=("float32", "float16", "int8", "float64"),
                   help="re-store the loaded weights at this precision "
                        "(int8/float16 shrink memory, see "
                        "docs/PERFORMANCE.md)")
    p.add_argument("--trace",
                   help="write a JSONL span export of the translation "
                        "(encode/decode/parse/render)")
    p.add_argument("question")
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser(
        "pipeline",
        help="staged copilot: route -> generate -> verify -> execute -> repair",
    )
    p.add_argument("--corpus", required=True,
                   help="corpus JSON with the candidate databases")
    p.add_argument("--model",
                   help="saved seq2vis .npz to generate with "
                        "(default: the --baseline rule system)")
    p.add_argument("--baseline", default="deepeye",
                   choices=("deepeye", "nl4dv"),
                   help="rule-based generator when no --model is given")
    p.add_argument("--database",
                   help="pin the target database (omit to let the route "
                        "stage pick one)")
    p.add_argument("--k", type=int, default=3,
                   help="ranked candidate charts to return")
    p.add_argument("--budget-ms", type=float,
                   help="whole-request wall-clock budget in milliseconds")
    p.add_argument("--stage-ms", type=float,
                   help="per-stage wall-clock budget in milliseconds")
    p.add_argument("--max-rows", type=int, default=1000,
                   help="truncate executed results past this many rows")
    p.add_argument("--no-repair", action="store_true",
                   help="report near-miss candidates instead of repairing")
    p.add_argument("--json", action="store_true",
                   help="print the full result as JSON")
    p.add_argument("--trace",
                   help="write a JSONL span export (one span per stage: "
                        "route/generate/verify/execute/repair)")
    p.add_argument("question")
    p.set_defaults(func=_cmd_pipeline)

    p = sub.add_parser(
        "judge",
        help="judged evaluation: per-scenario x per-dimension accuracy matrix",
    )
    p.add_argument("--benchmark",
                   help="sharded benchmark directory written by "
                        "build-benchmark --out DIR (replaces "
                        "--corpus/--pairs; loads lazily)")
    p.add_argument("--corpus")
    p.add_argument("--pairs")
    p.add_argument("--scenario", action="append",
                   help="scenario to judge (repeatable; default: all "
                        "registered — see docs/EVALUATION.md)")
    p.add_argument("--model",
                   help="saved seq2vis .npz to judge "
                        "(default: the --baseline rule system)")
    p.add_argument("--baseline", default="deepeye",
                   choices=("deepeye", "nl4dv"),
                   help="rule-based generator when no --model is given")
    p.add_argument("--k", type=int, default=3,
                   help="pipeline candidates ranked per question")
    p.add_argument("--max-examples", type=int,
                   help="judge at most this many examples per scenario "
                        "(multi-turn sessions are never cut open)")
    p.add_argument("--json", action="store_true",
                   help="print the matrix plus per-example verdicts as JSON")
    p.add_argument("--out",
                   help="merge the matrix into this JSON file under the "
                        "'judged' key (the BENCH_eval.json shape)")
    p.add_argument("--trace",
                   help="write a JSONL span export (pipeline spans for "
                        "every judged question)")
    p.set_defaults(func=_cmd_judge)

    p = sub.add_parser("serve", help="run the HTTP inference service")
    p.add_argument("--corpus", required=True,
                   help="corpus JSON with the served databases")
    p.add_argument("--model", action="append", metavar="NAME=PATH",
                   help="register a saved seq2vis .npz (repeatable)")
    p.add_argument("--baselines", action="store_true",
                   help="also register the DeepEye/NL4DV baselines "
                        "(automatic when no --model is given)")
    p.add_argument("--default", help="model name requests use by default")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--max-batch-size", type=int, default=8,
                   help="requests coalesced into one forward pass")
    p.add_argument("--flush-ms", type=float, default=5.0,
                   help="micro-batch flush deadline in milliseconds")
    p.add_argument("--queue-depth", type=int, default=128,
                   help="queued requests before returning 429")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request deadline in seconds (504 past it)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="response-cache entries; 0 disables")
    p.add_argument("--encoder-cache-size", type=int, default=256,
                   help="encoder-output cache entries; 0 disables")
    p.add_argument("--beam-width", type=int, default=1,
                   help="default decode beam width for requests that "
                        "don't pick one (1 = greedy)")
    p.add_argument("--precision",
                   choices=("float32", "float16", "int8", "float64"),
                   help="re-store every --model's weights at this "
                        "precision at load time")
    p.add_argument("--format", default="text",
                   choices=("text", "vega-lite", "echarts", "plotly",
                            "ascii", "ggplot"),
                   help="default render format for responses")
    p.add_argument("--warm", action="store_true",
                   help="run one dummy request per model before serving")
    p.add_argument("--workers", type=int, default=1,
                   help="decode worker processes; 1 (default) serves "
                        "single-process, N>1 runs the front/worker pool "
                        "with weights in shared memory")
    p.add_argument("--trace",
                   help="write a JSONL span export: one trace per request "
                        "(http.request → batch.wait/decode/render); with "
                        "--workers N>1 this names a directory holding "
                        "front.jsonl + worker-N.jsonl")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("trace", help="inspect JSONL span exports")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summarize",
        help="render a span tree + per-stage latency table from an export",
    )
    ps.add_argument("path",
                    help="JSONL file written by a --trace flag, or a "
                         "directory of per-process exports (the "
                         "multi-worker pool's front.jsonl + "
                         "worker-N.jsonl stitch into one tree)")
    ps.add_argument("--trace-id", help="render only this trace")
    ps.add_argument("--min-ms", type=float, default=0.0,
                    help="hide spans shorter than this many milliseconds")
    ps.add_argument("--max-depth", type=int,
                    help="truncate the span tree below this depth")
    ps.add_argument("--max-traces", type=int, default=5,
                    help="render at most this many traces (longest first)")
    ps.set_defaults(func=_cmd_trace_summarize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
