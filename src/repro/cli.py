"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``build-corpus``     build a Spider-like NL2SQL corpus and save it as JSON
``build-benchmark``  run the full synthesizer over a corpus; save the pairs
``stats``            print Table-2/Table-3 style statistics for a benchmark
``train``            train a seq2vis variant on a benchmark; save the model
``translate``        translate an NL question with a saved model
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.nvbench import (
    NVBenchConfig,
    build_nvbench,
    load_nvbench_pairs,
    save_nvbench_pairs,
)
from repro.perf import BuildProfiler
from repro.spider.corpus import (
    CorpusConfig,
    build_spider_corpus,
    load_corpus,
    save_corpus,
)


def _corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--databases", type=int, default=40,
                        help="number of databases to generate")
    parser.add_argument("--pairs-per-db", type=int, default=16,
                        help="(NL, SQL) pairs per database")
    parser.add_argument("--row-scale", type=float, default=0.5,
                        help="row-count scale factor")
    parser.add_argument("--seed", type=int, default=7)


def _cmd_build_corpus(args: argparse.Namespace) -> int:
    config = CorpusConfig(
        num_databases=args.databases,
        pairs_per_database=args.pairs_per_db,
        row_scale=args.row_scale,
        seed=args.seed,
    )
    corpus = build_spider_corpus(config)
    save_corpus(corpus, args.out)
    print(f"wrote {len(corpus.pairs)} (NL, SQL) pairs over "
          f"{len(corpus.databases)} databases to {args.out}")
    return 0


def _cmd_build_benchmark(args: argparse.Namespace) -> int:
    corpus = load_corpus(args.corpus) if args.corpus else None
    config = NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=args.databases,
            pairs_per_database=args.pairs_per_db,
            row_scale=args.row_scale,
            seed=args.seed,
        ),
        use_cache=not args.no_cache,
        seed=args.seed,
    )
    profiler = BuildProfiler()
    bench = build_nvbench(
        corpus=corpus, config=config, workers=args.workers, profiler=profiler
    )
    if not args.corpus:
        save_corpus(bench.corpus, args.out + ".corpus.json")
        print(f"wrote corpus to {args.out}.corpus.json")
    save_nvbench_pairs(bench, args.out)
    print(f"wrote {len(bench.pairs)} (NL, VIS) pairs "
          f"({len(bench.distinct_vis)} distinct vis) to {args.out}")
    # Pairs are saved first so a bad --profile path cannot lose the build.
    if args.profile:
        profiler.write_json(args.profile)
        print(f"wrote build profile to {args.profile}")
    return 0


def _load_bench(corpus_path: str, pairs_path: str):
    corpus = load_corpus(corpus_path)
    return load_nvbench_pairs(corpus, pairs_path)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.stats.dataset_stats import dataset_summary
    from repro.stats.nl_stats import nl_vis_table

    bench = _load_bench(args.corpus, args.pairs)
    summary = dataset_summary(bench.corpus)
    print(f"databases: {summary.n_databases}  tables: {summary.n_tables}  "
          f"domains: {summary.n_domains}")
    print(f"columns: {summary.n_columns} (avg {summary.avg_columns:.2f})  "
          f"rows: {summary.n_rows} (avg {summary.avg_rows:.1f})")
    print("column types:",
          {k: f"{v:.1%}" for k, v in summary.column_type_fractions().items()})
    print()
    for row in nl_vis_table(bench):
        print(f"{row.vis_type:17s} vis={row.n_vis:5d} pairs={row.n_pairs:6d} "
              f"avg words={row.avg_words:5.1f} BLEU={row.avg_bleu:.3f}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.harness import (
        ExperimentConfig, build_model, evaluate_model, make_datasets,
    )
    from repro.neural.persist import save_model
    from repro.neural.trainer import TrainConfig, train_model

    bench = _load_bench(args.corpus, args.pairs)
    config = ExperimentConfig(
        embed_dim=args.embed_dim,
        hidden_dim=args.hidden_dim,
        train=TrainConfig(
            epochs=args.epochs, batch_size=args.batch_size,
            lr=args.lr, patience=args.patience, verbose=True,
        ),
    )
    train_set, val_set, test_set = make_datasets(bench, config)
    model = build_model(args.variant, train_set, config)
    print(f"training seq2vis ({args.variant}) on {len(train_set)} pairs ...")
    train_model(model, train_set, val_set, config.train)
    report = evaluate_model(model, test_set, bench)
    print(f"tree accuracy {report.tree_accuracy:.1%}  "
          f"result accuracy {report.result_accuracy:.1%}")
    save_model(model, train_set.in_vocab, train_set.out_vocab, args.out)
    print(f"saved model to {args.out}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from repro.grammar.serialize import from_tokens, to_text
    from repro.neural.data import SEP_TOKEN, schema_tokens
    from repro.neural.model import Batch
    from repro.neural.persist import load_model
    from repro.neural.slots import fill_value_slots
    from repro.nlp.tokenize import tokenize_nl

    import numpy as np

    corpus = load_corpus(args.corpus)
    if args.database not in corpus.databases:
        print(f"unknown database {args.database!r}; choices: "
              f"{sorted(corpus.databases)[:10]} ...", file=sys.stderr)
        return 2
    database = corpus.databases[args.database]
    model, in_vocab, out_vocab = load_model(args.model)

    src_tokens = tokenize_nl(args.question) + [SEP_TOKEN] + schema_tokens(database)
    src_ids = np.array([in_vocab.encode(src_tokens)])
    src_out = np.array([[out_vocab.id_of(t) for t in src_tokens]])
    batch = Batch(
        src_ids=src_ids,
        src_mask=np.ones_like(src_ids, dtype=float),
        src_out_ids=src_out,
        tgt_in=np.zeros((1, 1), dtype=np.int64),
        tgt_out=np.zeros((1, 1), dtype=np.int64),
        tgt_mask=np.zeros((1, 1)),
    )
    decoded = model.greedy_decode(batch, out_vocab.bos_id, out_vocab.eos_id)[0]
    tokens = out_vocab.decode(decoded)
    print("predicted tokens:", " ".join(tokens))
    try:
        tree = from_tokens(tokens)
        tree = fill_value_slots(tree, args.question, database)
        print("predicted tree :", to_text(tree))
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        print(f"(not a parseable vis tree: {exc})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="nvBench reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-corpus", help="generate a Spider-like corpus")
    _corpus_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_build_corpus)

    p = sub.add_parser("build-benchmark", help="synthesize an nvBench-style benchmark")
    _corpus_args(p)
    p.add_argument("--corpus", help="reuse a saved corpus JSON")
    p.add_argument("--out", required=True)
    p.add_argument("--workers", type=int, default=1,
                   help="shard the build by database over N processes")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the execution-result cache")
    p.add_argument("--profile",
                   help="write a JSON build profile (stage timings, cache stats)")
    p.set_defaults(func=_cmd_build_benchmark)

    p = sub.add_parser("stats", help="print benchmark statistics")
    p.add_argument("--corpus", required=True)
    p.add_argument("--pairs", required=True)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("train", help="train a seq2vis model")
    p.add_argument("--corpus", required=True)
    p.add_argument("--pairs", required=True)
    p.add_argument("--variant", choices=("basic", "attention", "copy"),
                   default="attention")
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--batch-size", type=int, default=24)
    p.add_argument("--lr", type=float, default=5e-3)
    p.add_argument("--patience", type=int, default=5)
    p.add_argument("--embed-dim", type=int, default=56)
    p.add_argument("--hidden-dim", type=int, default=96)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("translate", help="translate one NL question")
    p.add_argument("--corpus", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--database", required=True)
    p.add_argument("question")
    p.set_defaults(func=_cmd_translate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
