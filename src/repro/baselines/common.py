"""Shared NL-analysis helpers for the rule-based baselines."""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.storage.schema import Column, Database, Table


def _phrase(name: str) -> str:
    return name.replace("_", " ")


def match_columns(nl: str, database: Database) -> Dict[str, List[Column]]:
    """Columns whose name (as a phrase) appears in the NL, per table.

    Columns are returned in *mention order* (position of the first match
    in the text) — both baselines lay out axes by mention order, which
    is how the original systems behave.
    """
    lowered = nl.lower()
    matches: Dict[str, List[Tuple[int, Column]]] = {}
    for table_name, column in database.iter_columns():
        phrase = _phrase(column.name).lower()
        found = re.search(rf"\b{re.escape(phrase)}\b", lowered)
        if found:
            matches.setdefault(table_name, []).append((found.start(), column))
    return {
        table: [column for _, column in sorted(entries, key=lambda e: e[0])]
        for table, entries in matches.items()
    }


def pick_primary_table(
    nl: str, database: Database, matches: Dict[str, List[Column]]
) -> Optional[str]:
    """The table with the most matched columns; table-name mentions break
    ties (both baselines are single-table systems)."""
    lowered = nl.lower()
    best: Optional[str] = None
    best_score = -1.0
    for table_name, table in database.tables.items():
        score = float(len(matches.get(table_name, [])))
        if re.search(rf"\b{re.escape(_phrase(table_name))}", lowered):
            score += 1.5
        if score > best_score and (score > 0 or best is None):
            best = table_name
            best_score = score
    return best


AGGREGATE_KEYWORDS: Tuple[Tuple[str, str], ...] = (
    (r"\baverage\b|\bmean\b", "avg"),
    (r"\btotal\b|\bsum\b", "sum"),
    (r"\bmaximum\b|\bhighest\b|\blargest\b", "max"),
    (r"\bminimum\b|\blowest\b|\bsmallest\b", "min"),
    (r"\bhow many\b|\bnumber of\b|\bcount\b", "count"),
)


def detect_aggregate(nl: str) -> Optional[str]:
    """The aggregate function implied by task keywords, if any."""
    lowered = nl.lower()
    for pattern, agg in AGGREGATE_KEYWORDS:
        if re.search(pattern, lowered):
            return agg
    return None


CHART_KEYWORDS: Tuple[Tuple[str, str], ...] = (
    (r"stacked bar", "stacked bar"),
    (r"grouped line|multi-?series line|line per group|grouping line", "grouping line"),
    (r"grouped scatter|colored scatter|scatter .{0,20}group", "grouping scatter"),
    (r"\bbar\b|histogram|compar", "bar"),
    (r"\bpie\b|proportion|fraction|percentage", "pie"),
    (r"\bline\b|trend|over time", "line"),
    (r"scatter|correlat|relationship", "scatter"),
)


def detect_chart_type(nl: str) -> Optional[str]:
    """An explicitly or implicitly requested chart type, if any."""
    lowered = nl.lower()
    for pattern, vis_type in CHART_KEYWORDS:
        if re.search(pattern, lowered):
            return vis_type
    return None


def detect_bin_unit(nl: str) -> Optional[str]:
    """A temporal binning unit mentioned in the text, if any."""
    lowered = nl.lower()
    for unit in ("year", "quarter", "month", "weekday", "hour", "minute"):
        if re.search(rf"\b{unit}", lowered):
            return unit
    if "day of the week" in lowered:
        return "weekday"
    return None


def detect_sort(nl: str) -> Optional[str]:
    """A sort direction implied by the text ('asc'/'desc'), if any."""
    lowered = nl.lower()
    if re.search(r"descending|high to low|decreasing", lowered):
        return "desc"
    if re.search(r"ascending|low to high|increasing|alphabetical", lowered):
        return "asc"
    if re.search(r"\bsort|\border(ed)? by|\brank", lowered):
        return "desc"
    return None


def detect_topk(nl: str) -> Optional[int]:
    """The k of a 'top k' request, if present."""
    match = re.search(r"\btop\s+(\d+)", nl.lower())
    if match:
        return int(match.group(1))
    return None
