"""State-of-the-art baselines the paper compares against (Section 4.4).

* :mod:`deepeye_baseline` — DeepEye's keyword-search approach: match NL
  keywords to columns, enumerate rule-valid charts, rank with the
  learned good/bad scorer, return top-k.  Cannot handle Join, Nested, or
  Filter queries (as noted in the paper).
* :mod:`nl4dv_baseline` — NL4DV's semantic-parser approach: detect
  attributes, explicit chart-type words, aggregation/sort keywords, and
  build a single analytic specification.  Cannot handle Join or Nested
  queries.
"""

from repro.baselines.deepeye_baseline import DeepEyeBaseline
from repro.baselines.nl4dv_baseline import NL4DVBaseline

#: Registry names → baseline classes, as served by ``repro.serve``'s
#: :class:`~repro.serve.registry.ModelRegistry` next to neural models.
BASELINES = {
    "deepeye": DeepEyeBaseline,
    "nl4dv": NL4DVBaseline,
}

__all__ = ["BASELINES", "DeepEyeBaseline", "NL4DVBaseline"]
