"""DeepEye: keyword-search visualization recommendation (Luo et al.).

The baseline from Section 4.4: it treats the NL query as a *bag of
keywords*, matches them against one table's columns, enumerates every
rule-valid chart over the matched columns, scores candidates with the
learned good/bad model, and returns the top-k list.  It has no notion of
Join, Nested, or Filter semantics — exactly the limitation the paper
reports — so any gold query relying on those can at best be matched by a
filter-free guess.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

from repro.baselines.common import (
    detect_bin_unit,
    match_columns,
    pick_primary_table,
)
from repro.core.filter_model import DeepEyeFilter, extract_features
from repro.core.vis_rules import (
    GROUP_BINNING,
    GROUP_GROUPING,
    GROUP_NONE,
    arrange_axes,
    chart_specs_for,
)
from repro.grammar.ast_nodes import Attribute, Group, QueryCore, VisQuery
from repro.storage.schema import Column, Database


class DeepEyeBaseline:
    """Keyword search → ranked chart recommendations."""

    def __init__(self, chart_filter: Optional[DeepEyeFilter] = None):
        self.chart_filter = chart_filter or DeepEyeFilter()

    def predict(self, nl: str, database: Database, k: int = 1) -> List[VisQuery]:
        """Top-*k* recommended charts for the keyword content of *nl*."""
        matches = match_columns(nl, database)
        table_name = pick_primary_table(nl, database, matches)
        if table_name is None:
            return []
        table = database.table(table_name)
        columns = matches.get(table_name, [])
        if not columns:
            # Fall back to the table's first few non-id columns.
            columns = [
                column for column in table.columns
                if not column.name.endswith("_id")
            ][:3]
        bin_unit = detect_bin_unit(nl)
        candidates = self._enumerate(table_name, columns, database, bin_unit)
        scored: List[Tuple[float, int, VisQuery]] = []
        for index, vis in enumerate(candidates):
            features = extract_features(vis, database)
            if features is None:
                continue
            scored.append((self.chart_filter.score(features), index, vis))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [vis for _, _, vis in scored[:k]]

    def _enumerate(
        self,
        table_name: str,
        columns: List[Column],
        database: Database,
        bin_unit: Optional[str],
    ) -> List[VisQuery]:
        out: List[VisQuery] = []
        max_size = min(3, len(columns))
        for size in range(1, max_size + 1):
            for combo in combinations(columns, size):
                signature = [column.ctype for column in combo]
                attrs = [
                    Attribute(column=column.name, table=table_name)
                    for column in combo
                ]
                for spec in chart_specs_for(signature):
                    vis = self._build(attrs, signature, spec, bin_unit)
                    if vis is not None:
                        out.append(vis)
        deduped = dict.fromkeys(out)
        return list(deduped)

    def _build(self, attrs, signature, spec, bin_unit) -> Optional[VisQuery]:
        if spec.count_measure:
            x = attrs[0]
            measure = Attribute(column="*", table=x.table, agg="count")
            color = None
        else:
            axes = arrange_axes(list(zip(attrs, signature)), spec)
            x = axes[0]
            color = axes[2] if spec.arity == 3 else None
            measure = axes[1]
            if spec.needs_aggregate and not measure.is_aggregated:
                # Keyword search has no aggregation semantics: DeepEye
                # defaults to SUM when a measure must be aggregated.
                measure = Attribute(column=measure.column, table=measure.table, agg="sum")
        groups = []
        if spec.x_group == GROUP_GROUPING:
            groups.append(Group(kind="grouping", attr=x.bare()))
        elif spec.x_group == GROUP_BINNING:
            x_type = signature[attrs.index(x)] if x in attrs else "T"
            unit = bin_unit if (bin_unit and x_type == "T") else (
                "year" if x_type == "T" else "numeric"
            )
            groups.append(Group(kind="binning", attr=x.bare(), bin_unit=unit))
        if color is not None and spec.color_group == GROUP_GROUPING:
            groups.append(Group(kind="grouping", attr=color.bare()))
        select = (x.bare(), measure) + ((color.bare(),) if color is not None else ())
        try:
            return VisQuery(
                vis_type=spec.vis_type,
                body=QueryCore(select=select, groups=tuple(groups)),
            )
        except ValueError:
            return None
