"""NL4DV: semantic-parser based NL→VIS (Narechania et al., TVCG 2021).

The second baseline from Section 4.4.  NL4DV shallow-parses the query:
it detects *attributes* (column mentions), *tasks* (aggregates, sorts,
simple value filters), and an optional *explicit chart type*, then emits
one analytic specification.  Unlike DeepEye it understands filters and
sorts, but it is still single-table — Join and Nested queries are out of
scope (as the paper notes).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.baselines.common import (
    detect_aggregate,
    detect_bin_unit,
    detect_chart_type,
    detect_sort,
    detect_topk,
    match_columns,
    pick_primary_table,
)
from repro.core.vis_rules import (
    GROUP_BINNING,
    GROUP_GROUPING,
    arrange_axes,
    chart_specs_for,
)
from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Order,
    QueryCore,
    Superlative,
    VisQuery,
)
from repro.storage.schema import Column, Database


class NL4DVBaseline:
    """Shallow semantic parse → one visualization specification."""

    def predict(self, nl: str, database: Database) -> Optional[VisQuery]:
        """Parse *nl* and emit one visualization spec (or ``None``)."""
        matches = match_columns(nl, database)
        table_name = pick_primary_table(nl, database, matches)
        if table_name is None:
            return None
        table = database.table(table_name)
        columns = matches.get(table_name, [])[:3]
        if not columns:
            return None

        aggregate = detect_aggregate(nl)
        requested_type = detect_chart_type(nl)
        spec, attrs, signature = self._choose_spec(
            table_name, columns, aggregate, requested_type
        )
        if spec is None:
            return None

        if spec.count_measure or (aggregate == "count" and len(attrs) == 1):
            x = attrs[0]
            measure = Attribute(column="*", table=table_name, agg="count")
            color = None
        else:
            axes = arrange_axes(list(zip(attrs, signature)), spec)
            x = axes[0]
            color = axes[2] if spec.arity == 3 else None
            measure = axes[1]
            if spec.needs_aggregate and not measure.is_aggregated:
                measure = Attribute(
                    column=measure.column,
                    table=measure.table,
                    agg=aggregate if aggregate not in (None, "count") else "avg",
                )
        groups = []
        if spec.x_group == GROUP_GROUPING:
            groups.append(Group(kind="grouping", attr=x.bare()))
        elif spec.x_group == GROUP_BINNING:
            x_column = database.column(x.table, x.column)
            if x_column.ctype == "T":
                unit = detect_bin_unit(nl) or "year"
            else:
                unit = "numeric"
            groups.append(Group(kind="binning", attr=x.bare(), bin_unit=unit))
        if color is not None and spec.color_group == GROUP_GROUPING:
            groups.append(Group(kind="grouping", attr=color.bare()))

        select = (x.bare(), measure) + ((color.bare(),) if color is not None else ())
        filter_ = self._detect_filter(nl, table_name, table.columns)
        order = None
        superlative = None
        direction = detect_sort(nl)
        top_k = detect_topk(nl)
        if top_k is not None:
            superlative = Superlative(
                kind="most" if direction != "asc" else "least",
                k=top_k,
                attr=measure,
            )
        elif direction is not None and spec.vis_type in (
            "bar", "stacked bar", "line", "grouping line",
        ):
            target = measure if measure.is_aggregated else x.bare()
            order = Order(direction=direction, attr=target)
        try:
            return VisQuery(
                vis_type=spec.vis_type,
                body=QueryCore(
                    select=select,
                    groups=tuple(groups),
                    filter=filter_,
                    order=order,
                    superlative=superlative,
                ),
            )
        except ValueError:
            return None

    # ----- internals -------------------------------------------------------

    def _choose_spec(self, table_name, columns, aggregate, requested_type):
        signature = [column.ctype for column in columns]
        attrs = [
            Attribute(column=column.name, table=table_name) for column in columns
        ]
        specs = chart_specs_for(signature)
        if not specs and len(columns) > 2:
            columns = columns[:2]
            signature = signature[:2]
            attrs = attrs[:2]
            specs = chart_specs_for(signature)
        if not specs and len(columns) > 1:
            columns = columns[:1]
            signature = signature[:1]
            attrs = attrs[:1]
            specs = chart_specs_for(signature)
        if not specs:
            return None, attrs, signature
        # Honor an explicit chart-type request, then fall back to every
        # valid spec for the signature.
        preferred = specs
        if requested_type is not None:
            matching = [s for s in specs if s.vis_type == requested_type]
            if matching:
                preferred = matching
        if aggregate is not None:
            for spec in preferred:
                if spec.needs_aggregate or spec.count_measure:
                    return spec, attrs, signature
        # NL4DV's documented default: categorical + quantitative pairs are
        # aggregated (mean) specs even without an aggregation task — it
        # rarely emits raw per-row bars.  Scatter (Q+Q) and temporal lines
        # stay raw.
        if sorted(signature) == ["C", "Q"]:
            for spec in preferred:
                if spec.needs_aggregate:
                    return spec, attrs, signature
        return preferred[0], attrs, signature

    def _detect_filter(
        self, nl: str, table_name: str, columns
    ) -> Optional[Filter]:
        """Value filters: '<column> (greater|less) than <number>' and
        '<column> is <categorical value>' patterns."""
        lowered = nl.lower()
        for column in columns:
            phrase = column.name.replace("_", " ")
            if column.ctype == "Q":
                match = re.search(
                    rf"{re.escape(phrase)}[a-z\s]*?"
                    r"(greater than|less than|at least|at most|above|below|over|under)"
                    r"\s+(-?\d+(?:\.\d+)?)",
                    lowered,
                )
                if match:
                    op = {
                        "greater than": ">",
                        "above": ">",
                        "over": ">",
                        "less than": "<",
                        "below": "<",
                        "under": "<",
                        "at least": ">=",
                        "at most": "<=",
                    }[match.group(1)]
                    raw = match.group(2)
                    value = float(raw) if "." in raw else int(raw)
                    attr = Attribute(column=column.name, table=table_name)
                    return Filter(Comparison(op=op, attr=attr, value=value))
        return None
