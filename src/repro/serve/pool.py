"""Multi-process horizontal serving: a front proxy over N decode workers.

One asyncio process can accept thousands of connections, but numpy
decode holds the GIL — a slow beam batch stalls every other request.
:class:`WorkerPool` breaks that ceiling by running the accept/route loop
in the front process and the model forward passes in N **forked** worker
processes, each a full :class:`~repro.serve.server.InferenceServer`
(micro-batcher, caches, metrics) bound to its own loopback port:

* **Shared weights** — every registered neural model is packed once
  into a :mod:`multiprocessing.shared_memory` segment
  (:func:`repro.neural.shared.share_model`); workers attach and rebind
  parameter views, so resident weight bytes are O(1) in the worker
  count (int8/f16 models shrink the segment further).
* **Routing** — ``POST /translate`` / ``POST /pipeline`` round-robin
  over READY workers; each worker micro-batches its own stream.
* **Crash recovery** — a supervisor task detects dead workers, respawns
  them against the current segments, and in-flight requests that hit a
  broken connection are re-queued onto surviving workers.
* **Rolling hot-swap** — :meth:`WorkerPool.swap_model` packs the new
  weights into a fresh segment, then per worker: drain → ``POST
  /control/swap`` (the worker re-attaches and re-registers, firing its
  cache-invalidation listeners) → back in rotation.  The pool serves
  throughout; the old segment is unlinked when the last worker has
  moved.
* **Consolidated telemetry** — front ``GET /healthz`` reports per-worker
  liveness/queue depth; ``GET /metrics`` merges per-worker counters and
  histograms (:func:`repro.perf.merge_summaries`) next to the front's
  own; one trace threads front → worker → decode via ``X-Trace-Id`` /
  ``X-Parent-Span`` headers, one JSONL file per process
  (``repro trace summarize DIR`` stitches them).

``repro serve --workers N`` builds one of these; ``--workers 1`` keeps
the original single-process server.  See ``docs/SERVING.md``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.neural.shared import (
    SharedManifest,
    SharedModel,
    share_model,
    shared_segments_report,
)
from repro.obs.trace import SpanContext, Tracer, traced
from repro.perf import merge_summaries
from repro.serve.metrics import ServeMetrics
from repro.serve.server import (
    ServerConfig,
    _HTTPError,
    read_http_request,
    write_http_response,
)
from repro.storage.schema import Database

#: Workers MUST be forked: arguments (databases, manifests) pass by
#: address-space inheritance, and fork children share the parent's
#: ``resource_tracker``, so attaching to a segment never schedules a
#: spurious unlink (see :mod:`repro.neural.shared`).
_FORK = multiprocessing.get_context("fork")

STARTING = "starting"
READY = "ready"
DRAINING = "draining"
DEAD = "dead"


@dataclass
class PoolConfig:
    """Knobs for the front process and its workers."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0                      # front port; 0 = ephemeral
    worker: ServerConfig = field(default_factory=ServerConfig)
    warm: bool = False                 # run a dummy request per model at boot
    respawn: bool = True               # auto-restart crashed workers
    max_forward_attempts: int = 3      # tries across workers per request
    worker_startup_timeout: float = 60.0
    ready_wait_timeout: float = 15.0   # request wait for a READY worker
    heartbeat_interval: float = 0.25   # supervisor liveness poll
    drain_poll_interval: float = 0.02  # inflight poll during swap/shutdown
    shutdown_timeout: float = 10.0
    trace_dir: Optional[str] = None    # per-process JSONL span files


@dataclass
class WorkerHandle:
    """Front-side view of one decode worker."""

    worker_id: int
    process: multiprocessing.Process
    conn: object                       # parent end of the startup pipe
    port: int = 0
    state: str = STARTING
    inflight: int = 0
    restarts: int = 0

    def describe(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "pid": self.process.pid,
            "port": self.port,
            "state": self.state,
            "alive": self.process.is_alive(),
            "inflight": self.inflight,
            "restarts": self.restarts,
        }


class WorkerPool:
    """The front process: owns segments, workers, and the public socket.

    Duck-types the server interface :class:`BackgroundServer` expects
    (async ``start``/``shutdown``, ``host``/``port``), so tests and the
    CLI drive a pool exactly like a single-process server.
    """

    def __init__(
        self,
        databases: Dict[str, Database],
        config: Optional[PoolConfig] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.databases = databases
        self.config = config or PoolConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.tracer = tracer
        self.metrics = ServeMetrics()
        #: model name → owning SharedModel (the pool creates/unlinks).
        self._shared: Dict[str, SharedModel] = {}
        #: model name → manifest respawned workers attach with.
        self._manifests: Dict[str, SharedManifest] = {}
        self._baselines = False
        self._default: Optional[str] = None
        self._workers: List[WorkerHandle] = []
        self._rr = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = False
        self._swap_lock: Optional[asyncio.Lock] = None
        self.generation = 1
        self.host = self.config.host
        self.port = self.config.port

    # ----- model registration (before or after start) --------------------

    def share_model(
        self, name: str, model, in_vocab, out_vocab, default: bool = False
    ) -> SharedModel:
        """Pack *model* into a shared segment served under *name*.

        Before :meth:`start` this seeds the initial worker registry;
        afterwards use :meth:`swap_model`, which goes through the
        rolling drain.
        """
        shared = share_model(model, in_vocab, out_vocab)
        shared.set_generation(self.generation)
        self._shared[name] = shared
        self._manifests[name] = shared.manifest
        if default or self._default is None:
            self._default = name
        return shared

    def load_npz(
        self,
        name: str,
        path: str,
        precision: Optional[str] = None,
        default: bool = False,
    ) -> SharedModel:
        """Load a saved seq2vis archive into a shared segment."""
        from repro.neural.persist import load_model

        model, in_vocab, out_vocab = load_model(path, precision=precision)
        return self.share_model(
            name, model, in_vocab, out_vocab, default=default
        )

    def register_baselines(self) -> None:
        """Have every worker register the rule-based baselines."""
        self._baselines = True

    def set_default(self, name: str) -> None:
        """Default model for requests that do not name one."""
        self._default = name

    # ----- lifecycle ------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Fork workers, await their ports, bind the front socket."""
        self._loop = asyncio.get_running_loop()
        self._swap_lock = asyncio.Lock()
        if self.config.trace_dir:
            Path(self.config.trace_dir).mkdir(parents=True, exist_ok=True)
        for worker_id in range(self.config.workers):
            self._workers.append(self._fork_worker(worker_id))
        await asyncio.gather(
            *(self._await_ready(handle) for handle in self._workers)
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._supervisor = asyncio.ensure_future(self._supervise())
        return self.host, self.port

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, stop workers, unlink."""
        self._closing = True
        if self._loop is None:  # never started: only segments to release
            for shared in self._shared.values():
                shared.destroy()
            self._shared.clear()
            return
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = self._loop.time() + self.config.shutdown_timeout
        while (
            any(h.inflight for h in self._workers)
            and self._loop.time() < deadline
        ):
            await asyncio.sleep(self.config.drain_poll_interval)
        for handle in self._workers:
            if handle.process.is_alive():
                handle.process.terminate()  # SIGTERM → worker drains
        for handle in self._workers:
            await self._loop.run_in_executor(
                None, handle.process.join, self.config.shutdown_timeout
            )
            if handle.process.is_alive():
                handle.process.kill()
                await self._loop.run_in_executor(
                    None, handle.process.join, 5.0
                )
            handle.state = DEAD
            handle.conn.close()
        for shared in self._shared.values():
            shared.destroy()
        self._shared.clear()

    async def run(self) -> None:
        """Start and serve until cancelled, then shut down."""
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    @property
    def url(self) -> str:
        """Base URL once started."""
        return f"http://{self.host}:{self.port}"

    # ----- worker management ---------------------------------------------

    def _fork_worker(self, worker_id: int, restarts: int = 0) -> WorkerHandle:
        parent_conn, child_conn = _FORK.Pipe()
        process = _FORK.Process(
            target=_worker_main,
            name=f"repro-serve-worker-{worker_id}",
            args=(
                worker_id,
                child_conn,
                self.databases,
                {
                    name: manifest.to_json()
                    for name, manifest in self._manifests.items()
                },
                self._baselines,
                self._default,
                self.config.worker,
                self.config.warm,
                self.config.trace_dir,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.metrics.count("workers_spawned")
        return WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            restarts=restarts,
        )

    async def _await_ready(self, handle: WorkerHandle) -> None:
        loop = asyncio.get_running_loop()
        ok = await loop.run_in_executor(
            None, handle.conn.poll, self.config.worker_startup_timeout
        )
        if not ok:
            raise RuntimeError(
                f"worker {handle.worker_id} did not report ready within "
                f"{self.config.worker_startup_timeout}s"
            )
        try:
            message = await loop.run_in_executor(None, handle.conn.recv)
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"worker {handle.worker_id} died during startup: {exc}"
            ) from None
        if not (isinstance(message, tuple) and message[0] == "ready"):
            raise RuntimeError(
                f"worker {handle.worker_id} sent {message!r} instead of ready"
            )
        handle.port = int(message[1])
        handle.state = READY

    async def _supervise(self) -> None:
        """Detect dead workers; respawn them against current segments.

        One crashed (or crash-looping) worker must never take the
        supervisor down with it, so each respawn failure is counted and
        retried on the next heartbeat rather than raised.
        """
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            for index, handle in enumerate(self._workers):
                if handle.process.is_alive():
                    continue
                if handle.state != DEAD:
                    handle.state = DEAD
                    self.metrics.count("worker_deaths")
                if not self.config.respawn or self._closing:
                    continue
                replacement = None
                try:
                    replacement = self._fork_worker(
                        handle.worker_id, restarts=handle.restarts + 1
                    )
                    await self._await_ready(replacement)
                except (RuntimeError, OSError):
                    self.metrics.count("worker_respawn_failures")
                    # next heartbeat retries: the DEAD handle stays in
                    # the slot (restarts keeps counting the attempts)
                    handle.restarts += 1
                    if replacement is not None:
                        if replacement.process.is_alive():
                            replacement.process.kill()
                        replacement.conn.close()
                    continue
                self.metrics.count("worker_respawns")
                handle.conn.close()
                self._workers[index] = replacement

    def _pick_worker(self) -> Optional[WorkerHandle]:
        ready = [
            handle for handle in self._workers
            if handle.state == READY and handle.process.is_alive()
        ]
        if not ready:
            return None
        handle = ready[self._rr % len(ready)]
        self._rr += 1
        return handle

    async def _next_worker(self) -> Optional[WorkerHandle]:
        """A READY worker, waiting out respawns/drains if none is."""
        deadline = self._loop.time() + self.config.ready_wait_timeout
        while True:
            handle = self._pick_worker()
            if handle is not None or self._loop.time() >= deadline:
                return handle
            await asyncio.sleep(self.config.drain_poll_interval)

    # ----- request path ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await read_http_request(
                    reader, self.config.worker.max_body_bytes
                )
                if request is None:
                    break
                method, target, headers, body = request
                start = self._loop.time()
                inbound = headers.get("x-trace-id")
                parent = (
                    SpanContext(
                        trace_id=inbound,
                        span_id=headers.get("x-parent-span", ""),
                    )
                    if inbound else None
                )
                with traced(
                    self.tracer,
                    "front.request",
                    parent=parent,
                    method=method,
                    target=target.split("?", 1)[0],
                ) as span:
                    try:
                        status, payload, extra = await self._route(
                            method, target, body, span
                        )
                    except _HTTPError as exc:
                        status = exc.status
                        payload = json.dumps({"error": str(exc)}).encode()
                        extra = {}
                        if status >= 500:
                            span.set_error(exc)
                    except Exception as exc:  # noqa: BLE001 - keep serving
                        status = 500
                        payload = json.dumps(
                            {"error": f"front error: {exc}"}
                        ).encode()
                        extra = {}
                        span.set_error(exc)
                    span.set_attribute("status", status)
                    if span.trace_id:
                        extra = {**extra, "X-Trace-Id": span.trace_id}
                self.metrics.observe_request(
                    status, self._loop.time() - start
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                write_http_response(
                    writer, status, payload, keep_alive, extra
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes, span
    ) -> Tuple[int, bytes, Dict[str, str]]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "healthz only supports GET")
            return 200, json.dumps(await self._healthz()).encode(), {}
        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "metrics only supports GET")
            return 200, json.dumps(await self._metrics()).encode(), {}
        if path in ("/translate", "/pipeline"):
            if method != "POST":
                raise _HTTPError(405, f"{path} only supports POST")
            return await self._forward(method, path, body, span)
        raise _HTTPError(404, f"no such endpoint: {path}")

    async def _forward(
        self, method: str, path: str, body: bytes, span
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Route one request to a worker, re-queueing on broken workers.

        Only connection-level failures retry (refused, reset, truncated
        response): those mean the worker never finished the request.  A
        worker's own error statuses (429/504/...) pass through verbatim
        — retrying them would double decode work the worker already
        accounted for.
        """
        headers: Dict[str, str] = {}
        if span.trace_id:
            headers["X-Trace-Id"] = span.trace_id
            if span.context is not None and span.context.span_id:
                headers["X-Parent-Span"] = span.context.span_id
        last_error: Optional[BaseException] = None
        for attempt in range(self.config.max_forward_attempts):
            handle = await self._next_worker()
            if handle is None:
                break
            if attempt:
                self.metrics.count("front_retries")
            handle.inflight += 1
            try:
                status, payload = await self._proxy_once(
                    handle, method, path, body, headers
                )
            except (OSError, asyncio.IncompleteReadError, ValueError) as exc:
                last_error = exc
                if not handle.process.is_alive():
                    handle.state = DEAD
                    self.metrics.count("worker_crash_requeues")
                continue
            else:
                span.set_attribute("worker_id", handle.worker_id)
                return status, payload, {"X-Worker-Id": str(handle.worker_id)}
            finally:
                handle.inflight -= 1
        detail = f": {last_error}" if last_error else ""
        self.metrics.count("front_unrouted")
        return (
            503,
            json.dumps({"error": f"no worker available{detail}"}).encode(),
            {},
        )

    async def _proxy_once(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
    ) -> Tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", handle.port
        )
        try:
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: 127.0.0.1:{handle.port}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            lines.extend(f"{name}: {value}" for name, value in headers.items())
            writer.write(
                ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
            )
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                raise ConnectionResetError("worker closed before replying")
            status = int(status_line.split()[1])
            response_headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length = int(response_headers.get("content-length", "0") or "0")
            payload = await reader.readexactly(length) if length else b""
            return status, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _worker_get(
        self, handle: WorkerHandle, path: str, timeout: float = 5.0
    ) -> dict:
        try:
            status, payload = await asyncio.wait_for(
                self._proxy_once(handle, "GET", path, b"", {}),
                timeout=timeout,
            )
            doc = json.loads(payload.decode("utf-8"))
            if status != 200:
                return {"error": doc.get("error", f"HTTP {status}")}
            return doc
        except (OSError, asyncio.TimeoutError, ValueError) as exc:
            return {"error": str(exc)}

    async def _worker_post(
        self,
        handle: WorkerHandle,
        path: str,
        payload: dict,
        timeout: float = 60.0,
    ) -> dict:
        body = json.dumps(payload).encode("utf-8")
        status, raw = await asyncio.wait_for(
            self._proxy_once(handle, "POST", path, body, {}),
            timeout=timeout,
        )
        doc = json.loads(raw.decode("utf-8"))
        if status != 200:
            raise RuntimeError(
                f"worker {handle.worker_id} {path} failed: "
                f"{doc.get('error', status)}"
            )
        return doc

    # ----- telemetry ------------------------------------------------------

    async def _healthz(self) -> dict:
        """Per-worker liveness + queue depth, plus the weights doc."""
        docs = await asyncio.gather(
            *(
                self._worker_get(handle, "/healthz")
                if handle.state in (READY, DRAINING)
                and handle.process.is_alive()
                else _absent(handle)
                for handle in self._workers
            )
        )
        workers = []
        for handle, doc in zip(self._workers, docs):
            entry = handle.describe()
            if "queue_depth" in doc:
                entry["queue_depth"] = doc["queue_depth"]
            if "error" in doc:
                entry["error"] = doc["error"]
            if "weights" in doc:
                entry["weights"] = doc["weights"]
            workers.append(entry)
        ready = sum(1 for h in self._workers if h.state == READY)
        if self._closing:
            status = "draining"
        elif ready == len(self._workers):
            status = "ok"
        elif ready:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "workers": workers,
            "worker_count": len(self._workers),
            "ready_workers": ready,
            "default_model": self._default,
            "databases": len(self.databases),
            "generation": self.generation,
            "weights": shared_segments_report(self._shared),
            "uptime_seconds": self.metrics.uptime,
        }

    async def _metrics(self) -> dict:
        """Front report + per-worker reports + exact-merge aggregates."""
        docs = await asyncio.gather(
            *(
                self._worker_get(handle, "/metrics")
                if handle.state in (READY, DRAINING)
                and handle.process.is_alive()
                else _absent(handle)
                for handle in self._workers
            )
        )
        per_worker: Dict[str, dict] = {}
        counters: Dict[str, float] = {}
        latency, batches = [], []
        for handle, doc in zip(self._workers, docs):
            per_worker[str(handle.worker_id)] = doc
            for name, value in (doc.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            if doc.get("latency_ms"):
                latency.append(doc["latency_ms"])
            if doc.get("batch_size"):
                batches.append(doc["batch_size"])
        return {
            "uptime_seconds": self.metrics.uptime,
            "front": self.metrics.report(tracer=self.tracer),
            "workers": per_worker,
            "aggregate": {
                "counters": counters,
                "latency_ms": merge_summaries(latency),
                "batch_size": merge_summaries(batches),
            },
            "weights": shared_segments_report(self._shared),
            "generation": self.generation,
            "pool": {
                "workers": len(self._workers),
                "restarts": sum(h.restarts for h in self._workers),
            },
        }

    # ----- hot swap / invalidation ---------------------------------------

    async def swap_model_async(
        self, name: str, model, in_vocab, out_vocab, default: bool = False
    ) -> dict:
        """Zero-downtime rolling swap of *name* to *model*.

        New weights go into a fresh segment stamped generation+1; each
        worker in turn is drained (taken out of rotation, in-flight
        requests finish), told to re-attach via ``/control/swap`` (which
        re-registers the model and fires its cache-invalidation
        listeners), and put back.  Other workers keep serving, so a
        pool of >= 2 never rejects a request; the old segment is
        destroyed once every worker has moved.
        """
        async with self._swap_lock:
            self.generation += 1
            shared = share_model(model, in_vocab, out_vocab)
            shared.set_generation(self.generation)
            old = self._shared.get(name)
            self._manifests[name] = shared.manifest
            self._shared[name] = shared
            if default:
                self._default = name
            swapped = []
            for handle in list(self._workers):
                if handle.state != READY:
                    continue
                handle.state = DRAINING
                try:
                    while handle.inflight > 0:
                        await asyncio.sleep(self.config.drain_poll_interval)
                    result = await self._worker_post(
                        handle,
                        "/control/swap",
                        {
                            "model": name,
                            "manifest": shared.manifest.to_json(),
                            "default": default,
                        },
                    )
                    swapped.append(
                        {"worker_id": handle.worker_id, **result}
                    )
                finally:
                    if handle.state == DRAINING:
                        handle.state = READY
            if old is not None and old is not shared:
                old.destroy()
            self.metrics.count("hot_swaps")
            return {
                "model": name,
                "generation": self.generation,
                "segment": shared.manifest.segment,
                "workers": swapped,
            }

    async def invalidate_model_async(self, name: str) -> dict:
        """Drop *name*'s cached responses/encodings in every worker."""
        dropped = []
        for handle in self._workers:
            if handle.state not in (READY, DRAINING):
                continue
            result = await self._worker_post(
                handle, "/control/invalidate", {"model": name}
            )
            dropped.append({"worker_id": handle.worker_id, **result})
        return {"model": name, "workers": dropped}

    def swap_model(
        self,
        name: str,
        model,
        in_vocab,
        out_vocab,
        default: bool = False,
        timeout: float = 120.0,
    ) -> dict:
        """Blocking :meth:`swap_model_async` for callers off the loop."""
        future = asyncio.run_coroutine_threadsafe(
            self.swap_model_async(
                name, model, in_vocab, out_vocab, default=default
            ),
            self._loop,
        )
        return future.result(timeout)

    def invalidate_model(self, name: str, timeout: float = 60.0) -> dict:
        """Blocking :meth:`invalidate_model_async`."""
        future = asyncio.run_coroutine_threadsafe(
            self.invalidate_model_async(name), self._loop
        )
        return future.result(timeout)


async def _absent(handle: WorkerHandle) -> dict:
    return {"error": f"worker {handle.worker_id} is {handle.state}"}


# ----- worker process -------------------------------------------------------


def _worker_main(
    worker_id: int,
    conn,
    databases: Dict[str, Database],
    manifests: Dict[str, dict],
    baselines: bool,
    default: Optional[str],
    server_config: ServerConfig,
    warm: bool,
    trace_dir: Optional[str],
) -> None:
    """Body of one forked decode worker.

    Attaches every shared segment, rebuilds translators over the shared
    views, and serves a private loopback :class:`InferenceServer` until
    SIGTERM.  Exits via ``os._exit`` so the parent's atexit hooks (and
    its resource-tracker bookkeeping) never run twice.
    """
    from repro.obs.export import JsonlExporter
    from repro.serve.registry import (
        BaselineTranslator,
        ModelRegistry,
        NeuralTranslator,
    )
    from repro.serve.server import InferenceServer

    exporter = None
    try:
        tracer = None
        if trace_dir:
            exporter = JsonlExporter(
                Path(trace_dir) / f"worker-{worker_id}.jsonl"
            )
            tracer = Tracer(exporter=exporter)

        registry = ModelRegistry()
        attachments: Dict[str, SharedModel] = {}
        for name, payload in manifests.items():
            attached = SharedModel.attach(SharedManifest.from_json(payload))
            model, in_vocab, out_vocab = attached.views()
            attachments[name] = attached
            registry.register(
                name,
                NeuralTranslator(
                    model, in_vocab, out_vocab,
                    source=f"shm://{attached.manifest.segment}",
                ),
                default=(name == default),
            )
        if baselines:
            registry.register_baselines()
        if default is not None and default in registry:
            registry.set_default(default)

        def control_swap(payload: dict) -> dict:
            manifest = SharedManifest.from_json(payload["manifest"])
            attached = SharedModel.attach(manifest)
            model, in_vocab, out_vocab = attached.views()
            # register() fires the server's swap listeners, which drop
            # every cached response/encoding derived from the old weights.
            registry.register(
                payload["model"],
                NeuralTranslator(
                    model, in_vocab, out_vocab,
                    source=f"shm://{manifest.segment}",
                ),
                default=bool(payload.get("default", False)),
            )
            stale = attachments.get(payload["model"])
            attachments[payload["model"]] = attached
            if stale is not None:
                stale.close()
            return {
                "model": payload["model"],
                "segment": manifest.segment,
                "generation": attached.generation,
                "precision": manifest.precision,
            }

        def control_invalidate(payload: dict) -> dict:
            name = payload["model"]
            dropped = server.encoder_cache.invalidate_model(name)
            dropped += server.response_cache.invalidate_model(name)
            return {"model": name, "dropped": dropped}

        def health_extra() -> dict:
            return {
                "weights": {
                    name: {
                        "segment": handle.manifest.segment,
                        "bytes": handle.nbytes,
                        "generation": handle.generation,
                        "precision": handle.manifest.precision,
                    }
                    for name, handle in sorted(attachments.items())
                },
            }

        server = InferenceServer(
            registry,
            databases,
            config=dataclasses.replace(
                server_config, host="127.0.0.1", port=0
            ),
            tracer=tracer,
            worker_id=worker_id,
            control_handlers={
                "swap": control_swap,
                "invalidate": control_invalidate,
            },
            health_extra=health_extra,
        )

        if warm:
            registry.warm(databases)

        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            loop.add_signal_handler(signal.SIGINT, stop.set)
        except (NotImplementedError, RuntimeError):
            signal.signal(
                signal.SIGTERM,
                lambda *_: loop.call_soon_threadsafe(stop.set),
            )

        async def serve() -> None:
            _, port = await server.start()
            conn.send(("ready", port))
            await stop.wait()
            await server.shutdown()

        loop.run_until_complete(serve())
        try:
            conn.send(("stopped", worker_id))
        except (BrokenPipeError, OSError):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        if exporter is not None:
            try:
                exporter.close()
            except Exception:  # noqa: BLE001 - exiting anyway
                pass
        # Skip the parent's inherited atexit/multiprocessing teardown:
        # this process owns nothing but its (closed) server socket.
        os._exit(0)
