"""Micro-batching request queue for the inference server.

Concurrent ``/translate`` requests land in one bounded asyncio queue; a
single flusher task coalesces them into batches of at most
``max_batch_size``, waiting up to ``flush_interval`` seconds after the
first request for stragglers.  Each batch is grouped by model name (one
padded forward pass per group) and run on a thread-pool executor so the
event loop keeps accepting connections during the numpy forward pass.

Backpressure is explicit: a full queue rejects immediately
(:class:`QueueFullError` → HTTP 429), a draining server rejects with
:class:`ServerDrainingError` (→ 503), and :meth:`drain` finishes every
accepted request before the server exits.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.trace import SpanContext, Tracer


class QueueFullError(RuntimeError):
    """The request queue is at capacity; the caller should back off."""


class ServerDrainingError(RuntimeError):
    """The server is shutting down and no longer accepts work."""


@dataclass
class _Pending:
    """One enqueued request waiting for its batch to run."""

    key: str
    item: Any
    future: "asyncio.Future[Any]" = field(repr=False)
    #: trace context of the submitting request (None when untraced)
    context: Optional[SpanContext] = None
    #: monotonic enqueue time, for the coalesce-wait span
    enqueued: float = 0.0


class MicroBatcher:
    """Coalesces submitted items into per-key batches.

    *handler* is a **synchronous** callable ``(key, items) -> results``
    (results aligned with items); it runs on the event loop's default
    executor.  A handler exception fails every request of that group
    with the original exception object, so callers can catch specific
    types (e.g. an unknown-model lookup error).
    """

    def __init__(
        self,
        handler: Callable[[str, List[Any]], List[Any]],
        max_batch_size: int = 8,
        flush_interval: float = 0.005,
        max_queue_depth: int = 128,
        metrics=None,
        tracer: Optional[Tracer] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._handler = handler
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self.max_queue_depth = max_queue_depth
        self._metrics = metrics
        self._tracer = tracer
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=max_queue_depth
        )
        self._task: Optional[asyncio.Task] = None
        self._draining = False

    # ----- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        """Launch the flusher task (idempotent)."""
        if self._task is None:
            self._task = asyncio.create_task(self._run(), name="micro-batcher")

    async def drain(self) -> None:
        """Stop accepting, finish every accepted request, stop the task."""
        self._draining = True
        await self._queue.join()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet picked into a batch)."""
        return self._queue.qsize()

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining

    # ----- submission --------------------------------------------------

    async def submit(
        self,
        key: str,
        item: Any,
        timeout: Optional[float] = None,
        context: Optional[SpanContext] = None,
    ) -> Any:
        """Enqueue *item* under *key*; await its batch result.

        *context* is the submitting request's trace context: the batcher
        records a ``batch.wait`` span (enqueue → dispatch) and a
        ``decode`` span (the shared forward pass) under it, so one trace
        id follows a request from HTTP ingress through coalescing into
        the batched model call.

        Raises :class:`ServerDrainingError` / :class:`QueueFullError`
        without enqueueing, :class:`asyncio.TimeoutError` when the result
        misses *timeout* (the request is abandoned; its batch slot is
        skipped when the batch completes), or the handler's exception.
        """
        if self._draining:
            raise ServerDrainingError("server is draining")
        pending = _Pending(
            key=key,
            item=item,
            future=asyncio.get_running_loop().create_future(),
            context=context,
            enqueued=time.perf_counter(),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            raise QueueFullError(
                f"request queue is full ({self.max_queue_depth} deep)"
            ) from None
        if timeout is None:
            return await pending.future
        return await asyncio.wait_for(pending.future, timeout)

    # ----- flusher -----------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.flush_interval
            while len(batch) < self.max_batch_size:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Deadline passed: still take whatever is already
                    # queued, but don't wait for more.
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                    continue
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            try:
                await self._dispatch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _dispatch(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        groups: Dict[str, List[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.key, []).append(pending)
        for key, group in groups.items():
            items = [pending.item for pending in group]
            start = loop.time()
            mono_start = time.perf_counter()
            wall_start = time.time()
            self._trace_waits(group, mono_start, wall_start)
            try:
                results = await loop.run_in_executor(
                    None, self._handler, key, items
                )
            except Exception as exc:  # noqa: BLE001 - fail the whole group
                self._trace_decodes(
                    group, wall_start, time.perf_counter() - mono_start,
                    error=exc,
                )
                for pending in group:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                continue
            if self._metrics is not None:
                self._metrics.observe_batch(len(group), loop.time() - start)
            self._trace_decodes(
                group, wall_start, time.perf_counter() - mono_start
            )
            for pending, result in zip(group, results):
                if not pending.future.done():  # timed-out futures are done
                    pending.future.set_result(result)

    # ----- tracing ------------------------------------------------------

    def _trace_waits(
        self, group: List[_Pending], mono_now: float, wall_now: float
    ) -> None:
        """One ``batch.wait`` span per traced request: enqueue → dispatch."""
        if self._tracer is None or not self._tracer.enabled:
            return
        for pending in group:
            if pending.context is None:
                continue
            waited = max(mono_now - pending.enqueued, 0.0)
            self._tracer.record(
                "batch.wait",
                parent=pending.context,
                start_unix=wall_now - waited,
                duration_s=waited,
                **self._key_attributes(pending.key),
            )

    def _trace_decodes(
        self,
        group: List[_Pending],
        wall_start: float,
        duration_s: float,
        error: Optional[BaseException] = None,
    ) -> None:
        """One ``decode`` span per traced request in the group.

        Every coalesced request shares the same forward pass, so each
        trace receives a span of the full group duration, stamped with
        the realized batch size.
        """
        if self._tracer is None or not self._tracer.enabled:
            return
        for pending in group:
            if pending.context is None:
                continue
            self._tracer.record(
                "decode",
                parent=pending.context,
                start_unix=wall_start,
                duration_s=duration_s,
                status="error" if error is not None else "ok",
                error=f"{type(error).__name__}: {error}" if error else None,
                batch_size=len(group),
                **self._key_attributes(pending.key),
            )

    @staticmethod
    def _key_attributes(key: str) -> dict:
        """Span attributes for a group key.

        Keys are opaque to the batcher, but the server's convention is
        ``model\\x00decode-tag`` — split it back apart so traces read
        ``model=attn decode=beam4x1`` instead of a fused blob.
        """
        model, _, decode = key.partition("\x00")
        attributes = {"model": model}
        if decode:
            attributes["decode"] = decode
        return attributes
