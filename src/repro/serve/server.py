"""The asyncio NL2VIS inference server.

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams —
no third-party framework, no ``http.server`` — exposing three endpoints:

* ``POST /translate`` — JSON ``{"question", "db", "model"?, "format"?,
  "use_cache"?}`` → decoded VisQuery plus a rendered spec;
* ``POST /pipeline``  — JSON ``{"question", "db"?, "model"?, "k"?,
  "budget_ms"?, "max_rows"?, "repair"?}`` → the staged copilot
  (:mod:`repro.pipeline`): route (when ``db`` is omitted), generate,
  verify, execute, repair — a ranked candidate set with verdicts;
* ``GET /healthz``   — liveness, registered models, queue depth;
* ``GET /metrics``   — latency histograms, batch-size distribution,
  cache hit rates, pipeline verify/repair counters
  (see :mod:`repro.serve.metrics`).

Request flow: response-cache lookup → micro-batcher (padded forward
pass shared with concurrent requests) → value-slot fill + parse →
spec rendering through the shared :class:`ExecutionCache`.  Overload
returns 429, per-request timeouts 504, and shutdown drains the queue
before the socket closes.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import SpanContext, Tracer, traced
from repro.serve.batcher import MicroBatcher, QueueFullError, ServerDrainingError
from repro.serve.cache import EncoderCache, ResponseCache
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ModelRegistry, UnknownModelError
from repro.serve.translate import (
    FORMATS,
    DecodeConfig,
    TranslateResult,
    render_spec,
)
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServerConfig:
    """Knobs for batching, backpressure, caching, and timeouts."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = pick a free ephemeral port
    max_batch_size: int = 8        # requests coalesced per forward pass
    flush_interval: float = 0.005  # seconds to wait for batch stragglers
    max_queue_depth: int = 128     # queued requests before 429
    request_timeout: float = 30.0  # seconds per request before 504
    cache_size: int = 1024         # response-cache entries (<=0 disables)
    default_format: str = "text"
    max_body_bytes: int = 1 << 20
    default_beam_width: int = 1    # decode for requests without "beam_width"
    max_beam_width: int = 8        # per-request beam width cap
    max_candidates: int = 8        # per-request ranked-candidates cap
    encoder_cache_size: int = 256  # encoder-output LRU entries (<=0 disables)


class _HTTPError(Exception):
    """Internal: abort request handling with a status + message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


# ----- shared HTTP plumbing -------------------------------------------------
#
# The single-process server and the multi-worker frontend
# (:mod:`repro.serve.pool`) speak the same minimal HTTP/1.1; these
# helpers are the one implementation both use.


async def read_http_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Read one request; ``None`` on a cleanly closed connection.

    Returns ``(method, target, lower-cased headers, body)``.  Raises
    :class:`_HTTPError` on malformed framing or an oversized body.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HTTPError(400, f"malformed request line: {parts!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0") or "0"
    try:
        length = int(length_text)
    except ValueError:
        raise _HTTPError(400, f"bad Content-Length: {length_text!r}") from None
    if length > max_body_bytes:
        raise _HTTPError(413, f"body of {length} bytes exceeds limit")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Write one JSON response frame with an already-encoded body."""
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    writer.write(head.encode("latin-1") + body)


class InferenceServer:
    """Serves a :class:`ModelRegistry` over corpus databases."""

    def __init__(
        self,
        registry: ModelRegistry,
        databases: Dict[str, Database],
        config: Optional[ServerConfig] = None,
        execution_cache: Optional[ExecutionCache] = None,
        tracer: Optional[Tracer] = None,
        worker_id: Optional[int] = None,
        control_handlers: Optional[Dict[str, Callable[[dict], dict]]] = None,
        health_extra: Optional[Callable[[], dict]] = None,
    ):
        self.registry = registry
        self.databases = databases
        self.config = config or ServerConfig()
        #: set when this server runs as a decode worker behind a
        #: :class:`repro.serve.pool.WorkerPool` front; surfaces in
        #: ``/healthz`` so the front can attribute replies.
        self.worker_id = worker_id
        #: ``POST /control/<action>`` handlers (pool-internal plane:
        #: hot-swap, cache invalidation).  Each takes the JSON body and
        #: returns a JSON-able dict; runs on an executor thread.
        self.control_handlers = dict(control_handlers or {})
        self.health_extra = health_extra
        if self.config.default_format not in FORMATS:
            raise ValueError(
                f"unknown default format {self.config.default_format!r}; "
                f"pick from {FORMATS}"
            )
        if not 1 <= self.config.default_beam_width <= self.config.max_beam_width:
            raise ValueError(
                f"default_beam_width {self.config.default_beam_width} must be "
                f"in [1, max_beam_width={self.config.max_beam_width}]"
            )
        self.metrics = ServeMetrics()
        self.response_cache = ResponseCache(self.config.cache_size)
        self.encoder_cache = EncoderCache(self.config.encoder_cache_size)
        # Hot-swapping (or unregistering) a model invalidates everything
        # derived from its old weights in both caches.
        registry.add_swap_listener(self._on_model_swap)
        self.execution_cache = execution_cache or ExecutionCache()
        # The staged copilot shares the server's execution cache (and
        # its per-database executors) across /pipeline requests.  The
        # import is deferred: repro.pipeline imports the serve package
        # for the translator interface, so a module-level import here
        # would be circular.
        from repro.pipeline import ExecuteStage

        self.pipeline_executor = ExecuteStage(cache=self.execution_cache)
        #: optional request tracer: every request gets an ``http.request``
        #: span at ingress whose trace id follows it through the batcher
        #: (``batch.wait`` / ``decode`` spans) and comes back to the
        #: client as an ``X-Trace-Id`` header.
        self.tracer = tracer
        self.batcher = MicroBatcher(
            self._run_group,
            max_batch_size=self.config.max_batch_size,
            flush_interval=self.config.flush_interval,
            max_queue_depth=self.config.max_queue_depth,
            metrics=self.metrics,
            tracer=tracer,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self.host = self.config.host
        self.port = self.config.port

    # ----- lifecycle ---------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and launch the batcher; returns (host, port)."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish queued work, close."""
        if self._server is not None:
            self._server.close()
        await self.batcher.drain()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def run(self) -> None:
        """Start and serve until cancelled, then drain."""
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    @property
    def url(self) -> str:
        """Base URL once started."""
        return f"http://{self.host}:{self.port}"

    # ----- model execution (runs on executor threads) -------------------

    def _on_model_swap(self, model_name: str) -> None:
        dropped = self.encoder_cache.invalidate_model(model_name)
        dropped += self.response_cache.invalidate_model(model_name)
        self.metrics.count("swap_invalidations")
        self.metrics.count("swap_invalidated_entries", dropped)

    def _run_group(self, group_key: str, items) -> list:
        # The batcher groups by (model, decode tag) so one group shares
        # one decode configuration; items carry the config itself.
        model_name = group_key.split("\x00", 1)[0]
        translator = self.registry.get(model_name)
        requests = [(question, database) for question, database, _ in items]
        decode = items[0][2]
        return translator.translate_requests(
            requests,
            decode=decode,
            encoder_cache=self.encoder_cache,
            model_name=model_name,
        )

    # ----- connection handling -----------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await read_http_request(
                    reader, self.config.max_body_bytes
                )
                if request is None:
                    break
                method, target, headers, body = request
                loop = asyncio.get_running_loop()
                start = loop.time()
                # A bare inbound x-trace-id (no span id) roots this
                # request's span in the caller's existing trace; when
                # the pool front also forwards its own span id in
                # x-parent-span, the worker span nests under it so
                # `trace summarize DIR` stitches front→worker→decode.
                inbound = headers.get("x-trace-id")
                parent = (
                    SpanContext(
                        trace_id=inbound,
                        span_id=headers.get("x-parent-span", ""),
                    )
                    if inbound else None
                )
                with traced(
                    self.tracer,
                    "http.request",
                    parent=parent,
                    method=method,
                    target=target.split("?", 1)[0],
                ) as span:
                    try:
                        status, payload = await self._route(
                            method, target, body, span
                        )
                    except _HTTPError as exc:
                        status, payload = exc.status, {"error": str(exc)}
                        if status >= 500:
                            span.set_error(exc)
                    except Exception as exc:  # noqa: BLE001 - 500, keep serving
                        status, payload = 500, {
                            "error": f"internal error: {exc}"
                        }
                        span.set_error(exc)
                    span.set_attribute("status", status)
                    trace_id = span.trace_id
                elapsed = loop.time() - start
                self.metrics.observe_request(status, elapsed)
                if isinstance(payload, dict):
                    if status == 200:
                        payload.setdefault("latency_ms", elapsed * 1000.0)
                    if trace_id is not None:
                        payload["trace_id"] = trace_id
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                self._write_response(
                    writer, status, payload, keep_alive, trace_id=trace_id
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        trace_id: Optional[str] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        extra = {"X-Trace-Id": trace_id} if trace_id else None
        write_http_response(writer, status, body, keep_alive, extra)

    # ----- routing ------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes, span
    ) -> Tuple[int, dict]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "healthz only supports GET")
            return 200, self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "metrics only supports GET")
            return 200, self.metrics.report(
                response_cache=self.response_cache,
                encoder_cache=self.encoder_cache,
                execution_cache=self.execution_cache,
                queue_depth=self.batcher.depth,
                queue_capacity=self.config.max_queue_depth,
                tracer=self.tracer,
            )
        if path == "/translate":
            if method != "POST":
                raise _HTTPError(405, "translate only supports POST")
            return await self._translate(body, span)
        if path == "/pipeline":
            if method != "POST":
                raise _HTTPError(405, "pipeline only supports POST")
            return await self._pipeline(body, span)
        if path.startswith("/control/"):
            if method != "POST":
                raise _HTTPError(405, "control only supports POST")
            return await self._control(path[len("/control/"):], body, span)
        raise _HTTPError(404, f"no such endpoint: {path}")

    async def _control(self, action: str, body: bytes, span) -> Tuple[int, dict]:
        """Pool-internal control plane: swap weights, drop caches.

        Only actions wired in via ``control_handlers`` exist; a plain
        single-process server exposes none.  Handlers are synchronous
        (they touch the registry and caches, not the event loop) and
        run on an executor thread so a large swap never stalls decode.
        """
        handler = self.control_handlers.get(action)
        if handler is None:
            raise _HTTPError(404, f"no such control action: {action!r}")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")
        span.set_attribute("action", action)
        result = await asyncio.get_running_loop().run_in_executor(
            None, lambda: handler(payload)
        )
        return 200, dict(result or {})

    def _healthz(self) -> dict:
        doc = {
            "status": "draining" if self.batcher.draining else "ok",
            "models": self.registry.info(),
            "default_model": self.registry.default_model,
            "databases": len(self.databases),
            "queue_depth": self.batcher.depth,
            "uptime_seconds": self.metrics.uptime,
        }
        if self.worker_id is not None:
            doc["worker_id"] = self.worker_id
        if self.health_extra is not None:
            doc.update(self.health_extra())
        return doc

    async def _translate(self, body: bytes, span) -> Tuple[int, dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")

        question = payload.get("question")
        if not isinstance(question, str) or not question.strip():
            raise _HTTPError(400, "missing or empty 'question'")
        db_name = payload.get("db")
        if not isinstance(db_name, str) or not db_name:
            raise _HTTPError(400, "missing 'db'")
        database = self.databases.get(db_name)
        if database is None:
            raise _HTTPError(
                404,
                f"unknown database {db_name!r}; choices: "
                f"{sorted(self.databases)[:10]}",
            )
        model_name = payload.get("model") or self.registry.default_model
        if model_name is None or model_name not in self.registry:
            raise _HTTPError(
                404,
                f"unknown model {model_name!r}; registered: "
                f"{self.registry.names()}",
            )
        fmt = payload.get("format") or self.config.default_format
        if fmt not in FORMATS:
            raise _HTTPError(
                400, f"unknown format {fmt!r}; pick from {FORMATS}"
            )
        use_cache = bool(payload.get("use_cache", True))
        decode = self._decode_config(payload)

        translator = self.registry.get(model_name)
        cache_key = ResponseCache.key_of(
            model_name, db_name, question, fmt,
            decode=decode.cache_tag(), precision=translator.precision,
        )
        if use_cache:
            cached = self.response_cache.get(cache_key)
            if cached is not None:
                self.metrics.count("response_cache_hits")
                return 200, {**cached, "cached": True}
            self.metrics.count("response_cache_misses")

        try:
            result: TranslateResult = await self.batcher.submit(
                f"{model_name}\x00{decode.cache_tag()}",
                (question, database, decode),
                timeout=self.config.request_timeout,
                context=span.context,
            )
        except QueueFullError as exc:
            self.metrics.count("rejected_queue_full")
            raise _HTTPError(429, str(exc)) from None
        except ServerDrainingError as exc:
            raise _HTTPError(503, str(exc)) from None
        except asyncio.TimeoutError:
            self.metrics.count("rejected_timeout")
            raise _HTTPError(
                504,
                f"request missed its {self.config.request_timeout}s deadline",
            ) from None
        except UnknownModelError as exc:
            raise _HTTPError(404, str(exc)) from None

        spec = None
        render_error = None
        if result.ok:
            with traced(
                self.tracer, "render", parent=span, format=fmt
            ) as render_span:
                try:
                    spec = await asyncio.get_running_loop().run_in_executor(
                        None,
                        lambda: render_spec(
                            result, database, fmt, cache=self.execution_cache
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 - spec is best-effort
                    render_error = f"render failed: {exc}"
                    render_span.set_error(exc)

        response = {
            **result.to_json(),
            "model": model_name,
            "format": fmt,
            "beam_width": decode.beam_width,
            "precision": translator.precision,
            "spec": spec,
            "render_error": render_error,
            "cached": False,
        }
        if use_cache:
            self.response_cache.put(cache_key, dict(response))
        return 200, response

    async def _pipeline(self, body: bytes, span) -> Tuple[int, dict]:
        """Run the staged copilot for one question.

        Unlike ``/translate`` this path skips the micro-batcher — the
        pipeline drives its own generate stage (and four more) with a
        per-request budget, so it runs as one unit on an executor
        thread.  Its verify/repair counters land in ``/metrics`` under
        a ``pipeline_`` prefix.
        """
        from repro.pipeline import Budget, Generator, Pipeline

        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")

        question = payload.get("question")
        if not isinstance(question, str) or not question.strip():
            raise _HTTPError(400, "missing or empty 'question'")
        db_name = payload.get("db")
        if db_name is not None:
            if not isinstance(db_name, str) or not db_name:
                raise _HTTPError(400, "'db' must be a non-empty string")
            if db_name not in self.databases:
                raise _HTTPError(
                    404,
                    f"unknown database {db_name!r}; choices: "
                    f"{sorted(self.databases)[:10]}",
                )
        model_name = payload.get("model") or self.registry.default_model
        if model_name is None or model_name not in self.registry:
            raise _HTTPError(
                404,
                f"unknown model {model_name!r}; registered: "
                f"{self.registry.names()}",
            )
        k = payload.get("k", 3)
        if not isinstance(k, int) or isinstance(k, bool):
            raise _HTTPError(400, "'k' must be an integer")
        if not 1 <= k <= self.config.max_candidates:
            raise _HTTPError(
                400,
                f"'k' must be in [1, {self.config.max_candidates}], got {k}",
            )
        budget_ms = payload.get("budget_ms")
        if budget_ms is not None and (
            not isinstance(budget_ms, (int, float))
            or isinstance(budget_ms, bool)
            or budget_ms <= 0
        ):
            raise _HTTPError(400, "'budget_ms' must be a positive number")
        max_rows = payload.get("max_rows", 1000)
        if not isinstance(max_rows, int) or isinstance(max_rows, bool) or max_rows < 1:
            raise _HTTPError(400, "'max_rows' must be a positive integer")
        repair = payload.get("repair", True)
        if not isinstance(repair, bool):
            raise _HTTPError(400, "'repair' must be a boolean")
        judge = payload.get("judge", False)
        if not isinstance(judge, bool):
            raise _HTTPError(400, "'judge' must be a boolean")

        budget = Budget(
            total_ms=budget_ms, max_rows=max_rows, k=k, repair=repair
        )
        translator = self.registry.get(model_name)
        pipeline = Pipeline(
            self.databases,
            Generator(
                translator, model_name=model_name,
                max_width=self.config.max_beam_width,
            ),
            budget=budget,
            executor=self.pipeline_executor,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.metrics.count("pipeline_requests")
        result = await asyncio.get_running_loop().run_in_executor(
            None, lambda: pipeline.run(question, db_name)
        )
        span.set_attribute("db", result.db_name)
        response = {**result.to_json(), "model": model_name}
        if judge:
            response["judge"] = await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._judge_charts(result)
            )
            self.metrics.count("pipeline_judged")
        return 200, response

    def _judge_charts(self, result) -> List[dict]:
        """Gold-free verdicts for each returned chart (``"judge": true``).

        Serve-time judging has no gold answer, so only the three
        gold-free dimensions apply: validity (both renderers), legality
        (Table-1 rules), readability (rule-based).  One entry per chart
        in ``result.charts``, same order.
        """
        from repro.eval.judge import judge_chart

        database = self.databases[result.db_name]
        verdicts = []
        for candidate in result.charts:
            judgement = judge_chart(candidate.tree, database)
            verdicts.append(
                {
                    "vis": candidate.vis_text,
                    "repaired": candidate.repaired,
                    **judgement.to_json(),
                }
            )
        return verdicts

    def _decode_config(self, payload: dict) -> DecodeConfig:
        """Per-request decode settings, validated against config caps."""
        beam_width = payload.get("beam_width", self.config.default_beam_width)
        if not isinstance(beam_width, int) or isinstance(beam_width, bool):
            raise _HTTPError(400, "'beam_width' must be an integer")
        if not 1 <= beam_width <= self.config.max_beam_width:
            raise _HTTPError(
                400,
                f"'beam_width' must be in [1, {self.config.max_beam_width}], "
                f"got {beam_width}",
            )
        candidates = payload.get("candidates", 1)
        if not isinstance(candidates, int) or isinstance(candidates, bool):
            raise _HTTPError(400, "'candidates' must be an integer")
        if not 1 <= candidates <= self.config.max_candidates:
            raise _HTTPError(
                400,
                f"'candidates' must be in [1, {self.config.max_candidates}], "
                f"got {candidates}",
            )
        if candidates > beam_width:
            raise _HTTPError(
                400,
                f"'candidates' ({candidates}) cannot exceed 'beam_width' "
                f"({beam_width})",
            )
        return DecodeConfig(beam_width=beam_width, num_candidates=candidates)
