"""Client for the inference service, plus a threaded load generator.

:class:`ServeClient` is a small blocking JSON-over-HTTP client (stdlib
``http.client``, one connection per call) used by the tests, the
benchmark harness, and anything scripting against a running
``python -m repro serve``.  :class:`LoadGenerator` fans a request list
over worker threads and reports throughput and latency percentiles —
the numbers ``BENCH_serve.json`` tracks across commits.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.perf import LATENCY_BUCKETS_MS, Histogram


class ServeError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(self, status: int, body: dict):
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServeClient:
    """Blocking client for one server address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ----- raw request -------------------------------------------------

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One HTTP exchange; returns (status, decoded JSON body)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return response.status, json.loads(raw.decode("utf-8"))
        finally:
            connection.close()

    def _checked(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        status, body = self.request(method, path, payload)
        if status != 200:
            raise ServeError(status, body)
        return body

    # ----- endpoints ---------------------------------------------------

    def healthz(self) -> dict:
        """The /healthz document."""
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        """The /metrics document."""
        return self._checked("GET", "/metrics")

    def workers(self) -> List[dict]:
        """Per-worker liveness/queue-depth entries from ``/healthz``.

        A multi-worker front reports one entry per decode worker; a
        single-process server reports itself as worker 0, so sweep
        harnesses can treat every deployment shape uniformly.
        """
        doc = self.healthz()
        if "workers" in doc:
            return list(doc["workers"])
        return [{
            "worker_id": doc.get("worker_id", 0),
            "state": doc.get("status", "ok"),
            "alive": True,
            "queue_depth": doc.get("queue_depth", 0),
            "restarts": 0,
        }]

    def translate(
        self,
        question: str,
        db: str,
        model: Optional[str] = None,
        fmt: Optional[str] = None,
        use_cache: bool = True,
        beam_width: Optional[int] = None,
        candidates: Optional[int] = None,
    ) -> dict:
        """Translate one question; raises :class:`ServeError` on non-200.

        *beam_width* > 1 switches the server to batched beam search;
        *candidates* asks for that many ranked hypotheses back.
        """
        payload: Dict[str, object] = {
            "question": question,
            "db": db,
            "use_cache": use_cache,
        }
        if model is not None:
            payload["model"] = model
        if fmt is not None:
            payload["format"] = fmt
        if beam_width is not None:
            payload["beam_width"] = beam_width
        if candidates is not None:
            payload["candidates"] = candidates
        return self._checked("POST", "/translate", payload)

    def pipeline(
        self,
        question: str,
        db: Optional[str] = None,
        model: Optional[str] = None,
        k: Optional[int] = None,
        budget_ms: Optional[float] = None,
        max_rows: Optional[int] = None,
        repair: Optional[bool] = None,
        judge: Optional[bool] = None,
    ) -> dict:
        """Run the staged copilot; raises :class:`ServeError` on non-200.

        Omitting *db* lets the route stage pick the database; the
        response carries the ranked candidate set with verify/repair
        verdicts and per-stage timings.  ``judge=True`` adds gold-free
        validity/legality/readability verdicts per returned chart
        (``docs/EVALUATION.md``).
        """
        payload: Dict[str, object] = {"question": question}
        if db is not None:
            payload["db"] = db
        if model is not None:
            payload["model"] = model
        if k is not None:
            payload["k"] = k
        if budget_ms is not None:
            payload["budget_ms"] = budget_ms
        if max_rows is not None:
            payload["max_rows"] = max_rows
        if repair is not None:
            payload["repair"] = repair
        if judge is not None:
            payload["judge"] = judge
        return self._checked("POST", "/pipeline", payload)


@dataclass
class LoadReport:
    """What one load-generator run measured."""

    requests: int
    errors: int
    seconds: float
    rps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    by_status: Dict[int, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-ready form for ``BENCH_serve.json``."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "by_status": {str(k): v for k, v in sorted(self.by_status.items())},
        }


class LoadGenerator:
    """Replays a request list against a server from worker threads."""

    def __init__(self, client: ServeClient, concurrency: int = 8):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.client = client
        self.concurrency = concurrency

    def run(
        self, requests: List[dict]
    ) -> Tuple[LoadReport, List[Optional[dict]]]:
        """Fire every request (each a ``translate`` kwargs dict).

        Returns the aggregate report plus per-request response bodies in
        request order (``None`` where the request errored) so callers
        can compare outputs against a serial reference run.
        """
        responses: List[Optional[dict]] = [None] * len(requests)
        statuses: List[Optional[int]] = [None] * len(requests)
        histogram = Histogram(LATENCY_BUCKETS_MS, window=max(len(requests), 1))
        cursor = {"next": 0}
        cursor_lock = threading.Lock()

        def worker() -> None:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        return
                    cursor["next"] = index + 1
                started = time.perf_counter()
                try:
                    responses[index] = self.client.translate(**requests[index])
                    statuses[index] = 200
                except ServeError as exc:
                    statuses[index] = exc.status
                except Exception:  # noqa: BLE001 - connection-level failure
                    statuses[index] = -1
                histogram.observe((time.perf_counter() - started) * 1000.0)

        threads = [
            threading.Thread(target=worker, name=f"load-{i}")
            for i in range(min(self.concurrency, max(len(requests), 1)))
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started

        by_status: Dict[int, int] = {}
        for status in statuses:
            if status is not None:
                by_status[status] = by_status.get(status, 0) + 1
        errors = sum(
            count for status, count in by_status.items() if status != 200
        )
        report = LoadReport(
            requests=len(requests),
            errors=errors,
            seconds=seconds,
            rps=len(requests) / seconds if seconds > 0 else 0.0,
            p50_ms=histogram.percentile(50),
            p99_ms=histogram.percentile(99),
            mean_ms=histogram.mean,
            by_status=by_status,
        )
        return report, responses

    def sweep(
        self, targets: Dict[str, ServeClient], requests: List[dict]
    ) -> Dict[str, Tuple[LoadReport, List[Optional[dict]]]]:
        """Replay the same request list against several deployments.

        *targets* maps a label (e.g. ``"workers=4"``) to a client for
        one running server/pool; each gets a fresh generator at this
        one's concurrency.  Returns label → (report, responses) — the
        shape the multi-worker BENCH_serve scaling matrix consumes.
        """
        results: Dict[str, Tuple[LoadReport, List[Optional[dict]]]] = {}
        for label, client in targets.items():
            generator = LoadGenerator(client, concurrency=self.concurrency)
            results[label] = generator.run(requests)
        return results
