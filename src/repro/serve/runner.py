"""Run a server (or worker pool) on a background thread.

The serving objects are asyncio-native; tests, benchmarks, and notebook
users are usually synchronous.  :class:`BackgroundServer` owns a private
event loop on a daemon thread, starts the server there, and exposes the
bound address — so blocking :class:`~repro.serve.client.ServeClient`
calls can be made from the caller's thread.  Use it as a context manager
to get drain-on-exit for free.

Anything with coroutine ``start() -> (host, port)`` / ``shutdown()``
methods and ``host``/``port`` attributes works: both
:class:`~repro.serve.server.InferenceServer` and the multi-process
:class:`~repro.serve.pool.WorkerPool` qualify, so a test can swap
deployment shapes without changing its harness.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.serve.client import ServeClient


class BackgroundServer:
    """Starts/stops a server-like object on its own event-loop thread."""

    def __init__(self, server, startup_timeout: float = 30.0):
        self.server = server
        self.startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        """Launch the loop thread and the server; returns (host, port)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="inference-server", daemon=True
        )
        self._thread.start()
        started.wait(self.startup_timeout)
        future = asyncio.run_coroutine_threadsafe(self.server.start(), self._loop)
        return future.result(self.startup_timeout)

    def stop(self) -> None:
        """Drain the server, stop the loop, join the thread."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        future.result(self.startup_timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(self.startup_timeout)
        self._loop.close()
        self._loop = None
        self._thread = None

    def client(self, timeout: float = 30.0) -> ServeClient:
        """A blocking client bound to this server's address."""
        return ServeClient(self.server.host, self.server.port, timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
