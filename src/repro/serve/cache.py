"""LRU response cache for the inference server.

Keyed on ``(model, db, normalized question, format)`` — the full
response body is cached, so a repeat question skips the model forward
pass *and* the chart-data execution.  This sits above the
:class:`~repro.storage.executor.ExecutionCache`: distinct questions
that decode to the same query body still share one execution below.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.serve.translate import normalize_question

CacheKey = Tuple[str, str, str, str]


class ResponseCache:
    """A bounded, thread-safe LRU mapping of request keys to responses.

    ``maxsize <= 0`` disables caching entirely (every get misses, puts
    are dropped) so one code path serves both configurations.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self._entries: "OrderedDict[CacheKey, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(model: str, db_name: str, question: str, fmt: str) -> CacheKey:
        """The canonical cache key for one translate request."""
        return (model, db_name, normalize_question(question), fmt)

    def get(self, key: CacheKey) -> Optional[dict]:
        """The cached response for *key*, refreshed to most-recent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: CacheKey, response: dict) -> None:
        """Store *response*, evicting the least-recently-used overflow."""
        if self.maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters plus size and derived hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hit_rate": self.hits / total if total else 0.0,
            }
