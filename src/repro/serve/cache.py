"""Serving caches: response LRU and encoder-output LRU.

:class:`ResponseCache` is keyed on ``(model, db, normalized question,
format, decode tag, precision)`` — the full response body is cached, so
a repeat question skips the model forward pass *and* the chart-data
execution.  Decode configuration and weight precision are part of the
key: a beam-4 answer must never be served to a greedy request, nor a
float32 answer after a hot-swap to int8.  This sits above the
:class:`~repro.storage.executor.ExecutionCache`: distinct questions
that decode to the same query body still share one execution below.

:class:`EncoderCache` sits *between* the two: response-cache misses
that repeat a source-token sequence (same question under a different
format, beam width, or candidate count) skip the bi-LSTM encoder and
replay only the decoder.  Entries are keyed on ``(model, db, source
token prefix)`` — the full NL+schema prefix of the decoder's input,
since the backward LSTM direction makes shorter-prefix reuse unsound —
and store per-example encoder outputs trimmed to true length, so one
entry serves batches of any padding.  Hot-swapping a model must
invalidate its entries (:meth:`EncoderCache.invalidate_model`); the
server wires that to the registry's swap listeners.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.serve.translate import normalize_question

CacheKey = Tuple[str, str, str, str, str, str]

EncoderKey = Tuple[str, str, Tuple[str, ...]]


class ResponseCache:
    """A bounded, thread-safe LRU mapping of request keys to responses.

    ``maxsize <= 0`` disables caching entirely (every get misses, puts
    are dropped) so one code path serves both configurations.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self._entries: "OrderedDict[CacheKey, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(
        model: str,
        db_name: str,
        question: str,
        fmt: str,
        decode: str = "greedy",
        precision: str = "-",
    ) -> CacheKey:
        """The canonical cache key for one translate request.

        *decode* is a :meth:`~repro.serve.translate.DecodeConfig.cache_tag`
        and *precision* the serving model's storage precision — both are
        part of the response's identity, not just its routing.
        """
        return (
            model, db_name, normalize_question(question), fmt,
            decode, precision,
        )

    def invalidate_model(self, model: str) -> int:
        """Drop every entry produced by *model*; returns the count.

        Called on registry hot-swap: the new weights may answer the
        same question differently.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == model]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def get(self, key: CacheKey) -> Optional[dict]:
        """The cached response for *key*, refreshed to most-recent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: CacheKey, response: dict) -> None:
        """Store *response*, evicting the least-recently-used overflow."""
        if self.maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters plus size and derived hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hit_rate": self.hits / total if total else 0.0,
            }


@dataclass
class EncoderEntry:
    """One example's frozen encoder outputs, trimmed to true length."""

    memory: np.ndarray       # (L, 2H) encoder states, no padding
    h0: np.ndarray           # (H,) bridged initial decoder hidden
    c0: np.ndarray           # (H,) bridged initial decoder cell
    src_out_ids: np.ndarray  # (L,) source tokens in output-vocab ids

    @property
    def nbytes(self) -> int:
        return int(
            self.memory.nbytes + self.h0.nbytes + self.c0.nbytes
            + self.src_out_ids.nbytes
        )


class EncoderCache:
    """Bounded thread-safe LRU of per-example encoder outputs.

    Keyed on ``(model, db, source-token tuple)``; see the module
    docstring for why the key carries the full source prefix.  Sits in
    front of the bi-LSTM: a hit replays only the decoder, which is what
    makes "same question, different beam width / format / candidate
    count" requests cheap after the first.

    ``maxsize <= 0`` disables the cache (gets miss, puts drop), matching
    :class:`ResponseCache` semantics.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._entries: "OrderedDict[EncoderKey, EncoderEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(
        model: str, db_name: str, tokens: Sequence[str]
    ) -> EncoderKey:
        """Cache key for one request's source sequence."""
        return (model, db_name, tuple(tokens))

    @staticmethod
    def entry_of(
        memory: np.ndarray,
        h0: np.ndarray,
        c0: np.ndarray,
        src_out_ids: np.ndarray,
    ) -> EncoderEntry:
        """Build an entry from (possibly sliced) encoder outputs.

        Copies each array so the cache never pins a whole batch's
        memory through a row view.
        """
        return EncoderEntry(
            memory=np.array(memory),
            h0=np.array(h0),
            c0=np.array(c0),
            src_out_ids=np.array(src_out_ids),
        )

    def get(self, key: EncoderKey) -> Optional[EncoderEntry]:
        """The cached encoding for *key*, refreshed to most-recent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: EncoderKey, entry: EncoderEntry) -> None:
        """Store *entry*, evicting the least-recently-used overflow."""
        if self.maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate_model(self, model: str) -> int:
        """Drop every entry encoded by *model*; returns the count.

        Mandatory on hot-swap — stale encoder states would otherwise be
        decoded by the new weights (or a different precision) and serve
        silently wrong mixtures.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == model]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters, size, and resident bytes."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hit_rate": self.hits / total if total else 0.0,
                "resident_bytes": sum(
                    entry.nbytes for entry in self._entries.values()
                ),
            }
