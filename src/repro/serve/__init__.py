"""Online NL2VIS inference: model registry, micro-batching HTTP service.

The serving layer the ROADMAP's "heavy traffic" north star asks for:

* :mod:`repro.serve.translate` — the single shared inference path
  (tokenize → encode → decode → slot-fill → parse → render) used by
  both the CLI and the server;
* :mod:`repro.serve.registry` — named, hot-swappable translators
  (saved seq2vis models and the rule-based baselines);
* :mod:`repro.serve.batcher` — micro-batching queue with backpressure;
* :mod:`repro.serve.cache` — LRU response cache over the execution cache;
* :mod:`repro.serve.server` — the asyncio HTTP service
  (``POST /translate``, ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.serve.pool` — multi-process horizontal serving: a front
  proxy over N forked decode workers with shared-memory weights,
  crash respawn, and rolling hot-swap;
* :mod:`repro.serve.client` — blocking client + load generator.

Start one with ``python -m repro serve --corpus corpus.json --model
attn=model.npz`` (add ``--workers 4`` for the multi-process pool; see
``docs/SERVING.md``).
"""

from repro.serve.batcher import MicroBatcher, QueueFullError, ServerDrainingError
from repro.serve.cache import EncoderCache, ResponseCache
from repro.serve.client import LoadGenerator, LoadReport, ServeClient, ServeError
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import PoolConfig, WorkerHandle, WorkerPool
from repro.serve.runner import BackgroundServer
from repro.serve.registry import (
    BaselineTranslator,
    ModelRegistry,
    NeuralTranslator,
    Translator,
    UnknownModelError,
)
from repro.serve.server import InferenceServer, ServerConfig
from repro.serve.translate import (
    FORMATS,
    GREEDY_DECODE,
    CandidateSummary,
    DecodeConfig,
    TranslateResult,
    grammar_token_mask,
    normalize_question,
    render_spec,
    source_tokens,
    translate_batch,
    translate_question,
)

__all__ = [
    "FORMATS",
    "GREEDY_DECODE",
    "BackgroundServer",
    "BaselineTranslator",
    "CandidateSummary",
    "DecodeConfig",
    "EncoderCache",
    "InferenceServer",
    "LoadGenerator",
    "LoadReport",
    "MicroBatcher",
    "ModelRegistry",
    "NeuralTranslator",
    "PoolConfig",
    "QueueFullError",
    "ResponseCache",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerConfig",
    "ServerDrainingError",
    "Translator",
    "TranslateResult",
    "UnknownModelError",
    "WorkerHandle",
    "WorkerPool",
    "grammar_token_mask",
    "normalize_question",
    "render_spec",
    "source_tokens",
    "translate_batch",
    "translate_question",
]
