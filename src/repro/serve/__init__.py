"""Online NL2VIS inference: model registry, micro-batching HTTP service.

The serving layer the ROADMAP's "heavy traffic" north star asks for:

* :mod:`repro.serve.translate` — the single shared inference path
  (tokenize → encode → decode → slot-fill → parse → render) used by
  both the CLI and the server;
* :mod:`repro.serve.registry` — named, hot-swappable translators
  (saved seq2vis models and the rule-based baselines);
* :mod:`repro.serve.batcher` — micro-batching queue with backpressure;
* :mod:`repro.serve.cache` — LRU response cache over the execution cache;
* :mod:`repro.serve.server` — the asyncio HTTP service
  (``POST /translate``, ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.serve.client` — blocking client + load generator.

Start one with ``python -m repro serve --corpus corpus.json --model
attn=model.npz`` (see ``docs/SERVING.md``).
"""

from repro.serve.batcher import MicroBatcher, QueueFullError, ServerDrainingError
from repro.serve.cache import EncoderCache, ResponseCache
from repro.serve.client import LoadGenerator, LoadReport, ServeClient, ServeError
from repro.serve.metrics import ServeMetrics
from repro.serve.runner import BackgroundServer
from repro.serve.registry import (
    BaselineTranslator,
    ModelRegistry,
    NeuralTranslator,
    Translator,
    UnknownModelError,
)
from repro.serve.server import InferenceServer, ServerConfig
from repro.serve.translate import (
    FORMATS,
    GREEDY_DECODE,
    CandidateSummary,
    DecodeConfig,
    TranslateResult,
    grammar_token_mask,
    normalize_question,
    render_spec,
    source_tokens,
    translate_batch,
    translate_question,
)

__all__ = [
    "FORMATS",
    "GREEDY_DECODE",
    "BackgroundServer",
    "BaselineTranslator",
    "CandidateSummary",
    "DecodeConfig",
    "EncoderCache",
    "InferenceServer",
    "LoadGenerator",
    "LoadReport",
    "MicroBatcher",
    "ModelRegistry",
    "NeuralTranslator",
    "QueueFullError",
    "ResponseCache",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerConfig",
    "ServerDrainingError",
    "Translator",
    "TranslateResult",
    "UnknownModelError",
    "grammar_token_mask",
    "normalize_question",
    "render_spec",
    "source_tokens",
    "translate_batch",
    "translate_question",
]
