"""The one true NL→VIS inference path, shared by CLI and server.

``translate_batch`` runs the whole pipeline for a list of (question,
database) requests in a single padded forward pass: tokenize → schema
tokens → encode → greedy decode → value-slot fill → token parse.  The
one-shot CLI and the micro-batching server both call into here, so a
batched server response is produced by the identical code a single
``python -m repro translate`` runs — the basis of the determinism tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import from_tokens, to_text
from repro.neural.data import (
    MAX_NL_TOKENS,
    SEP_TOKEN,
    encode_source_batch,
    schema_tokens,
)
from repro.neural.model import BeamCandidate, EncodedBatch, Seq2Vis
from repro.neural.slots import fill_value_slots
from repro.nlp.tokenize import tokenize_nl
from repro.nlp.vocab import Vocabulary
from repro.obs.trace import Tracer, traced
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database

#: Render formats ``render_spec`` understands; ``text`` is the canonical
#: linearized tree, the rest are the ``repro.vis`` backends.
FORMATS = ("text", "vega-lite", "echarts", "plotly", "ascii", "ggplot")

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_question(question: str) -> str:
    """Canonical cache form of an NL question.

    Case and whitespace do not change what the pipeline predicts in any
    meaningful way (tokenization lowercases; value matching is
    case-insensitive), so ``"Show  Prices"`` and ``"show prices"`` share
    one cache slot.
    """
    return _WHITESPACE_RE.sub(" ", question).strip().casefold()


@dataclass(frozen=True)
class DecodeConfig:
    """How the model decodes: greedy vs beam, and how many hypotheses.

    ``beam_width=1`` is greedy (the historical default path, bit for
    bit).  ``num_candidates > 1`` asks for that many ranked hypotheses
    back (requires a beam at least that wide).  ``grammar_mask`` zeroes
    structurally-impossible output tokens (padding, BOS, UNK) out of
    beam candidate expansion, so no beam slot is wasted on a token that
    can never parse.

    Frozen so configs can key caches; :meth:`cache_tag` is the compact
    form folded into response-cache keys.
    """

    beam_width: int = 1
    num_candidates: int = 1
    max_len: int = 60
    length_penalty: float = 0.7
    grammar_mask: bool = False

    def __post_init__(self):
        if self.beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if not 1 <= self.num_candidates <= self.beam_width:
            raise ValueError(
                f"num_candidates must be in [1, beam_width], got "
                f"{self.num_candidates} with beam_width={self.beam_width}"
            )

    @property
    def is_greedy(self) -> bool:
        """True when this config takes the plain greedy path."""
        return self.beam_width == 1 and self.num_candidates == 1

    def cache_tag(self) -> str:
        """Compact decode identity for cache keys (e.g. ``"beam4x2"``)."""
        if self.is_greedy:
            return "greedy"
        tag = f"beam{self.beam_width}x{self.num_candidates}"
        if self.grammar_mask:
            tag += "g"
        return tag


#: The default decode: plain greedy, one hypothesis.
GREEDY_DECODE = DecodeConfig()


def grammar_token_mask(out_vocab: Vocabulary) -> np.ndarray:
    """Boolean ``(V,)`` mask of output tokens a decode may emit.

    Padding, BOS, and UNK can never appear inside a well-formed VIS
    token sequence, so beam search drops them from candidate expansion
    when :attr:`DecodeConfig.grammar_mask` is set.
    """
    mask = np.ones(len(out_vocab), dtype=bool)
    for token_id in (out_vocab.pad_id, out_vocab.bos_id, out_vocab.unk_id):
        mask[token_id] = False
    return mask


@dataclass
class CandidateSummary:
    """One ranked beam hypothesis, parsed best-effort.

    ``score`` is the length-normalized negative log probability the beam
    ranked by (lower is better).  ``vis`` is the parsed, slot-filled
    canonical text, or ``None`` with ``error`` set when the hypothesis
    does not parse.
    """

    tokens: List[str]
    score: float
    vis: Optional[str] = None
    error: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "tokens": list(self.tokens),
            "score": self.score,
            "vis": self.vis,
            "error": self.error,
        }


@dataclass
class TranslateResult:
    """One request's decoded output with provenance."""

    question: str
    db_name: str
    tokens: List[str] = field(default_factory=list)
    tree: Optional[VisQuery] = None
    error: Optional[str] = None
    #: ranked alternatives (only when the decode asked for candidates);
    #: the first entry always mirrors the main result.
    candidates: Optional[List[CandidateSummary]] = None

    @property
    def ok(self) -> bool:
        """True when the decode parsed into a query tree."""
        return self.tree is not None

    @property
    def vis_text(self) -> Optional[str]:
        """The filled tree's canonical text form (``None`` on error)."""
        if self.tree is None:
            return None
        return to_text(self.tree)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready summary (the server's response body core)."""
        payload: Dict[str, object] = {
            "question": self.question,
            "db": self.db_name,
            "tokens": list(self.tokens),
            "vis": self.vis_text,
            "error": self.error,
        }
        if self.candidates is not None:
            payload["candidates"] = [c.to_json() for c in self.candidates]
        return payload


def source_tokens(question: str, database: Database) -> List[str]:
    """The model's input sequence: NL tokens, separator, schema tokens.

    Caps the NL part at ``MAX_NL_TOKENS`` exactly as training-time
    encoding does (:func:`repro.neural.data.encode_example`).
    """
    return (
        tokenize_nl(question)[:MAX_NL_TOKENS]
        + [SEP_TOKEN]
        + schema_tokens(database)
    )


def _finish(
    question: str, database: Database, tokens: List[str]
) -> TranslateResult:
    """Parse decoded tokens and fill value slots; never raises."""
    result = TranslateResult(
        question=question, db_name=database.name, tokens=tokens
    )
    try:
        tree = from_tokens(tokens)
        tree = fill_value_slots(tree, question, database)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the batch
        result.error = str(exc)
        return result
    if not isinstance(tree, VisQuery):
        result.error = "decoded query is not a visualization"
        return result
    result.tree = tree
    return result


def _encode_requests(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    requests: Sequence[Tuple[str, Database]],
    token_lists: List[List[str]],
    encoder_cache,
    model_name: str,
    span,
) -> EncodedBatch:
    """Encode *requests*, reusing cached encoder outputs where possible.

    Cache hits skip the bi-LSTM entirely; misses are encoded in one
    sub-batch and stored trimmed to their true length.  The assembled
    :class:`EncodedBatch` zero-pads memory to the longest row — exact,
    because attention weights at masked positions are exactly 0, so the
    padded values never reach the math (the same padding-invariance the
    micro-batcher already relies on).
    """
    keys = [
        encoder_cache.key_of(model_name, database.name, tokens)
        for (_, database), tokens in zip(requests, token_lists)
    ]
    rows = [encoder_cache.get(key) for key in keys]
    missing = [i for i, row in enumerate(rows) if row is None]
    span.set_attributes({
        "encoder_cache_hits": len(rows) - len(missing),
        "encoder_cache_misses": len(missing),
    })
    if missing:
        miss_batch = encode_source_batch(
            [token_lists[i] for i in missing], in_vocab, out_vocab
        )
        fresh = model.encode_batch(miss_batch)
        for j, i in enumerate(missing):
            length = len(token_lists[i])
            entry = encoder_cache.entry_of(
                memory=fresh.memory[j, :length],
                h0=fresh.h0[j],
                c0=fresh.c0[j],
                src_out_ids=fresh.src_out_ids[j, :length],
            )
            encoder_cache.put(keys[i], entry)
            rows[i] = entry
    max_len = max(entry.memory.shape[0] for entry in rows)
    batch = len(rows)
    memory = np.zeros(
        (batch, max_len, rows[0].memory.shape[1]), dtype=rows[0].memory.dtype
    )
    src_mask = np.zeros((batch, max_len))
    src_out_ids = np.full((batch, max_len), out_vocab.unk_id, dtype=np.int64)
    for i, entry in enumerate(rows):
        length = entry.memory.shape[0]
        memory[i, :length] = entry.memory
        src_mask[i, :length] = 1.0
        src_out_ids[i, :length] = entry.src_out_ids
    return EncodedBatch(
        memory=memory,
        h0=np.stack([entry.h0 for entry in rows]),
        c0=np.stack([entry.c0 for entry in rows]),
        src_mask=src_mask,
        src_out_ids=src_out_ids,
    )


def _summarize(
    candidate: BeamCandidate,
    out_vocab: Vocabulary,
    question: str,
    database: Database,
) -> CandidateSummary:
    """Parse one beam hypothesis best-effort into a summary."""
    tokens = out_vocab.decode(candidate.tokens)
    summary = CandidateSummary(tokens=tokens, score=candidate.score)
    try:
        tree = fill_value_slots(from_tokens(tokens), question, database)
        if isinstance(tree, VisQuery):
            summary.vis = to_text(tree)
        else:
            summary.error = "decoded query is not a visualization"
    except Exception as exc:  # noqa: BLE001 - candidates are best-effort
        summary.error = str(exc)
    return summary


def translate_batch(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    requests: Sequence[Tuple[str, Database]],
    tracer: Optional[Tracer] = None,
    decode: Optional[DecodeConfig] = None,
    encoder_cache=None,
    model_name: str = "",
) -> List[TranslateResult]:
    """Translate many (question, database) requests in one forward pass.

    Requests over *different* databases batch fine — each row's input
    sequence carries its own schema tokens.  Results are positionally
    aligned with *requests*.  An optional *tracer* emits ``encode``,
    ``decode``, and ``parse`` spans for the batch (the one-shot CLI path
    uses this; the server traces its batches in the micro-batcher
    instead).

    *decode* picks greedy vs batched beam (and how many ranked
    candidates come back on each result); *encoder_cache* (an
    :class:`~repro.serve.cache.EncoderCache`) lets repeat source
    sequences skip the bi-LSTM, keyed under *model_name*.
    """
    if not requests:
        return []
    decode = decode or GREEDY_DECODE
    token_lists = [
        source_tokens(question, database) for question, database in requests
    ]
    with traced(tracer, "encode", requests=len(requests)) as encode_span:
        if encoder_cache is not None:
            encoded = _encode_requests(
                model, in_vocab, out_vocab, requests, token_lists,
                encoder_cache, model_name, encode_span,
            )
            batch = encoded.inference_batch()
        else:
            encoded = None
            batch = encode_source_batch(token_lists, in_vocab, out_vocab)
    candidate_lists: Optional[List[List[BeamCandidate]]] = None
    with traced(
        tracer, "decode",
        batch_size=len(requests), mode=decode.cache_tag(),
    ):
        if decode.is_greedy:
            decoded = model.greedy_decode_batch(
                batch, out_vocab.bos_id, out_vocab.eos_id,
                max_len=decode.max_len, encoded=encoded,
            )
        else:
            token_mask = (
                grammar_token_mask(out_vocab) if decode.grammar_mask else None
            )
            ranked = model.beam_search_batch(
                batch, out_vocab.bos_id, out_vocab.eos_id,
                beam_width=decode.beam_width,
                max_len=decode.max_len,
                length_penalty=decode.length_penalty,
                num_candidates=decode.num_candidates,
                token_mask=token_mask,
                encoded=encoded,
                tracer=tracer,
            )
            decoded = [example[0].tokens for example in ranked]
            if decode.num_candidates > 1:
                candidate_lists = ranked
    with traced(tracer, "parse") as parse_span:
        results = []
        for index, ((question, database), ids) in enumerate(
            zip(requests, decoded)
        ):
            result = _finish(question, database, out_vocab.decode(ids))
            if candidate_lists is not None:
                result.candidates = [
                    _summarize(candidate, out_vocab, question, database)
                    for candidate in candidate_lists[index]
                ]
            results.append(result)
        parse_span.set_attribute(
            "parsed", sum(1 for result in results if result.ok)
        )
    return results


def translate_question(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    question: str,
    database: Database,
    tracer: Optional[Tracer] = None,
    decode: Optional[DecodeConfig] = None,
) -> TranslateResult:
    """Translate one question — a batch of one, same code path."""
    return translate_batch(
        model, in_vocab, out_vocab, [(question, database)],
        tracer=tracer, decode=decode,
    )[0]


def render_spec(
    result: TranslateResult,
    database: Database,
    fmt: str,
    cache: Optional[ExecutionCache] = None,
) -> Union[str, dict, None]:
    """Render a successful result in one of :data:`FORMATS`.

    ``text`` needs no execution; every other format executes the chart
    data (through *cache* when given) via the ``repro.vis`` backends.
    Returns ``None`` when the result has no tree.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; pick from {FORMATS}")
    if result.tree is None:
        return None
    if fmt == "text":
        return to_text(result.tree)
    from repro.vis import to_ascii, to_echarts, to_ggplot, to_plotly, to_vega_lite

    if fmt == "vega-lite":
        return to_vega_lite(result.tree, database, cache=cache)
    if fmt == "echarts":
        return to_echarts(result.tree, database, cache=cache)
    if fmt == "plotly":
        return to_plotly(result.tree, database, cache=cache)
    if fmt == "ggplot":
        return to_ggplot(result.tree, database, cache=cache)
    return to_ascii(result.tree, database, cache=cache)
