"""The one true NL→VIS inference path, shared by CLI and server.

``translate_batch`` runs the whole pipeline for a list of (question,
database) requests in a single padded forward pass: tokenize → schema
tokens → encode → greedy decode → value-slot fill → token parse.  The
one-shot CLI and the micro-batching server both call into here, so a
batched server response is produced by the identical code a single
``python -m repro translate`` runs — the basis of the determinism tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import from_tokens, to_text
from repro.neural.data import (
    MAX_NL_TOKENS,
    SEP_TOKEN,
    encode_source_batch,
    schema_tokens,
)
from repro.neural.model import Seq2Vis
from repro.neural.slots import fill_value_slots
from repro.nlp.tokenize import tokenize_nl
from repro.nlp.vocab import Vocabulary
from repro.obs.trace import Tracer, traced
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database

#: Render formats ``render_spec`` understands; ``text`` is the canonical
#: linearized tree, the rest are the ``repro.vis`` backends.
FORMATS = ("text", "vega-lite", "echarts", "plotly", "ascii", "ggplot")

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_question(question: str) -> str:
    """Canonical cache form of an NL question.

    Case and whitespace do not change what the pipeline predicts in any
    meaningful way (tokenization lowercases; value matching is
    case-insensitive), so ``"Show  Prices"`` and ``"show prices"`` share
    one cache slot.
    """
    return _WHITESPACE_RE.sub(" ", question).strip().casefold()


@dataclass
class TranslateResult:
    """One request's decoded output with provenance."""

    question: str
    db_name: str
    tokens: List[str] = field(default_factory=list)
    tree: Optional[VisQuery] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the decode parsed into a query tree."""
        return self.tree is not None

    @property
    def vis_text(self) -> Optional[str]:
        """The filled tree's canonical text form (``None`` on error)."""
        if self.tree is None:
            return None
        return to_text(self.tree)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready summary (the server's response body core)."""
        return {
            "question": self.question,
            "db": self.db_name,
            "tokens": list(self.tokens),
            "vis": self.vis_text,
            "error": self.error,
        }


def source_tokens(question: str, database: Database) -> List[str]:
    """The model's input sequence: NL tokens, separator, schema tokens.

    Caps the NL part at ``MAX_NL_TOKENS`` exactly as training-time
    encoding does (:func:`repro.neural.data.encode_example`).
    """
    return (
        tokenize_nl(question)[:MAX_NL_TOKENS]
        + [SEP_TOKEN]
        + schema_tokens(database)
    )


def _finish(
    question: str, database: Database, tokens: List[str]
) -> TranslateResult:
    """Parse decoded tokens and fill value slots; never raises."""
    result = TranslateResult(
        question=question, db_name=database.name, tokens=tokens
    )
    try:
        tree = from_tokens(tokens)
        tree = fill_value_slots(tree, question, database)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the batch
        result.error = str(exc)
        return result
    if not isinstance(tree, VisQuery):
        result.error = "decoded query is not a visualization"
        return result
    result.tree = tree
    return result


def translate_batch(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    requests: Sequence[Tuple[str, Database]],
    tracer: Optional[Tracer] = None,
) -> List[TranslateResult]:
    """Translate many (question, database) requests in one forward pass.

    Requests over *different* databases batch fine — each row's input
    sequence carries its own schema tokens.  Results are positionally
    aligned with *requests*.  An optional *tracer* emits ``encode``,
    ``decode``, and ``parse`` spans for the batch (the one-shot CLI path
    uses this; the server traces its batches in the micro-batcher
    instead).
    """
    if not requests:
        return []
    with traced(tracer, "encode", requests=len(requests)):
        batch = encode_source_batch(
            [
                source_tokens(question, database)
                for question, database in requests
            ],
            in_vocab,
            out_vocab,
        )
    with traced(tracer, "decode", batch_size=len(requests)):
        decoded = model.greedy_decode_batch(
            batch, out_vocab.bos_id, out_vocab.eos_id
        )
    with traced(tracer, "parse") as parse_span:
        results = [
            _finish(question, database, out_vocab.decode(ids))
            for (question, database), ids in zip(requests, decoded)
        ]
        parse_span.set_attribute(
            "parsed", sum(1 for result in results if result.ok)
        )
    return results


def translate_question(
    model: Seq2Vis,
    in_vocab: Vocabulary,
    out_vocab: Vocabulary,
    question: str,
    database: Database,
    tracer: Optional[Tracer] = None,
) -> TranslateResult:
    """Translate one question — a batch of one, same code path."""
    return translate_batch(
        model, in_vocab, out_vocab, [(question, database)], tracer=tracer
    )[0]


def render_spec(
    result: TranslateResult,
    database: Database,
    fmt: str,
    cache: Optional[ExecutionCache] = None,
) -> Union[str, dict, None]:
    """Render a successful result in one of :data:`FORMATS`.

    ``text`` needs no execution; every other format executes the chart
    data (through *cache* when given) via the ``repro.vis`` backends.
    Returns ``None`` when the result has no tree.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; pick from {FORMATS}")
    if result.tree is None:
        return None
    if fmt == "text":
        return to_text(result.tree)
    from repro.vis import to_ascii, to_echarts, to_ggplot, to_plotly, to_vega_lite

    if fmt == "vega-lite":
        return to_vega_lite(result.tree, database, cache=cache)
    if fmt == "echarts":
        return to_echarts(result.tree, database, cache=cache)
    if fmt == "plotly":
        return to_plotly(result.tree, database, cache=cache)
    if fmt == "ggplot":
        return to_ggplot(result.tree, database, cache=cache)
    return to_ascii(result.tree, database, cache=cache)
