"""Request metrics for the inference server.

Counters ride on a :class:`~repro.perf.BuildProfiler` (the same
counter/stage vocabulary the build pipeline uses, so ``/metrics`` output
reads like a ``BENCH_build.json`` profile); latency and batch-size
distributions use :class:`~repro.perf.Histogram`.  Everything is
thread-safe: the event loop observes request latencies while executor
threads observe batch sizes.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.perf import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_MS,
    BuildProfiler,
    Histogram,
)


class ServeMetrics:
    """Aggregated serving telemetry, exported as one JSON dict."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._started = clock()
        self.profiler = BuildProfiler(clock)
        self.latency_ms = Histogram(LATENCY_BUCKETS_MS)
        self.batch_sizes = Histogram(BATCH_SIZE_BUCKETS)

    # ----- recording ---------------------------------------------------

    def observe_request(self, status: int, seconds: float) -> None:
        """Record one finished HTTP request (any endpoint outcome)."""
        self.profiler.count("requests_total")
        self.profiler.count(f"requests_{status}")
        self.latency_ms.observe(seconds * 1000.0)

    def observe_batch(self, size: int, seconds: float) -> None:
        """Record one model forward pass over *size* coalesced requests."""
        self.profiler.count("batches_total")
        self.profiler.count("batched_requests", size)
        self.profiler.record("model_forward", seconds)
        self.batch_sizes.observe(size)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a free-form counter (cache hits, drops, ...)."""
        self.profiler.count(name, amount)

    # ----- reporting ---------------------------------------------------

    @property
    def uptime(self) -> float:
        """Seconds since the metrics object (≈ the server) was created."""
        return self._clock() - self._started

    def report(
        self,
        response_cache=None,
        execution_cache=None,
        queue_depth: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        tracer=None,
        encoder_cache=None,
    ) -> Dict[str, object]:
        """The full ``/metrics`` document."""
        counters = self.profiler.report()
        batches = self.batch_sizes.summary()
        total = counters["counters"].get("batched_requests", 0)
        report: Dict[str, object] = {
            "uptime_seconds": self.uptime,
            "counters": counters["counters"],
            "stages": counters["stages"],
            "latency_ms": self.latency_ms.summary(),
            "batch_size": batches,
            "avg_batch_size": (
                total / batches["count"] if batches["count"] else 0.0
            ),
        }
        if response_cache is not None:
            report["response_cache"] = response_cache.stats()
        if encoder_cache is not None:
            report["encoder_cache"] = encoder_cache.stats()
        if execution_cache is not None:
            report["execution_cache"] = execution_cache.stats()
        if queue_depth is not None:
            report["queue"] = {
                "depth": queue_depth,
                "capacity": queue_capacity,
            }
        if tracer is not None:
            report["tracing"] = tracer.stats()
        return report
