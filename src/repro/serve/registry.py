"""Model registry: many translators behind one interface, hot-swappable.

A :class:`Translator` turns (question, database) requests into
:class:`~repro.serve.translate.TranslateResult` lists.  Two concrete
kinds exist:

* :class:`NeuralTranslator` — a saved seq2vis ``.npz`` model; genuinely
  batched (one padded numpy forward pass per request group);
* :class:`BaselineTranslator` — the DeepEye / NL4DV rule-based systems
  from Section 4.4, looped per request (they have no batch dimension).

The :class:`ModelRegistry` maps names to translators, supports hot-swap
(re-register under the same name; in-flight batches finish on the old
object), and can warm every model with a dummy request so first real
traffic doesn't pay allocation cost.
"""

from __future__ import annotations

import inspect
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import to_text, to_tokens
from repro.serve.translate import DecodeConfig, TranslateResult, translate_batch
from repro.storage.schema import Database


class UnknownModelError(KeyError):
    """Raised when a request names a model the registry does not hold."""


class Translator:
    """Interface every served model implements."""

    #: "neural" or "baseline" — surfaced in /healthz.
    kind: str = "unknown"

    #: weight storage precision — part of response-cache keys, so a
    #: hot-swap between precisions can never serve stale answers.
    precision: str = "-"

    def translate_requests(
        self,
        requests: Sequence[Tuple[str, Database]],
        decode: Optional[DecodeConfig] = None,
        encoder_cache=None,
        model_name: str = "",
    ) -> List[TranslateResult]:
        """Results positionally aligned with *requests*.

        *decode* picks greedy vs beam (with how many ranked candidates);
        translators without a beam honor ``num_candidates`` as best they
        can and ignore the rest.  *encoder_cache* / *model_name* wire
        the server's encoder-output LRU through neural translators.
        """
        raise NotImplementedError

    def info(self) -> Dict[str, object]:
        """JSON-ready description for the health endpoint."""
        return {"kind": self.kind}


class NeuralTranslator(Translator):
    """A loaded seq2vis model plus its vocabularies."""

    kind = "neural"

    def __init__(self, model, in_vocab, out_vocab, source: str = "memory"):
        from repro.neural.quantize import model_precision

        self.model = model
        self.in_vocab = in_vocab
        self.out_vocab = out_vocab
        self.source = source
        self.precision = model_precision(model)

    @classmethod
    def from_npz(
        cls, path: str, precision: Optional[str] = None
    ) -> "NeuralTranslator":
        """Load a model archive saved by :func:`repro.neural.persist.save_model`.

        *precision* re-stores a float checkpoint's weights at load time
        (``"int8"`` / ``"float16"`` quantize, ``"float32"`` /
        ``"float64"`` cast) — the serve-time memory/speed knob.
        """
        from repro.neural.persist import load_model, normalize_model_path

        model, in_vocab, out_vocab = load_model(path, precision=precision)
        return cls(
            model, in_vocab, out_vocab,
            source=str(normalize_model_path(path)),
        )

    def translate_requests(
        self,
        requests: Sequence[Tuple[str, Database]],
        decode: Optional[DecodeConfig] = None,
        encoder_cache=None,
        model_name: str = "",
    ) -> List[TranslateResult]:
        return translate_batch(
            self.model, self.in_vocab, self.out_vocab, requests,
            decode=decode, encoder_cache=encoder_cache,
            model_name=model_name,
        )

    def info(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "variant": self.model.variant,
            "hidden_dim": self.model.hidden_dim,
            "source": self.source,
            "precision": self.precision,
        }


class BaselineTranslator(Translator):
    """A rule-based baseline served behind the same interface."""

    kind = "baseline"

    def __init__(
        self,
        name: str,
        predict: Callable[[str, Database], Union[Optional[VisQuery], List[VisQuery]]],
    ):
        self.name = name
        self._predict = predict
        # Multi-prediction rule systems take a top-k argument; detect it
        # once so candidate requests get a genuinely ranked list instead
        # of the single best chart.
        try:
            self._accepts_k = len(inspect.signature(predict).parameters) >= 3
        except (TypeError, ValueError):
            self._accepts_k = False

    @classmethod
    def from_name(cls, name: str) -> "BaselineTranslator":
        """Instantiate one of :data:`repro.baselines.BASELINES` by name."""
        from repro.baselines import BASELINES

        if name not in BASELINES:
            raise UnknownModelError(
                f"unknown baseline {name!r}; pick from {sorted(BASELINES)}"
            )
        return cls(name, BASELINES[name]().predict)

    def translate_requests(
        self,
        requests: Sequence[Tuple[str, Database]],
        decode: Optional[DecodeConfig] = None,
        encoder_cache=None,
        model_name: str = "",
    ) -> List[TranslateResult]:
        from repro.serve.translate import CandidateSummary

        want = decode.num_candidates if decode is not None else 1
        results = []
        for question, database in requests:
            if self._accepts_k:
                prediction = self._predict(question, database, max(1, want))
            else:
                prediction = self._predict(question, database)
            ranked = (
                prediction if isinstance(prediction, list)
                else [] if prediction is None else [prediction]
            )
            best = ranked[0] if ranked else None
            result = TranslateResult(question=question, db_name=database.name)
            if best is None:
                result.error = f"{self.name} produced no visualization"
            else:
                result.tree = best
                result.tokens = to_tokens(best)
            if want > 1:
                # Baselines have no beam, but a multi-prediction rule
                # system still yields a ranked candidate list.
                result.candidates = [
                    CandidateSummary(
                        tokens=to_tokens(tree),
                        score=float(rank),
                        vis=to_text(tree),
                    )
                    for rank, tree in enumerate(ranked[:want])
                ]
            results.append(result)
        return results

    def info(self) -> Dict[str, object]:
        return {"kind": self.kind, "baseline": self.name}


class ModelRegistry:
    """Thread-safe name → :class:`Translator` mapping with a default."""

    def __init__(self):
        self._lock = threading.RLock()
        self._models: Dict[str, Translator] = {}
        self._default: Optional[str] = None
        self._swap_listeners: List[Callable[[str], None]] = []

    def add_swap_listener(self, listener: Callable[[str], None]) -> None:
        """Call *listener(name)* whenever *name* is hot-swapped or
        unregistered.  The server hangs cache invalidation here — any
        state derived from the old translator (encoder outputs, cached
        responses) must not survive the swap."""
        with self._lock:
            self._swap_listeners.append(listener)

    def _notify_swap(self, name: str) -> None:
        with self._lock:
            listeners = list(self._swap_listeners)
        for listener in listeners:
            listener(name)

    def register(
        self, name: str, translator: Translator, default: bool = False
    ) -> None:
        """Add or hot-swap a translator under *name*.

        The swap is atomic: requests already holding the old translator
        finish on it, new lookups get the replacement.  A replacement
        (the name already existed) fires the swap listeners.
        """
        with self._lock:
            first = not self._models
            swapped = name in self._models
            self._models[name] = translator
            if default or first:
                self._default = name
        if swapped:
            self._notify_swap(name)

    def unregister(self, name: str) -> None:
        """Remove a model; the default falls back to any remaining one."""
        with self._lock:
            removed = self._models.pop(name, None) is not None
            if self._default == name:
                self._default = next(iter(sorted(self._models)), None)
        if removed:
            self._notify_swap(name)

    def load_npz(
        self,
        name: str,
        path: str,
        default: bool = False,
        precision: Optional[str] = None,
    ) -> None:
        """Load a saved seq2vis archive and register it under *name*.

        *precision* is the serve-time weight knob (see
        :meth:`NeuralTranslator.from_npz`).
        """
        self.register(
            name,
            NeuralTranslator.from_npz(path, precision=precision),
            default=default,
        )

    def register_baselines(self) -> None:
        """Register every rule-based baseline under its canonical name."""
        from repro.baselines import BASELINES

        for name in BASELINES:
            self.register(name, BaselineTranslator.from_name(name))

    @property
    def default_model(self) -> Optional[str]:
        """Name used when a request does not pick a model."""
        with self._lock:
            return self._default

    def set_default(self, name: str) -> None:
        """Point the default at an already-registered model."""
        with self._lock:
            if name not in self._models:
                raise UnknownModelError(f"unknown model {name!r}")
            self._default = name

    def get(self, name: Optional[str] = None) -> Translator:
        """The translator for *name* (or the default when ``None``)."""
        with self._lock:
            key = name if name is not None else self._default
            if key is None or key not in self._models:
                raise UnknownModelError(
                    f"unknown model {key!r}; registered: {sorted(self._models)}"
                )
            return self._models[key]

    def names(self) -> List[str]:
        """Registered model names, sorted."""
        with self._lock:
            return sorted(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def info(self) -> Dict[str, Dict[str, object]]:
        """Name → translator description for /healthz."""
        with self._lock:
            items = list(self._models.items())
        return {name: translator.info() for name, translator in items}

    def warm(
        self,
        databases: Dict[str, Database],
        question: str = "show the number of rows per category",
    ) -> Dict[str, float]:
        """Run one dummy request through every model; returns seconds per
        model.  First real traffic then skips cold-start allocations."""
        if not databases:
            return {}
        database = databases[sorted(databases)[0]]
        timings: Dict[str, float] = {}
        for name in self.names():
            translator = self.get(name)
            start = time.perf_counter()
            translator.translate_requests([(question, database)])
            timings[name] = time.perf_counter() - start
        return timings
