"""Per-request cost guardrails for the staged pipeline.

A :class:`Budget` bounds one pipeline run three ways:

* **wall clock** — ``total_ms`` caps the whole request, ``stage_ms``
  caps any single stage.  Budgeting is *cooperative*: stages check the
  clock between units of work (between candidates, between executions)
  and stop early, so a run never dies mid-candidate — it returns a
  partial result with ``stage_timings`` populated and the exhausted
  stage named in ``timed_out``.
* **execution size** — ``max_rows`` truncates any candidate's result
  table past that many rows (the candidate is kept, flagged
  ``truncated``), and ``max_executions`` caps how many candidates may
  hit the storage engine at all.
* **shape** — ``k`` is how many ranked candidates the caller wants
  back; ``repair`` gates the repair stage (off, near-miss candidates
  are *reported*, never silently dropped).

The clock is injectable so tests can fake time without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Budget:
    """Cost guardrails for one pipeline request (immutable, shareable)."""

    #: whole-request wall-clock cap in milliseconds (``None`` = unlimited)
    total_ms: Optional[float] = None
    #: per-stage wall-clock cap in milliseconds (``None`` = unlimited)
    stage_ms: Optional[float] = None
    #: result-table row cap per executed candidate (``None`` = unlimited)
    max_rows: Optional[int] = 1000
    #: how many candidates may be executed per request
    max_executions: int = 16
    #: ranked candidates the caller wants back
    k: int = 3
    #: whether the repair stage may rewrite near-miss candidates
    repair: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("budget k must be >= 1")
        if self.max_executions < 1:
            raise ValueError("max_executions must be >= 1")
        if self.total_ms is not None and self.total_ms <= 0:
            raise ValueError("total_ms must be positive")
        if self.stage_ms is not None and self.stage_ms <= 0:
            raise ValueError("stage_ms must be positive")
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError("max_rows must be >= 1")

    def to_json(self) -> dict:
        return {
            "total_ms": self.total_ms,
            "stage_ms": self.stage_ms,
            "max_rows": self.max_rows,
            "max_executions": self.max_executions,
            "k": self.k,
            "repair": self.repair,
        }


class BudgetClock:
    """Tracks elapsed time against a :class:`Budget` during one run.

    One clock lives for one pipeline request.  ``start_stage`` marks the
    beginning of each stage; :meth:`exhausted` answers "should the
    current stage stop handing out work?" against both the stage and the
    total deadline.  Stage timings accumulate in :attr:`stage_timings`
    (seconds), which the pipeline copies onto the result even when the
    run is cut short.
    """

    def __init__(self, budget: Budget, clock=time.perf_counter):
        self.budget = budget
        self._clock = clock
        self._t0 = clock()
        self._stage_t0 = self._t0
        self._stage: Optional[str] = None
        self.stage_timings: dict = {}
        #: first stage that ran out of budget, if any
        self.timed_out: Optional[str] = None

    @property
    def elapsed_ms(self) -> float:
        """Milliseconds since the run started."""
        return (self._clock() - self._t0) * 1000.0

    @property
    def stage_elapsed_ms(self) -> float:
        """Milliseconds since the current stage started."""
        return (self._clock() - self._stage_t0) * 1000.0

    def start_stage(self, name: str) -> None:
        """Close the previous stage's timing and open *name*'s."""
        self.end_stage()
        self._stage = name
        self._stage_t0 = self._clock()

    def end_stage(self) -> None:
        """Record the open stage's duration (idempotent)."""
        if self._stage is not None:
            elapsed = self._clock() - self._stage_t0
            self.stage_timings[self._stage] = (
                self.stage_timings.get(self._stage, 0.0) + elapsed
            )
            self._stage = None

    def exhausted(self) -> bool:
        """True when the stage or total deadline has passed.

        The first exhausted check latches the current stage into
        :attr:`timed_out`, so the result can say *where* the budget ran
        out even after later stages were skipped.
        """
        budget = self.budget
        over = (
            budget.total_ms is not None and self.elapsed_ms >= budget.total_ms
        ) or (
            budget.stage_ms is not None
            and self._stage is not None
            and self.stage_elapsed_ms >= budget.stage_ms
        )
        if over and self.timed_out is None:
            self.timed_out = self._stage or "total"
        return over
