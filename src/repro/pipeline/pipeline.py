"""The staged NL2VIS copilot: route → generate → verify → execute → repair.

:class:`Pipeline` composes the five stages over a corpus of databases.
Each stage is a swappable attribute (any object honoring the stage
contract), every run is bounded by a :class:`~repro.pipeline.budget
.Budget`, and every stage emits exactly one :mod:`repro.obs` span —
including trivially-skipped ones (database given → the route span says
``routed=False``; repair disabled → the repair span says
``enabled=False``) so trace consumers can rely on the span-per-stage
shape.

The result keeps *every* candidate with its verdict: a near-miss that
could not be repaired or a budget-skipped execution is reported, never
silently dropped.  Ambiguous questions naturally yield several distinct
valid charts (``result.ambiguous``), which is what makes accuracy@k a
meaningful metric downstream (:mod:`repro.eval.ambiguity`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.trace import Tracer
from repro.pipeline.budget import Budget, BudgetClock
from repro.pipeline.candidate import (
    NEAR_MISS,
    PASS,
    ExecutionOutcome,
    PipelineCandidate,
)
from repro.pipeline.execute import ExecuteStage
from repro.pipeline.generate import Generator
from repro.pipeline.repair import Repairer
from repro.pipeline.route import Router, RouteScore
from repro.pipeline.verify import Verifier
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database

#: the canonical stage order; one obs span per entry per run
STAGES = ("route", "generate", "verify", "execute", "repair")

#: extra candidates decoded beyond ``budget.k`` so verify/repair attrition
#: still leaves k good ones
_GENERATE_SLACK = 2


class PipelineResult:
    """Everything one pipeline run produced, rankings and verdicts intact."""

    def __init__(
        self,
        question: str,
        db_name: str,
        budget: Budget,
        routed: bool,
        routes: List[RouteScore],
        candidates: List[PipelineCandidate],
        stage_timings: Dict[str, float],
        timed_out: Optional[str],
        counters: Dict[str, int],
        elapsed_ms: float,
        trace_id: Optional[str] = None,
    ):
        self.question = question
        self.db_name = db_name
        self.budget = budget
        #: False when the caller pinned the database
        self.routed = routed
        self.routes = routes
        #: all candidates, ranked best-first, including near-miss/fail
        self.candidates = candidates
        #: per-stage wall time in milliseconds
        self.stage_timings = stage_timings
        #: stage whose deadline expired, if any
        self.timed_out = timed_out
        self.counters = counters
        self.elapsed_ms = elapsed_ms
        self.trace_id = trace_id

    @property
    def partial(self) -> bool:
        """True when a deadline cut the run short (results still usable)."""
        return self.timed_out is not None

    @property
    def charts(self) -> List[PipelineCandidate]:
        """Top-k *distinct, valid* charts — the servable answer set."""
        seen = set()
        picked: List[PipelineCandidate] = []
        for candidate in self.candidates:
            if not candidate.valid:
                continue
            key = candidate.vis_text
            if key in seen:
                continue
            seen.add(key)
            picked.append(candidate)
            if len(picked) >= self.budget.k:
                break
        return picked

    @property
    def ambiguous(self) -> bool:
        """True when the question supports ≥2 distinct valid charts."""
        return len(self.charts) >= 2

    def to_json(self) -> dict:
        return {
            "question": self.question,
            "db": self.db_name,
            "routed": self.routed,
            "routes": [route.to_json() for route in self.routes],
            "budget": self.budget.to_json(),
            "candidates": [c.to_json() for c in self.candidates],
            "charts": [c.vis_text for c in self.charts],
            "ambiguous": self.ambiguous,
            "stage_timings_ms": {
                name: round(ms, 3) for name, ms in self.stage_timings.items()
            },
            "timed_out": self.timed_out,
            "partial": self.partial,
            "counters": dict(self.counters),
            "elapsed_ms": round(self.elapsed_ms, 3),
            "trace_id": self.trace_id,
        }


class Pipeline:
    """Composable staged translation over a database corpus.

    Parameters
    ----------
    databases:
        ``name -> Database`` corpus the router picks from.
    generator:
        The generate stage (wrap any translator in
        :class:`~repro.pipeline.generate.Generator`).
    budget:
        Default :class:`Budget`; ``run(budget=...)`` overrides per call.
    cache:
        Shared :class:`ExecutionCache` (one is created if omitted).
    tracer:
        :class:`repro.obs.Tracer`; a disabled one costs nothing.
    metrics:
        Optional sink with ``count(name, n)`` (e.g. ``ServeMetrics``);
        receives ``pipeline_``-prefixed counters after every run.
    clock:
        Monotonic clock for the budget (injectable for tests).
    """

    def __init__(
        self,
        databases: Dict[str, Database],
        generator: Generator,
        budget: Optional[Budget] = None,
        cache: Optional[ExecutionCache] = None,
        tracer: Optional[Tracer] = None,
        metrics=None,
        clock=time.perf_counter,
        router: Optional[Router] = None,
        verifier: Optional[Verifier] = None,
        repairer: Optional[Repairer] = None,
        executor: Optional[ExecuteStage] = None,
    ):
        if not databases:
            raise ValueError("pipeline needs at least one database")
        self.databases = dict(databases)
        self.generator = generator
        self.budget = budget or Budget()
        self.router = router or Router()
        self.verifier = verifier or Verifier()
        self.repairer = repairer or Repairer(verifier=self.verifier)
        self.executor = executor or ExecuteStage(cache=cache)
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics
        self._clock = clock

    def run(
        self,
        question: str,
        db_name: Optional[str] = None,
        budget: Optional[Budget] = None,
    ) -> PipelineResult:
        """Translate *question* end to end under the budget."""
        budget = budget or self.budget
        clock = BudgetClock(budget, clock=self._clock)
        counters = {
            "verify_pass": 0,
            "verify_near_miss": 0,
            "verify_fail": 0,
            "repairs_attempted": 0,
            "repairs_succeeded": 0,
            "executions": 0,
            "execution_truncations": 0,
            "execution_skips": 0,
            # valid answers that needed the repair stage vs. came out of
            # the generator already legal — the judge layer's repair rate
            "repaired_total": 0,
            "born_legal_total": 0,
        }
        with self.tracer.span(
            "pipeline", question=question, k=budget.k
        ) as root:
            trace_id = root.context.trace_id if root.recording else None

            # --- route ---------------------------------------------------
            clock.start_stage("route")
            with self.tracer.span("route") as span:
                routed = db_name is None
                routes: List[RouteScore] = []
                if routed:
                    routes = self.router.route(question, self.databases)
                    db_name = routes[0].db_name
                elif db_name not in self.databases:
                    span.set_attributes({"db": db_name, "error": "unknown"})
                    raise KeyError(f"unknown database: {db_name}")
                database = self.databases[db_name]
                span.set_attributes(
                    {
                        "routed": routed,
                        "db": db_name,
                        "candidates_considered": len(routes),
                    }
                )

            # --- generate ------------------------------------------------
            clock.start_stage("generate")
            with self.tracer.span("generate") as span:
                candidates: List[PipelineCandidate] = []
                if not clock.exhausted():
                    candidates = self.generator.generate(
                        question, database, budget.k + _GENERATE_SLACK
                    )
                span.set_attributes(
                    {"db": db_name, "candidates": len(candidates)}
                )

            # --- verify --------------------------------------------------
            clock.start_stage("verify")
            with self.tracer.span("verify") as span:
                for candidate in candidates:
                    if clock.exhausted():
                        break  # stays `decoded`; reported, not dropped
                    self.verifier.verify(candidate, database)
                    if candidate.status == PASS:
                        counters["verify_pass"] += 1
                    elif candidate.status == NEAR_MISS:
                        counters["verify_near_miss"] += 1
                    else:
                        counters["verify_fail"] += 1
                span.set_attributes(
                    {
                        "pass": counters["verify_pass"],
                        "near_miss": counters["verify_near_miss"],
                        "fail": counters["verify_fail"],
                    }
                )

            # --- execute -------------------------------------------------
            clock.start_stage("execute")
            with self.tracer.span("execute") as span:
                runnable = sorted(
                    (c for c in candidates if c.status == PASS),
                    key=lambda c: c.score,
                )
                for candidate in runnable:
                    self._execute(candidate, database, clock, counters)
                span.set_attributes(
                    {
                        "executions": counters["executions"],
                        "truncations": counters["execution_truncations"],
                        "skips": counters["execution_skips"],
                    }
                )

            # --- repair --------------------------------------------------
            clock.start_stage("repair")
            with self.tracer.span("repair") as span:
                span.set_attribute("enabled", budget.repair)
                repaired_candidates: List[PipelineCandidate] = []
                if budget.repair:
                    for candidate in candidates:
                        if candidate.status != NEAR_MISS:
                            continue
                        if clock.exhausted():
                            break
                        counters["repairs_attempted"] += 1
                        fixed = self.repairer.repair(
                            candidate, question, database
                        )
                        if fixed is None:
                            continue
                        counters["repairs_succeeded"] += 1
                        self._execute(fixed, database, clock, counters)
                        repaired_candidates.append(fixed)
                candidates.extend(repaired_candidates)
                span.set_attributes(
                    {
                        "attempted": counters["repairs_attempted"],
                        "succeeded": counters["repairs_succeeded"],
                    }
                )
            clock.end_stage()

            ranked = _rank(candidates)
            for candidate in ranked:
                if not candidate.valid:
                    continue
                if candidate.repaired:
                    counters["repaired_total"] += 1
                else:
                    counters["born_legal_total"] += 1
            root.set_attributes(
                {
                    "db": db_name,
                    "candidates": len(ranked),
                    "timed_out": clock.timed_out,
                }
            )

        self._emit_counters(counters)
        return PipelineResult(
            question=question,
            db_name=db_name,
            budget=budget,
            routed=routed,
            routes=routes,
            candidates=ranked,
            stage_timings={
                name: seconds * 1000.0
                for name, seconds in clock.stage_timings.items()
            },
            timed_out=clock.timed_out,
            counters=counters,
            elapsed_ms=clock.elapsed_ms,
            trace_id=trace_id,
        )

    # ----- helpers -------------------------------------------------------

    def _execute(
        self,
        candidate: PipelineCandidate,
        database: Database,
        clock: BudgetClock,
        counters: Dict[str, int],
    ) -> None:
        outcome = self.executor.execute(
            candidate, database, clock, counters["executions"]
        )
        if outcome.skipped:
            counters["execution_skips"] += 1
            return
        counters["executions"] += 1
        if outcome.truncated:
            counters["execution_truncations"] += 1

    def _emit_counters(self, counters: Dict[str, int]) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        for name, value in counters.items():
            if value:
                metrics.count(f"pipeline_{name}", value)


def _rank(candidates: List[PipelineCandidate]) -> List[PipelineCandidate]:
    """Best-first order with exact-duplicate trees collapsed.

    Two candidates rendering the identical chart (same tokens) keep only
    the better-ranked one; tree-less candidates are never collapsed —
    their errors are part of the report.
    """
    ordered = sorted(candidates, key=PipelineCandidate.rank_key)
    seen = set()
    deduped: List[PipelineCandidate] = []
    for candidate in ordered:
        if candidate.tree is not None:
            key = candidate.vis_text
            if key in seen:
                continue
            seen.add(key)
        deduped.append(candidate)
    return deduped
