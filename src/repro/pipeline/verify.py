"""Verify stage: classify each candidate pass / near-miss / fail.

Two layers of checking, in order:

1. **Grammar** — the candidate must have parsed into a ``VisQuery`` and
   satisfy the structural rules (:func:`repro.grammar.validate
   .validate_query`: select arity per vis type, GROUP BY coverage, set
   shapes).  Grammar breakage is a ``fail`` — there is no local edit
   the repair stage trusts for a malformed tree.
2. **Table-1 legality** — :func:`repro.core.vis_rules.validate_chart`
   judges the chart against the paper's chart-validity rules plus
   data-aware checks (bin units, aggregate types, filter literals).
   All-repairable violations make the candidate a ``near_miss`` — the
   repair stage's input; anything unrepairable is a ``fail``.

The stage mutates candidates in place (status + violations) and returns
them, so it composes with budget checks between candidates.
"""

from __future__ import annotations

from typing import List

from repro.core.vis_rules import ChartViolation, validate_chart
from repro.grammar.errors import GrammarError
from repro.grammar.validate import validate_query
from repro.pipeline.candidate import FAIL, NEAR_MISS, PASS, PipelineCandidate
from repro.storage.schema import Database


class Verifier:
    """Stamps a Table-1 verdict on candidates.

    Stage contract: ``verify(candidate, database) -> candidate`` with
    ``status`` set to ``pass`` / ``near_miss`` / ``fail`` and
    ``violations`` populated.  ``check_literals=False`` skips the
    data-aware literal scan (cheaper on huge tables).
    """

    name = "verify"

    def __init__(self, check_literals: bool = True):
        self.check_literals = check_literals

    def verify(
        self, candidate: PipelineCandidate, database: Database
    ) -> PipelineCandidate:
        """Classify one candidate; never raises."""
        if candidate.tree is None:
            candidate.status = FAIL
            candidate.violations = [
                ChartViolation(
                    code="parse-error",
                    message=candidate.error or "candidate did not parse",
                    repairable=False,
                )
            ]
            return candidate
        try:
            validate_query(candidate.tree)
        except GrammarError as exc:
            candidate.status = FAIL
            candidate.violations = [
                ChartViolation(
                    code="grammar", message=str(exc), repairable=False
                )
            ]
            return candidate
        validation = validate_chart(
            candidate.tree, database, check_literals=self.check_literals
        )
        candidate.violations = list(validation.violations)
        candidate.status = {
            validation.PASS: PASS,
            validation.NEAR_MISS: NEAR_MISS,
            validation.FAIL: FAIL,
        }[validation.status]
        return candidate

    def verify_all(
        self, candidates: List[PipelineCandidate], database: Database
    ) -> List[PipelineCandidate]:
        """Verify a batch (no budget awareness — the pipeline owns that)."""
        return [self.verify(candidate, database) for candidate in candidates]
