"""Execute stage: run verified candidates against the storage engine.

Guardrails, in priority order:

* **budget** — the stage checks the :class:`~repro.pipeline.budget
  .BudgetClock` *between* candidates; once exhausted, remaining
  candidates get ``skipped`` outcomes instead of running (partial
  results over preemption).
* **execution cap** — at most ``budget.max_executions`` queries per
  request, protecting the server from a wide beam of heavy scans.
* **row cap** — result tables are truncated to ``budget.max_rows``
  rows and the outcome flags ``truncated`` so callers know the chart
  data is a prefix, not the full answer.

Executions go through :class:`repro.storage.ExecutionCache`, so the
same query body decoded for two candidates (bar + pie over one
aggregation) runs once, and so do repeats across requests.
"""

from __future__ import annotations

from typing import Optional

from repro.pipeline.budget import BudgetClock
from repro.pipeline.candidate import ExecutionOutcome, PipelineCandidate
from repro.storage.executor import ExecutionCache, ExecutionError, Executor
from repro.storage.schema import Database


class ExecuteStage:
    """Runs candidates with row/time/count guardrails.

    Stage contract: ``execute(candidate, database, clock, executed) ->
    ExecutionOutcome`` (also attached to the candidate); ``executed``
    is how many queries already ran this request.
    """

    name = "execute"

    def __init__(self, cache: Optional[ExecutionCache] = None):
        self.cache = cache if cache is not None else ExecutionCache()
        self._executors = {}

    def executor_for(self, database: Database) -> Executor:
        executor = self._executors.get(database.name)
        if executor is None or executor.database is not database:
            executor = Executor(database, cache=self.cache)
            self._executors[database.name] = executor
        return executor

    def execute(
        self,
        candidate: PipelineCandidate,
        database: Database,
        clock: BudgetClock,
        executed: int,
    ) -> ExecutionOutcome:
        """Run one candidate; never raises."""
        if clock.exhausted() or executed >= clock.budget.max_executions:
            outcome = ExecutionOutcome(skipped=True)
            candidate.execution = outcome
            return outcome
        try:
            table = self.executor_for(database).execute(candidate.tree)
        except ExecutionError as exc:
            outcome = ExecutionOutcome(error=str(exc))
        except Exception as exc:  # noqa: BLE001 - guardrail, not a crash
            outcome = ExecutionOutcome(error=f"{type(exc).__name__}: {exc}")
        else:
            max_rows = clock.budget.max_rows
            truncated = max_rows is not None and table.row_count > max_rows
            outcome = ExecutionOutcome(
                rows=min(table.row_count, max_rows) if truncated else table.row_count,
                columns=list(table.columns),
                truncated=truncated,
            )
        candidate.execution = outcome
        return outcome
