"""Staged NL2VIS copilot: route → generate → verify → execute → repair.

The :class:`Pipeline` composes five swappable, traced, budgeted stages
over a database corpus and returns every candidate with its verdict —
ambiguous questions yield a ranked set of distinct valid charts, which
is what accuracy@k in :mod:`repro.eval` measures.

Quick start::

    from repro.pipeline import Budget, Generator, Pipeline

    pipeline = Pipeline(databases, Generator(translator))
    result = pipeline.run("show the number of flights per carrier")
    for chart in result.charts:
        print(chart.vis_text)
"""

from repro.pipeline.budget import Budget, BudgetClock
from repro.pipeline.candidate import (
    DECODED,
    FAIL,
    NEAR_MISS,
    PASS,
    ExecutionOutcome,
    PipelineCandidate,
)
from repro.pipeline.execute import ExecuteStage
from repro.pipeline.generate import Generator
from repro.pipeline.pipeline import STAGES, Pipeline, PipelineResult
from repro.pipeline.repair import REPAIR_PENALTY, Repairer
from repro.pipeline.route import Router, RouteScore
from repro.pipeline.verify import Verifier

__all__ = [
    "Budget",
    "BudgetClock",
    "DECODED",
    "ExecuteStage",
    "ExecutionOutcome",
    "FAIL",
    "Generator",
    "NEAR_MISS",
    "PASS",
    "Pipeline",
    "PipelineCandidate",
    "PipelineResult",
    "REPAIR_PENALTY",
    "Repairer",
    "RouteScore",
    "Router",
    "STAGES",
    "Verifier",
]
