"""Route stage: pick the target database for a question.

A served corpus holds many databases; a question names none explicitly.
The router scores every database with a schema-linking heuristic —
exact column-phrase matches (strongest signal), table-name mentions,
and bag-of-tokens overlap between the question and the schema
vocabulary — and returns a deterministic ranking.  The same scorer
doubles as a *table* ranking within the chosen database (which tables
the question is about), surfaced on the route result for downstream
consumers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

from repro.baselines.common import match_columns
from repro.nlp.tokenize import tokenize_nl
from repro.storage.schema import Database

_STOPWORDS = frozenset(
    "a an the of for in on by per and or to show me all each every with"
    " what which how many number count total average".split()
)


@dataclass
class RouteScore:
    """One database's routing evidence."""

    db_name: str
    score: float
    #: qualified names of columns whose phrase occurs in the question
    matched_columns: List[str] = field(default_factory=list)
    #: tables mentioned by name in the question
    matched_tables: List[str] = field(default_factory=list)
    #: fraction of (non-stopword) question tokens found in the schema
    token_overlap: float = 0.0

    def to_json(self) -> dict:
        return {
            "db": self.db_name,
            "score": round(self.score, 4),
            "matched_columns": list(self.matched_columns),
            "matched_tables": list(self.matched_tables),
            "token_overlap": round(self.token_overlap, 4),
        }


class Router:
    """Scores databases (and tables) against a question.

    Stage contract: ``route(question, databases) -> List[RouteScore]``
    ranked best-first, deterministic for identical inputs (ties break on
    database name).  Swap in any object with that method to change the
    routing policy.
    """

    name = "route"

    #: scoring weights: exact column-phrase hits dominate, table-name
    #: mentions help, raw token overlap breaks near-ties
    column_weight: float = 2.0
    table_weight: float = 1.5
    overlap_weight: float = 1.0

    def route(
        self, question: str, databases: Dict[str, Database]
    ) -> List[RouteScore]:
        """Rank every database by schema-linking evidence."""
        scores = [
            self.score(question, database)
            for database in databases.values()
        ]
        scores.sort(key=lambda s: (-s.score, s.db_name))
        return scores

    def score(self, question: str, database: Database) -> RouteScore:
        """Score one database against the question."""
        lowered = question.lower()
        matches = match_columns(question, database)
        matched_columns = [
            f"{table}.{column.name}"
            for table, columns in sorted(matches.items())
            for column in columns
        ]
        matched_tables = [
            name for name in sorted(database.tables)
            if re.search(rf"\b{re.escape(name.replace('_', ' '))}", lowered)
        ]
        overlap = self._token_overlap(question, database)
        score = (
            self.column_weight * len(matched_columns)
            + self.table_weight * len(matched_tables)
            + self.overlap_weight * overlap
        )
        return RouteScore(
            db_name=database.name,
            score=score,
            matched_columns=matched_columns,
            matched_tables=matched_tables,
            token_overlap=overlap,
        )

    def rank_tables(self, question: str, database: Database) -> List[str]:
        """Tables of *database* ranked by how much the question hits them."""
        lowered = question.lower()
        matches = match_columns(question, database)
        ranked = []
        for name in database.tables:
            hits = float(len(matches.get(name, [])))
            if re.search(rf"\b{re.escape(name.replace('_', ' '))}", lowered):
                hits += 1.5
            ranked.append((-hits, name))
        ranked.sort()
        return [name for _, name in ranked]

    @staticmethod
    def _token_overlap(question: str, database: Database) -> float:
        tokens = [
            token for token in tokenize_nl(question)
            if token.isalpha() and token not in _STOPWORDS
        ]
        if not tokens:
            return 0.0
        schema_vocab = set()
        for table_name, column in database.iter_columns():
            schema_vocab.update(table_name.lower().split("_"))
            schema_vocab.update(column.name.lower().split("_"))
        hits = sum(1 for token in tokens if token in schema_vocab)
        return hits / len(tokens)
