"""Generate stage: decode N ranked chart candidates for a question.

Wraps any :class:`repro.serve.registry.Translator` — a neural seq2vis
model (batched beam search through the existing fast decode path) or a
rule-based baseline (its native top-k list) — behind one stage contract:
``generate(question, database, n) -> List[PipelineCandidate]``, ranked
best-first.  Every hypothesis is parsed and value-slot-filled
best-effort; unparseable ones come back as candidates with ``error``
set so the verify stage can classify them instead of the decode
swallowing them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import from_tokens
from repro.neural.slots import fill_value_slots
from repro.pipeline.candidate import PipelineCandidate
from repro.serve.translate import DecodeConfig
from repro.storage.schema import Database


class Generator:
    """Decodes ranked candidates through a served translator.

    Parameters
    ----------
    translator:
        Any ``Translator`` (``NeuralTranslator`` runs a batched beam,
        ``BaselineTranslator`` returns its rule system's ranked list).
    max_width:
        Beam-width ceiling; asking for more candidates than this widens
        nothing further (mirrors the server's ``max_beam_width`` cap).
    """

    name = "generate"

    def __init__(self, translator, model_name: str = "", max_width: int = 8):
        self.translator = translator
        self.model_name = model_name
        self.max_width = max_width

    def generate(
        self,
        question: str,
        database: Database,
        n: int,
        encoder_cache=None,
    ) -> List[PipelineCandidate]:
        """Top-*n* decoded candidates, best first."""
        n = max(1, min(n, self.max_width))
        decode = DecodeConfig(beam_width=n, num_candidates=n)
        result = self.translator.translate_requests(
            [(question, database)],
            decode=decode,
            encoder_cache=encoder_cache,
            model_name=self.model_name,
        )[0]
        candidates: List[PipelineCandidate] = []
        if result.candidates:
            for summary in result.candidates:
                candidates.append(
                    self._parse(summary.tokens, summary.score, question, database)
                )
        elif result.tokens or result.tree is not None:
            candidate = self._parse(result.tokens, 0.0, question, database)
            if candidate.tree is None and result.tree is not None:
                # Baselines hand back a tree directly; trust it.
                candidate.tree = result.tree
                candidate.error = None
            candidates.append(candidate)
        else:
            candidates.append(
                PipelineCandidate(
                    tokens=[], score=0.0,
                    error=result.error or "translator produced no output",
                )
            )
        return candidates

    @staticmethod
    def _parse(
        tokens: List[str], score: float, question: str, database: Database
    ) -> PipelineCandidate:
        candidate = PipelineCandidate(tokens=list(tokens), score=score)
        try:
            tree = fill_value_slots(from_tokens(tokens), question, database)
        except Exception as exc:  # noqa: BLE001 - verify classifies failures
            candidate.error = str(exc)
            return candidate
        if not isinstance(tree, VisQuery):
            candidate.error = "decoded query is not a visualization"
            return candidate
        candidate.tree = tree
        return candidate
