"""Repair stage: rewrite near-miss candidates into legal charts.

Three families of rule, mirroring the violation codes the verifier
emits:

* **snap the chart type** (``illegal-vis-type`` / ``group-mismatch`` /
  ``bin-unit``) — rebuild the tree against the nearest legal
  :class:`~repro.core.vis_rules.ChartSpec` for the candidate's type
  signature: pick the closest legal vis type (bar↔pie↔stacked-bar stay
  in the bar family, scatter↔line stay in the point family), re-arrange
  axes, insert/adjust the group operations and the measure aggregate
  the spec demands, and fix bin units to the column type.  Filters and
  superlatives survive the rebuild; an Order survives when the target
  type supports ordering.
* **snap the aggregate** (``bad-aggregate``) — ``sum``/``avg`` over a
  categorical or temporal column becomes ``count``.
* **fuzzy-match literals** (``unknown-literal``) — a filter literal
  that names no real cell value is matched against the column's actual
  values (case-insensitive exact first, then ``difflib`` closest
  match), so ``city = 'sam francisco'`` becomes the real spelling.

A repaired candidate is re-verified before it is accepted; repair never
returns a tree that still violates Table 1.  The original near-miss
candidate is left untouched — the pipeline reports both.
"""

from __future__ import annotations

import difflib
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.core.vis_rules import (
    GROUP_BINNING,
    GROUP_GROUPING,
    ChartSpec,
    arrange_axes,
    chart_signature,
    chart_specs_for,
)
from repro.grammar.ast_nodes import (
    Attribute,
    BIN_UNITS,
    Comparison,
    Filter,
    Group,
    LogicalPredicate,
    Predicate,
    QueryCore,
    SetQuery,
    VisQuery,
)
from repro.grammar.serialize import to_tokens
from repro.grammar.validate import ORDERABLE_VIS_TYPES, validate_query
from repro.pipeline.candidate import PASS, PipelineCandidate
from repro.pipeline.verify import Verifier
from repro.storage.schema import Database

#: Preference order when snapping an illegal chart type to a legal one:
#: stay within the mark family (bar-like → bar-like, point-like →
#: point-like) before jumping across.
_NEAREST = {
    "bar": ("stacked bar", "pie", "line", "scatter"),
    "pie": ("bar", "stacked bar", "line"),
    "line": ("bar", "scatter", "pie"),
    "scatter": ("line", "grouping scatter", "bar"),
    "stacked bar": ("bar", "grouping line", "pie"),
    "grouping line": ("stacked bar", "line", "grouping scatter"),
    "grouping scatter": ("scatter", "grouping line", "stacked bar"),
}

#: score handicap a repaired candidate carries against born-legal ones
REPAIR_PENALTY = 0.25


class Repairer:
    """Turns near-miss candidates into verified-legal ones.

    Stage contract: ``repair(candidate, question, database) ->
    Optional[PipelineCandidate]`` — a *new* candidate with
    ``repaired=True`` and a re-verified ``pass`` status, or ``None``
    when no rule applies (the near-miss then stays reported as such).
    """

    name = "repair"

    def __init__(self, verifier: Optional[Verifier] = None):
        self.verifier = verifier or Verifier()

    def repair(
        self,
        candidate: PipelineCandidate,
        question: str,
        database: Database,
    ) -> Optional[PipelineCandidate]:
        """Attempt every applicable rule; return a legal copy or None."""
        if candidate.tree is None:
            return None
        codes = set(
            violation.code for violation in candidate.violations
        )
        tree = candidate.tree
        notes: List[str] = []
        if "unknown-literal" in codes:
            tree = _fix_literals(tree, database, notes)
        if "bad-aggregate" in codes:
            tree = _fix_aggregates(tree, database, notes)
        if codes & {
            "illegal-vis-type", "group-mismatch", "bin-unit",
            "illegal-combination",
        }:
            conformed = _conform(tree, database, notes)
            if conformed is None:
                return None
            tree = conformed
        if not notes:
            return None
        repaired = PipelineCandidate(
            tokens=to_tokens(tree),
            score=candidate.score + REPAIR_PENALTY,
            tree=tree,
            repaired=True,
            repairs=notes,
        )
        self.verifier.verify(repaired, database)
        if repaired.status != PASS:
            return None
        return repaired


# ----- literal fuzzy matching ---------------------------------------------


def _fix_literals(
    query: VisQuery, database: Database, notes: List[str]
) -> VisQuery:
    def fix_pred(pred: Predicate) -> Predicate:
        if isinstance(pred, LogicalPredicate):
            return LogicalPredicate(
                op=pred.op, left=fix_pred(pred.left), right=fix_pred(pred.right)
            )
        if not isinstance(pred, Comparison):
            return pred
        if pred.op not in ("=", "!=") or not isinstance(pred.value, str):
            return pred
        match = _closest_value(pred, database)
        if match is None or str(match) == pred.value:
            return pred
        notes.append(
            f"literal {pred.value!r} -> {match!r} on {pred.attr.qualified_name}"
        )
        return replace(pred, value=match)

    def fix_core(core: QueryCore) -> QueryCore:
        if core.filter is None:
            return core
        return replace(core, filter=Filter(root=fix_pred(core.filter.root)))

    body = query.body
    if isinstance(body, SetQuery):
        new_body = SetQuery(
            op=body.op, left=fix_core(body.left), right=fix_core(body.right)
        )
    else:
        new_body = fix_core(body)
    return VisQuery(vis_type=query.vis_type, body=new_body)


def _closest_value(pred: Comparison, database: Database):
    """The column value closest to the predicate's literal, if any."""
    try:
        if database.column_type(pred.attr.table, pred.attr.column) != "C":
            return None
        values = database.table(pred.attr.table).column_values(pred.attr.column)
    except Exception:
        return None
    by_text = {}
    for value in values:
        if value is not None:
            by_text.setdefault(str(value), value)
    if not by_text:
        return None
    folded = {text.casefold(): text for text in sorted(by_text)}
    exact = folded.get(pred.value.casefold())
    if exact is not None:
        return by_text[exact]
    close = difflib.get_close_matches(
        pred.value, sorted(by_text), n=1, cutoff=0.5
    )
    if not close:
        close = difflib.get_close_matches(
            pred.value.casefold(), sorted(folded), n=1, cutoff=0.5
        )
        if not close:
            return None
        return by_text[folded[close[0]]]
    return by_text[close[0]]


# ----- aggregate snapping -------------------------------------------------


def _fix_aggregates(
    query: VisQuery, database: Database, notes: List[str]
) -> VisQuery:
    def fix_core(core: QueryCore) -> QueryCore:
        new_select = []
        for attr in core.select:
            if attr.agg in ("sum", "avg") and attr.column != "*":
                try:
                    ctype = database.column_type(attr.table, attr.column)
                except Exception:
                    ctype = "Q"
                if ctype != "Q":
                    notes.append(f"{attr.agg}({attr.qualified_name}) -> count")
                    attr = replace(attr, agg="count")
            new_select.append(attr)
        return replace(core, select=tuple(new_select))

    body = query.body
    if isinstance(body, SetQuery):
        new_body = SetQuery(
            op=body.op, left=fix_core(body.left), right=fix_core(body.right)
        )
    else:
        new_body = fix_core(body)
    return VisQuery(vis_type=query.vis_type, body=new_body)


# ----- structural conformance ---------------------------------------------


def _conform(
    query: VisQuery, database: Database, notes: List[str]
) -> Optional[VisQuery]:
    """Rebuild *query* against the nearest legal chart spec.

    Set-operation bodies are left alone (axes span two cores; no local
    rebuild is trustworthy there).
    """
    if isinstance(query.body, SetQuery):
        return None
    core = query.body
    try:
        signature, info = chart_signature(core, database)
    except Exception:
        return None
    specs = chart_specs_for(signature)
    if not specs:
        return None
    spec = _pick_spec(query, specs, info)
    if spec is None:
        return None

    bare: List[Tuple[Attribute, str]] = [
        (attr.bare(), ctype) for attr, ctype, is_count in info if not is_count
    ]
    original_agg = next(
        (
            attr.agg for attr, _, is_count in info
            if not is_count and attr.is_aggregated
        ),
        None,
    )
    if spec.count_measure:
        x_attr = _prefer_x(bare, spec)
        measure = Attribute(column="*", table=x_attr.table, agg="count")
        select: Tuple[Attribute, ...] = (x_attr, measure)
        color = None
    else:
        axes = arrange_axes(bare, spec)
        x_attr = axes[0]
        color = axes[2] if spec.arity == 3 else None
        measure = axes[1]
        if spec.needs_aggregate:
            agg = original_agg if original_agg else "sum"
            measure = replace(measure, agg=agg)
        select = (x_attr, measure) + ((color,) if color is not None else ())

    groups = []
    x_type = dict((attr.qualified_name, ctype) for attr, ctype in bare).get(
        x_attr.qualified_name, "C"
    )
    if spec.x_group == GROUP_GROUPING:
        groups.append(Group(kind="grouping", attr=x_attr))
    elif spec.x_group == GROUP_BINNING:
        groups.append(
            Group(kind="binning", attr=x_attr, bin_unit=_bin_unit(core, x_attr, x_type))
        )
    if color is not None and spec.color_group == GROUP_GROUPING:
        groups.append(Group(kind="grouping", attr=color))

    order = core.order
    if order is not None:
        selected = {attr.qualified_name for attr in select}
        if (
            spec.vis_type not in ORDERABLE_VIS_TYPES
            or order.attr.qualified_name not in selected
        ):
            notes.append("dropped order (illegal for repaired chart)")
            order = None

    try:
        rebuilt = VisQuery(
            vis_type=spec.vis_type,
            body=QueryCore(
                select=select,
                filter=core.filter,
                groups=tuple(groups),
                order=order,
                superlative=core.superlative,
            ),
        )
        validate_query(rebuilt)
    except Exception:
        return None
    if spec.vis_type != query.vis_type:
        notes.append(f"vis type {query.vis_type!r} -> {spec.vis_type!r}")
    else:
        notes.append(f"conformed group/aggregate layout for {spec.vis_type!r}")
    return rebuilt


def _pick_spec(
    query: VisQuery, specs: List[ChartSpec], info
) -> Optional[ChartSpec]:
    """The target spec: same type if legal, else the nearest legal type.

    Among specs of the chosen type, prefer one whose aggregation demand
    matches what the candidate already has — least-surprising rebuild.
    """
    legal_types = list(dict.fromkeys(spec.vis_type for spec in specs))
    if query.vis_type in legal_types:
        target = query.vis_type
    else:
        target = next(
            (
                vis_type for vis_type in _NEAREST.get(query.vis_type, ())
                if vis_type in legal_types
            ),
            legal_types[0],
        )
    of_type = [spec for spec in specs if spec.vis_type == target]
    if not of_type:
        return None
    has_aggregate = any(
        attr.is_aggregated for attr, _, is_count in info if not is_count
    ) or any(is_count for _, _, is_count in info)
    matching = [spec for spec in of_type if
                (spec.needs_aggregate or spec.count_measure) == has_aggregate]
    return (matching or of_type)[0]


def _prefer_x(bare: List[Tuple[Attribute, str]], spec: ChartSpec) -> Attribute:
    want = "C" if spec.x_group == GROUP_GROUPING else ("T", "Q")
    for attr, ctype in bare:
        if ctype in want:
            return attr
    return bare[0][0]


def _bin_unit(core: QueryCore, attr: Attribute, ctype: str) -> str:
    """Keep the candidate's bin unit when it suits the column type."""
    for group in core.groups:
        if (
            group.kind == "binning"
            and group.attr.qualified_name == attr.qualified_name
            and group.bin_unit in BIN_UNITS
        ):
            if ctype == "T" and group.bin_unit != "numeric":
                return group.bin_unit
            if ctype == "Q" and group.bin_unit == "numeric":
                return group.bin_unit
    return "year" if ctype == "T" else "numeric"
