"""The unit of work the pipeline stages pass along: one chart candidate.

``generate`` produces :class:`PipelineCandidate` objects from decoded
token sequences; ``verify`` stamps a Table-1 verdict and violations on
them; ``repair`` may derive a fixed copy; ``execute`` attaches an
:class:`ExecutionOutcome`.  A candidate is never silently dropped — a
near-miss that could not be repaired or a fail travels to the final
result with its status intact, so callers always see *why* something is
missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.vis_rules import ChartViolation
from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import to_text

#: candidate lifecycle states (``decoded`` means verify never ran —
#: only possible when the budget expired mid-verify)
DECODED, PASS, NEAR_MISS, FAIL = "decoded", "pass", "near_miss", "fail"


@dataclass
class ExecutionOutcome:
    """What happened when a candidate hit the storage engine."""

    rows: int = 0
    columns: List[str] = field(default_factory=list)
    #: row cap applied — the chart data is a prefix of the true result
    truncated: bool = False
    error: Optional[str] = None
    #: budget ran out before this candidate's turn
    skipped: bool = False

    @property
    def ok(self) -> bool:
        """True when the candidate executed (possibly truncated)."""
        return self.error is None and not self.skipped

    def to_json(self) -> dict:
        return {
            "rows": self.rows,
            "columns": list(self.columns),
            "truncated": self.truncated,
            "error": self.error,
            "skipped": self.skipped,
        }


@dataclass
class PipelineCandidate:
    """One ranked chart hypothesis moving through the stages."""

    tokens: List[str]
    #: ranking score, lower is better (beam: length-normalized negative
    #: log prob; baselines: rank index; repairs add a penalty)
    score: float
    tree: Optional[VisQuery] = None
    #: parse failure for trees that never materialized
    error: Optional[str] = None
    status: str = DECODED
    violations: List[ChartViolation] = field(default_factory=list)
    #: True when the repair stage rewrote this candidate
    repaired: bool = False
    #: human-readable notes of what repair changed
    repairs: List[str] = field(default_factory=list)
    execution: Optional[ExecutionOutcome] = None

    @property
    def vis_text(self) -> Optional[str]:
        """Canonical text of the candidate tree (``None`` without one)."""
        return to_text(self.tree) if self.tree is not None else None

    @property
    def valid(self) -> bool:
        """Verified legal and executed successfully — servable."""
        return (
            self.status == PASS
            and self.execution is not None
            and self.execution.ok
        )

    def rank_key(self) -> tuple:
        """Sort key for the final ranking (ascending = best first)."""
        status_rank = {PASS: 0, NEAR_MISS: 1, DECODED: 2, FAIL: 3}
        executed = self.execution is not None and self.execution.ok
        return (0 if executed else 1, status_rank.get(self.status, 3), self.score)

    def to_json(self) -> dict:
        return {
            "tokens": list(self.tokens),
            "score": self.score,
            "vis": self.vis_text,
            "error": self.error,
            "status": self.status,
            "violations": [
                {
                    "code": violation.code,
                    "message": violation.message,
                    "repairable": violation.repairable,
                    "legal_types": list(violation.legal_types),
                }
                for violation in self.violations
            ],
            "repaired": self.repaired,
            "repairs": list(self.repairs),
            "execution": self.execution.to_json() if self.execution else None,
        }
