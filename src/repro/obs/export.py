"""Span exporters: where finished spans go.

An exporter is anything with ``export(record: dict)`` and ``close()``.
Three are provided:

* :class:`JsonlExporter` — one JSON object per line, append-mode, the
  on-disk format ``repro trace summarize`` reads;
* :class:`InMemoryExporter` — a list, for tests and for pool workers
  that ship their spans back to the coordinating process;
* :class:`NullExporter` — swallows everything (an *enabled* tracer that
  keeps only its counters).

Records are the :meth:`repro.obs.trace.Span.to_dict` schema; the format
is documented field-by-field in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterator, List, Optional


class NullExporter:
    """Discards every span."""

    def export(self, record: dict) -> None:
        """Drop *record*."""

    def close(self) -> None:
        """Nothing to release."""


class InMemoryExporter:
    """Collects spans in a list (thread-safe)."""

    def __init__(self) -> None:
        self._records: List[dict] = []
        self._lock = threading.Lock()

    def export(self, record: dict) -> None:
        """Append *record*."""
        with self._lock:
            self._records.append(record)

    def records(self) -> List[dict]:
        """A snapshot of everything exported so far."""
        with self._lock:
            return list(self._records)

    def close(self) -> None:
        """Nothing to release."""


class JsonlExporter:
    """Appends one JSON line per span to *path*.

    Lines are written eagerly (the file handle is line-buffered via an
    explicit flush per span), so a crashed process still leaves a
    readable trace of everything it finished.  Thread-safe: the server
    exports from the event loop and from executor threads concurrently.
    """

    def __init__(self, path: str):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.exported = 0

    def export(self, record: dict) -> None:
        """Serialize *record* onto its own line."""
        line = json.dumps(record, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.exported += 1

    def close(self) -> None:
        """Flush and close the file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_spans(path: str) -> List[dict]:
    """Read a JSONL trace export back into span records.

    *path* may also be a **directory**: every ``*.jsonl`` inside (sorted
    by name) is concatenated, which is how multi-process traces come
    back together — the worker pool writes ``front.jsonl`` plus one
    ``worker-N.jsonl`` per process, all sharing trace ids, and the span
    tree stitches them because parent ids cross the files.

    Blank lines are skipped; a malformed line raises ``ValueError`` with
    its line number so a truncated export is diagnosable.
    """
    target = Path(path)
    if target.is_dir():
        files = sorted(target.glob("*.jsonl"))
        if not files:
            raise ValueError(f"{path}: directory holds no .jsonl trace files")
        records: List[dict] = []
        for file in files:
            records.extend(load_spans(str(file)))
        return records
    records = []
    for number, line in enumerate(_lines(path), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{number}: not a JSON span record: {exc}"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{number}: span record is not an object")
        records.append(record)
    return records


def _lines(path: str) -> Iterator[str]:
    with open(path, "r", encoding="utf-8") as handle:
        yield from handle


def make_exporter(path: Optional[str]):
    """``None`` → ``None`` (buffered tracer), else a :class:`JsonlExporter`."""
    return JsonlExporter(path) if path else None
