"""Observability layer: structured tracing across build, train, serve.

``repro.obs`` is the diagnostic backbone of the reproduction: one
:class:`Tracer` threads through the three hot paths — the parallel
benchmark build (``build_nvbench``), the training loop
(``train_model``), and the inference server (trace id minted at HTTP
ingress, propagated through micro-batch coalescing, returned as the
``X-Trace-Id`` response header) — and exports finished spans as JSONL.
``python -m repro trace summarize`` renders an export as a span tree
with per-stage latency breakdowns.

Everything is stdlib-only and zero-overhead when disabled: every
instrumented entry point takes ``tracer=None``, and a disabled tracer
returns a shared no-op span.  See ``docs/OBSERVABILITY.md`` for the
span model, the exporter format, and worked examples.
"""

from repro.obs.export import (
    InMemoryExporter,
    JsonlExporter,
    NullExporter,
    load_spans,
    make_exporter,
)
from repro.obs.summarize import (
    SpanNode,
    render_stage_table,
    render_tree,
    span_tree,
    stage_table,
    summarize,
)
from repro.obs.trace import NOOP_SPAN, Span, SpanContext, Tracer, traced

__all__ = [
    "InMemoryExporter",
    "JsonlExporter",
    "NOOP_SPAN",
    "NullExporter",
    "Span",
    "SpanContext",
    "SpanNode",
    "Tracer",
    "load_spans",
    "make_exporter",
    "render_stage_table",
    "render_tree",
    "span_tree",
    "stage_table",
    "summarize",
    "traced",
]
