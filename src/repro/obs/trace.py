"""Structured tracing: :class:`Tracer` and :class:`Span`.

One trace follows one unit of work — a benchmark build, a training run,
an HTTP request — as a tree of timed spans.  A span has a name, a
monotonic duration, free-form attributes, optional timestamped events,
and an ``ok``/``error`` status; parent/child links are carried by
``(trace_id, span_id)`` contexts that serialize to plain dicts, so a
trace can cross process boundaries (the parallel build ships a context
into each pool worker and merges the returned spans deterministically).

Design rules, mirroring :mod:`repro.perf`:

* **stdlib only** — no OpenTelemetry; the span schema is documented in
  ``docs/OBSERVABILITY.md`` and written as JSONL by
  :class:`repro.obs.export.JsonlExporter`.
* **zero overhead when off** — every instrumented entry point takes
  ``tracer=None``; the :func:`traced` helper and a disabled
  :class:`Tracer` both short-circuit to a shared no-op span without
  allocating.
* **explicit or ambient parenting** — ``tracer.span(...)`` nests under
  the innermost active span of the current (async) context by default;
  pass ``parent=`` (a :class:`Span`, a :class:`SpanContext`, or a
  serialized context dict) to cross threads, processes, or sockets.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union


@dataclass(frozen=True)
class SpanContext:
    """The serializable identity of a span: who to parent new spans to."""

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        """Plain-dict form (pickles into pool workers, rides HTTP headers)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "SpanContext":
        """Rebuild a context serialized by :meth:`to_dict`."""
        return cls(trace_id=payload["trace_id"], span_id=payload["span_id"])


ParentLike = Union["Span", SpanContext, Dict[str, str], None]


def _context_of(parent: ParentLike) -> Optional[SpanContext]:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    if isinstance(parent, SpanContext):
        return parent
    return SpanContext.from_dict(parent)


class Span:
    """One timed operation inside a trace.

    Created via :meth:`Tracer.span` / :meth:`Tracer.start_span`; mutate
    it while open (:meth:`set_attribute`, :meth:`add_event`,
    :meth:`set_error`) and it exports itself when it ends.
    """

    __slots__ = (
        "name", "context", "parent_id", "attributes", "events",
        "status", "error", "start_unix", "duration_ms",
        "_tracer", "_t0", "_token", "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        context: SpanContext,
        parent_id: Optional[str],
        attributes: Optional[dict] = None,
    ):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[Dict[str, object]] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.start_unix = tracer._wall()
        self.duration_ms: Optional[float] = None
        self._tracer = tracer
        self._t0 = tracer._clock()
        self._token: Optional[contextvars.Token] = None
        self._ended = False

    # ----- identity -----------------------------------------------------

    @property
    def trace_id(self) -> str:
        """Trace this span belongs to."""
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        """This span's own id."""
        return self.context.span_id

    @property
    def recording(self) -> bool:
        """True — no-op spans override this."""
        return True

    # ----- mutation while open ------------------------------------------

    def set_attribute(self, key: str, value: object) -> "Span":
        """Attach one ``key: value`` attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    def set_attributes(self, values: dict) -> "Span":
        """Attach many attributes at once."""
        self.attributes.update(values)
        return self

    def add_event(self, name: str, **attributes: object) -> "Span":
        """Record a point-in-time event at the current offset."""
        self.events.append(
            {
                "name": name,
                "offset_ms": (self._tracer._clock() - self._t0) * 1000.0,
                "attributes": dict(attributes),
            }
        )
        return self

    def set_error(self, error: Union[str, BaseException]) -> "Span":
        """Mark the span failed; keeps the message for the export."""
        self.status = "error"
        self.error = f"{type(error).__name__}: {error}" if isinstance(
            error, BaseException
        ) else str(error)
        return self

    # ----- lifecycle ----------------------------------------------------

    def end(self) -> None:
        """Stop the clock and export; safe to call once."""
        if self._ended:
            return
        self._ended = True
        self.duration_ms = (self._tracer._clock() - self._t0) * 1000.0
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.status == "ok":
            self.set_error(exc)
        self.end()

    # ----- export -------------------------------------------------------

    def to_dict(self) -> dict:
        """The exporter-facing record (see ``docs/OBSERVABILITY.md``)."""
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }


class _NoopSpan:
    """Shared do-nothing span for disabled tracers and ``tracer=None``."""

    __slots__ = ()

    name = "noop"
    parent_id = None
    status = "ok"
    error = None
    duration_ms = None
    recording = False

    @property
    def context(self) -> None:  # no identity: nothing to parent to
        return None

    trace_id = span_id = None

    def set_attribute(self, key, value):  # noqa: D102 - mirrors Span
        return self

    def set_attributes(self, values):  # noqa: D102
        return self

    def add_event(self, name, **attributes):  # noqa: D102
        return self

    def set_error(self, error):  # noqa: D102
        return self

    def end(self):  # noqa: D102
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        pass


NOOP_SPAN = _NoopSpan()


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Tracer:
    """Creates spans and hands finished ones to an exporter.

    Parameters
    ----------
    exporter:
        Receives each finished span as a dict (see
        :mod:`repro.obs.export`).  ``None`` keeps spans in an internal
        buffer readable via :meth:`finished`.
    enabled:
        ``False`` turns every call into a shared no-op span — the
        disabled tracer can stay wired through hot paths permanently.
    clock / wall:
        Monotonic clock for durations, wall clock for start timestamps
        (injectable for deterministic tests).
    """

    def __init__(
        self,
        exporter=None,
        enabled: bool = True,
        clock=time.perf_counter,
        wall=time.time,
    ):
        self.exporter = exporter
        self.enabled = enabled
        self._clock = clock
        self._wall = wall
        self._buffer: List[dict] = []
        self._lock = threading.Lock()
        self._active: contextvars.ContextVar = contextvars.ContextVar(
            f"repro-obs-active-{id(self)}", default=None
        )
        self.spans_started = 0
        self.spans_finished = 0

    # ----- span creation -------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: ParentLike = None,
        activate: bool = False,
        **attributes: object,
    ) -> Union[Span, _NoopSpan]:
        """Open a span; the caller must :meth:`Span.end` it.

        Without an explicit *parent* the innermost span activated in the
        current context is used; a new trace id is minted when there is
        neither.  ``activate=True`` additionally makes the span the
        ambient parent for the current context until it ends.
        """
        if not self.enabled:
            return NOOP_SPAN
        context = _context_of(parent)
        if context is None:
            context = self._active.get()
        if context is not None:
            # A context with an empty span_id (e.g. a bare inbound
            # ``x-trace-id`` header) roots the span in an existing trace.
            trace_id, parent_id = context.trace_id, context.span_id or None
        else:
            trace_id, parent_id = _new_id(), None
        span = Span(
            self,
            name,
            SpanContext(trace_id=trace_id, span_id=_new_id()),
            parent_id,
            attributes,
        )
        with self._lock:
            self.spans_started += 1
        if activate:
            span._token = self._active.set(span.context)
        return span

    @contextmanager
    def span(
        self, name: str, parent: ParentLike = None, **attributes: object
    ) -> Iterator[Union[Span, _NoopSpan]]:
        """``with tracer.span("stage"):`` — activated, error-recording.

        The span is the ambient parent inside the block, records an
        uncaught exception as its error status, and always ends.
        """
        span = self.start_span(name, parent=parent, activate=True, **attributes)
        try:
            yield span
        except BaseException as exc:
            span.set_error(exc)
            raise
        finally:
            span.end()

    def record(
        self,
        name: str,
        parent: ParentLike = None,
        start_unix: Optional[float] = None,
        duration_s: float = 0.0,
        status: str = "ok",
        error: Optional[str] = None,
        **attributes: object,
    ) -> Union[Span, _NoopSpan]:
        """Emit an already-measured span (post-hoc, e.g. batch timings).

        The micro-batcher times one shared forward pass and then records
        a ``decode`` span per coalesced request, each under its own
        request's trace — this is the API for such after-the-fact spans.
        """
        if not self.enabled:
            return NOOP_SPAN
        span = self.start_span(name, parent=parent, **attributes)
        if start_unix is not None:
            span.start_unix = start_unix
        span.status = status
        span.error = error
        span._ended = True
        span.duration_ms = duration_s * 1000.0
        self._finish(span)
        return span

    # ----- context plumbing ----------------------------------------------

    def current_context(self) -> Optional[SpanContext]:
        """The ambient parent context, if a span is active here."""
        return self._active.get() if self.enabled else None

    # ----- finishing -----------------------------------------------------

    def _finish(self, span: Span) -> None:
        if span._token is not None:
            self._active.reset(span._token)
            span._token = None
        record = span.to_dict()
        with self._lock:
            self.spans_finished += 1
            if self.exporter is None:
                self._buffer.append(record)
        if self.exporter is not None:
            self.exporter.export(record)

    def absorb(self, records: List[dict]) -> int:
        """Merge spans finished elsewhere (a pool worker's export).

        Records are appended in the order given, so a coordinator that
        absorbs shard results in shard order produces a deterministic
        export regardless of worker scheduling.
        """
        if not self.enabled:
            return 0
        with self._lock:
            self.spans_finished += len(records)
            if self.exporter is None:
                self._buffer.extend(records)
        if self.exporter is not None:
            for record in records:
                self.exporter.export(record)
        return len(records)

    def finished(self) -> List[dict]:
        """Spans buffered on a tracer with no exporter (tests, workers)."""
        with self._lock:
            return list(self._buffer)

    def stats(self) -> Dict[str, object]:
        """Counters for ``/metrics`` and health surfaces."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "spans_started": self.spans_started,
                "spans_finished": self.spans_finished,
            }


@contextmanager
def traced(
    tracer: Optional[Tracer],
    name: str,
    parent: ParentLike = None,
    **attributes: object,
) -> Iterator[Union[Span, _NoopSpan]]:
    """``tracer.span(...)`` that tolerates ``tracer=None``.

    The tracing sibling of :func:`repro.perf.profiler.stage` — every
    instrumented entry point calls this so an untraced run never touches
    the tracing machinery.
    """
    if tracer is None or not tracer.enabled:
        yield NOOP_SPAN
        return
    with tracer.span(name, parent=parent, **attributes) as span:
        yield span
