"""Trace analysis: span trees and per-stage latency breakdowns.

Consumes the JSONL records a :class:`~repro.obs.export.JsonlExporter`
wrote and renders them for humans — ``repro trace summarize`` is a thin
CLI wrapper over :func:`summarize`.  Two views:

* the **span tree** — parent/child structure with durations, where
  repeated siblings (e.g. one ``pair`` span per corpus pair) collapse
  into one ``name ×N`` line so a 500-pair build stays readable;
* the **stage table** — per-name call counts, total/mean/max latency,
  and error counts across the whole export, the flat complement the
  :class:`~repro.perf.BuildProfiler` report gives for profiled runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SpanNode:
    """One span record plus its resolved children."""

    __slots__ = ("record", "children")

    def __init__(self, record: dict):
        self.record = record
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        """Span name ("" tolerated for malformed records)."""
        return self.record.get("name", "")

    @property
    def duration_ms(self) -> float:
        """Duration in ms (0.0 when the span never ended)."""
        return float(self.record.get("duration_ms") or 0.0)

    @property
    def failed(self) -> bool:
        """True when the span ended in error status."""
        return self.record.get("status") == "error"


def span_tree(records: List[dict]) -> Dict[str, List[SpanNode]]:
    """Resolve parent links: trace id → that trace's root nodes.

    A span whose parent never appears in the export (it happened in a
    process that did not ship it, or the file was truncated) is treated
    as a root of its trace rather than dropped.
    """
    nodes: Dict[Tuple[str, str], SpanNode] = {}
    for record in records:
        key = (record.get("trace_id", ""), record.get("span_id", ""))
        nodes[key] = SpanNode(record)
    roots: Dict[str, List[SpanNode]] = {}
    for (trace_id, _), node in nodes.items():
        parent_key = (trace_id, node.record.get("parent_id") or "")
        parent = nodes.get(parent_key)
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.setdefault(trace_id, []).append(node)
    for node in nodes.values():
        node.children.sort(key=_start_key)
    for trace_roots in roots.values():
        trace_roots.sort(key=_start_key)
    return roots


def _start_key(node: SpanNode) -> Tuple[float, str]:
    return (
        float(node.record.get("start_unix") or 0.0),
        node.record.get("span_id", ""),
    )


# ----- span tree rendering -------------------------------------------------


def render_tree(
    roots: List[SpanNode], min_ms: float = 0.0, max_depth: Optional[int] = None
) -> str:
    """Indented tree with durations; repeated siblings collapse to ×N."""
    lines: List[str] = []
    _render_level(roots, lines, depth=0, min_ms=min_ms, max_depth=max_depth)
    return "\n".join(lines)


def _render_level(
    siblings: List[SpanNode],
    lines: List[str],
    depth: int,
    min_ms: float,
    max_depth: Optional[int],
) -> None:
    if max_depth is not None and depth >= max_depth:
        return
    groups: Dict[str, List[SpanNode]] = {}
    for node in siblings:
        groups.setdefault(node.name, []).append(node)
    for name, members in groups.items():
        total = sum(node.duration_ms for node in members)
        if total < min_ms and not any(node.failed for node in members):
            continue
        errors = sum(1 for node in members if node.failed)
        label = name if len(members) == 1 else f"{name} ×{len(members)}"
        suffix = ""
        if len(members) > 1:
            suffix = f"  (avg {total / len(members):8.2f} ms)"
        if errors:
            suffix += f"  [{errors} error{'s' if errors > 1 else ''}]"
        if len(members) == 1 and members[0].failed:
            suffix += f"  [error: {members[0].record.get('error')}]"
        lines.append(f"{'  ' * depth}{label:{max(40 - 2 * depth, 8)}s} "
                     f"{total:10.2f} ms{suffix}")
        merged = [child for node in members for child in node.children]
        merged.sort(key=_start_key)
        _render_level(merged, lines, depth + 1, min_ms, max_depth)


# ----- stage table ---------------------------------------------------------


def stage_table(records: List[dict]) -> List[Dict[str, object]]:
    """Per-name latency aggregate rows, sorted by total time descending."""
    stats: Dict[str, Dict[str, object]] = {}
    for record in records:
        row = stats.setdefault(
            record.get("name", ""),
            {"name": record.get("name", ""), "calls": 0, "total_ms": 0.0,
             "max_ms": 0.0, "errors": 0},
        )
        duration = float(record.get("duration_ms") or 0.0)
        row["calls"] += 1
        row["total_ms"] += duration
        row["max_ms"] = max(row["max_ms"], duration)
        row["errors"] += 1 if record.get("status") == "error" else 0
    rows = sorted(stats.values(), key=lambda row: -row["total_ms"])
    for row in rows:
        row["mean_ms"] = row["total_ms"] / row["calls"] if row["calls"] else 0.0
    return rows


def render_stage_table(rows: List[Dict[str, object]]) -> str:
    """Fixed-width text table over :func:`stage_table` rows."""
    lines = [
        f"{'span':32s} {'calls':>7s} {'total ms':>12s} "
        f"{'mean ms':>10s} {'max ms':>10s} {'errors':>7s}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:32s} {row['calls']:7d} {row['total_ms']:12.2f} "
            f"{row['mean_ms']:10.2f} {row['max_ms']:10.2f} {row['errors']:7d}"
        )
    return "\n".join(lines)


def summarize(
    records: List[dict],
    trace_id: Optional[str] = None,
    min_ms: float = 0.0,
    max_depth: Optional[int] = None,
    max_traces: int = 5,
) -> str:
    """The full ``repro trace summarize`` document as one string.

    Renders up to *max_traces* span trees (longest root first — pass
    *trace_id* to pick one), then the per-stage table over every record
    in the export.
    """
    if not records:
        return "(no spans in export)"
    if trace_id is not None:
        records_shown = [r for r in records if r.get("trace_id") == trace_id]
        if not records_shown:
            known = sorted({r.get("trace_id") for r in records})
            return (
                f"trace {trace_id!r} not in export; "
                f"{len(known)} trace(s) present: {known[:10]}"
            )
    else:
        records_shown = records
    roots = span_tree(records_shown)
    ordered = sorted(
        roots.items(),
        key=lambda item: -max(node.duration_ms for node in item[1]),
    )
    sections: List[str] = []
    for shown, (tid, trace_roots) in enumerate(ordered):
        if shown >= max_traces:
            sections.append(
                f"... {len(ordered) - max_traces} more trace(s) omitted "
                f"(pass --trace-id to select one)"
            )
            break
        sections.append(
            f"trace {tid} ({_count_spans(trace_roots)} spans)\n"
            + render_tree(trace_roots, min_ms=min_ms, max_depth=max_depth)
        )
    n_traces = len({record.get("trace_id") for record in records})
    sections.append(
        f"stage breakdown ({len(records)} spans, {n_traces} trace(s))\n"
        + render_stage_table(stage_table(records))
    )
    return "\n\n".join(sections)


def _count_spans(roots: List[SpanNode]) -> int:
    count = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children)
    return count
