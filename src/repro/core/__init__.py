"""The nl2sql-to-nl2vis synthesizer (the paper's primary contribution).

Pipeline (paper Section 2):

1. :mod:`tree_edits` — delete Select/Order subtrees from the SQL AST,
   insert Group/Binning/Aggregate/Visualize/Order subtrees per the
   Table 1 chart-validity rules → candidate VIS trees with edit records.
2. :mod:`filter_model` — a DeepEye-style filter (expert rules + trained
   classifier) prunes bad charts.
3. :mod:`nl_edits` + :mod:`backtranslation` — rewrite the source NL to
   reflect the tree edits, producing several NL variants per VIS.
4. :mod:`nvbench` — the resulting benchmark container with hardness
   labels (:mod:`hardness`) and dataset statistics.
"""

from repro.core.filter_model import ChartFeatures, DeepEyeFilter, extract_features
from repro.core.hardness import Hardness, classify_hardness
from repro.core.nvbench import (
    NVBench,
    NVBenchConfig,
    NVBenchPair,
    build_nvbench,
    load_nvbench_dir,
    paper_scale_config,
)
from repro.core.synthesizer import NL2VISSynthesizer, SynthesizedPair
from repro.core.tree_edits import TreeEdit, VisCandidate, generate_candidates
from repro.core.vis_rules import (
    ChartValidation,
    ChartViolation,
    chart_specs_for,
    validate_chart,
)

__all__ = [
    "ChartFeatures",
    "ChartValidation",
    "ChartViolation",
    "DeepEyeFilter",
    "Hardness",
    "NL2VISSynthesizer",
    "NVBench",
    "NVBenchConfig",
    "NVBenchPair",
    "SynthesizedPair",
    "TreeEdit",
    "VisCandidate",
    "build_nvbench",
    "chart_specs_for",
    "classify_hardness",
    "extract_features",
    "generate_candidates",
    "load_nvbench_dir",
    "paper_scale_config",
    "validate_chart",
]
