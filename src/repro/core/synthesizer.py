"""The end-to-end nl2sql-to-nl2vis synthesizer (paper Figure 3).

Input: one (NL, SQL) pair plus its database.  Output: a set of (NL, VIS)
pairs — multiple VIS trees per SQL tree (Step 1: vis synthesis with tree
edits + bad-chart filtering) and multiple NL variants per VIS tree
(Step 2: NL synthesis with rule edits + back-translation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.filter_model import DeepEyeFilter, extract_features
from repro.core.hardness import Hardness, classify_hardness
from repro.core.nl_edits import synthesize_nl_variants
from repro.core.tree_edits import TreeEditConfig, VisCandidate, generate_candidates
from repro.grammar.ast_nodes import SQLQuery, VisQuery
from repro.obs.trace import Tracer, traced
from repro.perf.profiler import BuildProfiler, stage
from repro.sqlparse.parser import parse_sql
from repro.sqlparse.printer import to_sql
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database


@dataclass(frozen=True)
class SynthesizedPair:
    """One synthesized (NL, VIS) pair with full provenance."""

    nl: str
    vis: VisQuery
    db_name: str
    hardness: Hardness
    source_nl: str
    source_sql: str
    manually_edited: bool
    back_translated: bool

    @property
    def vis_type(self) -> str:
        """Chart type of the synthesized visualization."""
        return self.vis.vis_type


#: Ranking priors reflecting how strongly DeepEye's learned scorer favors
#: each chart family (bars dominate real recommendation corpora — Beagle
#: and SEEDB both report bar/histogram as by far the most common type).
_TYPE_PRIOR = {
    "bar": 1.0,
    "stacked bar": 0.95,
    "scatter": 0.80,
    "grouping scatter": 0.85,
    "line": 0.72,
    "grouping line": 0.85,
    "pie": 0.76,
}

#: Diminishing returns per already-kept chart of the same type, so the
#: second kept candidate is often a *different* type (but a second bar
#: variant still wins when nothing else is good).
_REPEAT_DISCOUNT = 0.80


class NL2VISSynthesizer:
    """Synthesizes (NL, VIS) pairs from (NL, SQL) pairs.

    Parameters
    ----------
    chart_filter:
        The good/bad chart filter; defaults to the pure rule +
        teacher-label filter (no trained classifier).
    tree_config:
        Bounds for the candidate enumeration.
    max_vis_per_query:
        After filtering, keep at most this many VIS trees per input SQL
        query, ranked by filter score (nvBench averages well under one
        kept vis per input pair — the filter is deliberately harsh).
    seed:
        Seeds NL template sampling; the pipeline is deterministic.
    cache:
        Optional :class:`ExecutionCache` shared across candidates (and
        with the filter-training pass) so each query body executes once.
    profiler:
        Optional :class:`BuildProfiler` receiving the ``candidates``,
        ``featurize``, ``score``, and ``select`` stages.
    tracer:
        Optional :class:`~repro.obs.Tracer` emitting the same four
        stages as spans, nested under whatever span is active when
        :meth:`synthesize` runs (the build's per-pair span).
    """

    def __init__(
        self,
        chart_filter: Optional[DeepEyeFilter] = None,
        tree_config: Optional[TreeEditConfig] = None,
        max_vis_per_query: int = 2,
        second_slot_threshold: float = 0.52,
        seed: int = 0,
        cache: Optional[ExecutionCache] = None,
        profiler: Optional[BuildProfiler] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.chart_filter = chart_filter or DeepEyeFilter()
        self.tree_config = tree_config or TreeEditConfig()
        self.max_vis_per_query = max_vis_per_query
        self.second_slot_threshold = second_slot_threshold
        self.cache = cache
        self.profiler = profiler
        self.tracer = tracer
        self._rng = np.random.default_rng(seed)

    def synthesize(
        self,
        nl: str,
        sql: Union[str, SQLQuery],
        database: Database,
        n_variants: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[SynthesizedPair]:
        """Run both synthesis steps for one (NL, SQL) input pair.

        An explicit *rng* makes the call independent of synthesizer state
        — the parallel build derives one per input pair so that sharded
        and serial builds sample identically.
        """
        rng = rng if rng is not None else self._rng
        query = parse_sql(sql, database) if isinstance(sql, str) else sql
        kept = self.good_candidates(query, database)
        pairs: List[SynthesizedPair] = []
        sql_text = sql if isinstance(sql, str) else to_sql(sql, database)
        for candidate in kept:
            per_vis = n_variants
            if per_vis is None and candidate.edit.has_deletions:
                # Deletion cases need "manual" NL revision (Section 3.1) —
                # the paper's experts wrote ~1.9 variants for those versus
                # ~3.7 on average, so we produce fewer too.
                per_vis = int(rng.integers(1, 3))
            variants = synthesize_nl_variants(
                source_nl=nl,
                edit=candidate.edit,
                vis=candidate.vis,
                rng=rng,
                n_variants=per_vis,
            )
            hardness = classify_hardness(candidate.vis)
            for variant in variants:
                pairs.append(
                    SynthesizedPair(
                        nl=variant.text,
                        vis=candidate.vis,
                        db_name=database.name,
                        hardness=hardness,
                        source_nl=nl,
                        source_sql=sql_text,
                        manually_edited=variant.manually_edited,
                        back_translated=variant.back_translated,
                    )
                )
        return pairs

    def good_candidates(
        self, query: SQLQuery, database: Database
    ) -> List[VisCandidate]:
        """Step 1: candidate VIS trees surviving the bad-chart filter.

        Ranking prefers higher filter scores and fewer deletions, and the
        kept set is type-diverse: at most one candidate per vis type until
        every good type is represented, capped at ``max_vis_per_query``.
        This mirrors nvBench's composition, where one SQL query typically
        yields a small number of *different* chart types.
        """
        with stage(self.profiler, "candidates"), traced(self.tracer, "candidates"):
            candidates = generate_candidates(query, database, self.tree_config)
        with stage(self.profiler, "featurize"), traced(
            self.tracer, "featurize"
        ) as featurize_span:
            featurized = []
            for candidate in candidates:
                features = extract_features(candidate.vis, database, cache=self.cache)
                if features is not None:
                    featurized.append((candidate, features))
            featurize_span.set_attribute("candidates", len(candidates))
        with stage(self.profiler, "score"), traced(self.tracer, "score"):
            scores = self.chart_filter.score_batch(
                [features for _, features in featurized]
            )
        scored = []
        for (candidate, _), score in zip(featurized, scores):
            if score >= 0.5:
                rank = (
                    score * _TYPE_PRIOR[candidate.vis.vis_type]
                    - 0.15 * len(candidate.edit.deleted_attrs)
                )
                scored.append((rank, len(scored), candidate))
        with stage(self.profiler, "select"), traced(
            self.tracer, "select"
        ) as select_span:
            kept = self._select_diverse(scored)
            select_span.set_attribute("kept", len(kept))
        if self.profiler is not None:
            self.profiler.count("candidates_enumerated", len(candidates))
            self.profiler.count("candidates_kept", len(kept))
        return kept

    def _select_diverse(self, scored: List[tuple]) -> List[VisCandidate]:
        """Greedy type-diverse selection over ``(rank, index, candidate)``.

        The repeat discount only depends on how many charts of a type are
        already kept, so candidates are pre-sorted once *per type* and the
        loop compares only the head of each type's list — O(n log n)
        overall instead of re-sorting the whole pool every pick.
        """
        by_type: dict = {}
        for entry in scored:
            by_type.setdefault(entry[2].vis.vis_type, []).append(entry)
        for entries in by_type.values():
            entries.sort(key=lambda entry: (-entry[0], entry[1]))
        heads = dict.fromkeys(by_type, 0)
        kept: List[VisCandidate] = []
        taken: set = set()
        type_counts: dict = {}
        while len(kept) < self.max_vis_per_query:
            best = None
            best_key = None
            for vis_type, entries in by_type.items():
                position = heads[vis_type]
                if position >= len(entries):
                    continue
                rank, index, candidate = entries[position]
                discounted = rank * _REPEAT_DISCOUNT ** type_counts.get(vis_type, 0)
                key = (discounted, -index)
                if best_key is None or key > best_key:
                    best_key = key
                    best = (vis_type, discounted, candidate)
            if best is None:
                break
            vis_type, discounted, candidate = best
            heads[vis_type] += 1
            # Beyond the first pick, only keep clearly good charts — the
            # paper's filter keeps well under two vis per SQL query.
            if kept and discounted < self.second_slot_threshold:
                break
            # Avoid near-duplicates: one chart per (type, x-axis) pair.
            key = (candidate.vis.vis_type, candidate.vis.primary_core.select[0])
            if key in taken:
                continue
            taken.add(key)
            type_counts[vis_type] = type_counts.get(vis_type, 0) + 1
            kept.append(candidate)
        return kept
