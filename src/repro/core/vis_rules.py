"""Table 1: rules for syntactically correct charts.

Maps the column-type signature of a candidate attribute combination
(C categorical, T temporal, Q quantitative) to the chart specs that are
valid for it — which vis types, and which group/binning/aggregate
operations must be inserted.

One extension beyond the printed table: a single bare Q variable maps to
a binned histogram (``bar``), which the paper's corpus includes ("bar
(histogram)" in Section 3.2) but Table 1 leaves implicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: group operations a chart spec may require on an axis
GROUP_NONE = "none"
GROUP_GROUPING = "grouping"
GROUP_BINNING = "binning"


@dataclass(frozen=True)
class ChartSpec:
    """One way to visualize an attribute combination.

    ``axes`` lists the roles in select order (x, y, optional color);
    ``x_group`` / ``color_group`` say which group operation the x/color
    attribute needs; ``needs_aggregate`` says whether the measure (y)
    axis must carry an aggregate function.
    """

    vis_type: str
    x_group: str
    needs_aggregate: bool
    color_group: str = GROUP_NONE
    count_measure: bool = False

    @property
    def arity(self) -> int:
        """Number of select attributes this chart type carries."""
        return 3 if self.vis_type in ("stacked bar", "grouping line", "grouping scatter") else 2


def chart_specs_for(signature: Sequence[str]) -> List[ChartSpec]:
    """Valid chart specs for a type *signature* (tuple of C/T/Q).

    The signature describes the *bare* attributes kept from the SQL
    select list, in any order; callers are responsible for arranging
    axes.  Returns an empty list for combinations Table 1 rejects
    (e.g. two categorical variables on a line chart).
    """
    key = tuple(sorted(signature))
    return list(_RULES.get(key, ()))


_RULES = {
    # --- one variable ---------------------------------------------------
    ("C",): (
        ChartSpec("bar", GROUP_GROUPING, True, count_measure=True),
        ChartSpec("pie", GROUP_GROUPING, True, count_measure=True),
    ),
    ("T",): (
        ChartSpec("bar", GROUP_BINNING, True, count_measure=True),
        ChartSpec("pie", GROUP_BINNING, True, count_measure=True),
        ChartSpec("line", GROUP_BINNING, True, count_measure=True),
    ),
    # Histogram extension: bin the quantitative axis, count per bin.
    ("Q",): (
        ChartSpec("bar", GROUP_BINNING, True, count_measure=True),
    ),
    # --- two variables --------------------------------------------------
    # Group-free specs come first: when both the plain and the grouped
    # chart are good, the simpler tree is the preferred candidate.
    ("C", "Q"): (
        ChartSpec("bar", GROUP_NONE, False),
        ChartSpec("pie", GROUP_NONE, False),
        ChartSpec("bar", GROUP_GROUPING, True),
        ChartSpec("pie", GROUP_GROUPING, True),
    ),
    ("Q", "T"): (
        ChartSpec("line", GROUP_NONE, False),
        ChartSpec("bar", GROUP_BINNING, True),
        ChartSpec("pie", GROUP_BINNING, True),
        ChartSpec("line", GROUP_BINNING, True),
    ),
    ("Q", "Q"): (
        ChartSpec("scatter", GROUP_NONE, False),
    ),
    # --- three variables ------------------------------------------------
    ("C", "Q", "T"): (
        ChartSpec("grouping line", GROUP_BINNING, True, color_group=GROUP_GROUPING),
        ChartSpec("stacked bar", GROUP_BINNING, True, color_group=GROUP_GROUPING),
    ),
    ("C", "C", "Q"): (
        ChartSpec("stacked bar", GROUP_GROUPING, True, color_group=GROUP_GROUPING),
    ),
    # Grouping scatter colors raw points by the categorical variable —
    # the color channel is an encoding, not a GROUP BY aggregation.
    ("C", "Q", "Q"): (
        ChartSpec("grouping scatter", GROUP_NONE, False, color_group=GROUP_NONE),
    ),
}


def arrange_axes(
    attrs_with_types: Sequence[Tuple[object, str]], spec: ChartSpec
) -> List[object]:
    """Order attributes into (x, y[, color]) roles for *spec*.

    Picks the x attribute by the type the spec's x-group operation makes
    sense for (T for binning-by-time, C for grouping, Q otherwise), the
    color attribute as the remaining categorical one for three-variable
    charts, and the measure as what is left.
    """
    remaining = list(attrs_with_types)

    def take(predicate) -> object:
        for index, (attr, ctype) in enumerate(remaining):
            if predicate(ctype):
                remaining.pop(index)
                return attr
        attr, _ = remaining.pop(0)
        return attr

    if spec.arity == 3:
        if spec.vis_type == "grouping scatter":
            color = take(lambda t: t == "C")
            x = take(lambda t: t == "Q")
            y = take(lambda t: True)
        else:
            x_type = "T" if spec.x_group == GROUP_BINNING else "C"
            x = take(lambda t: t == x_type)
            color = take(lambda t: t == "C")
            y = take(lambda t: True)
        return [x, y, color]
    if spec.x_group == GROUP_BINNING:
        x = take(lambda t: t in ("T", "Q"))
    elif spec.x_group == GROUP_GROUPING:
        x = take(lambda t: t == "C")
    else:
        x = take(lambda t: t in ("C", "T"))
    y = take(lambda t: True)
    return [x, y]
