"""Table 1: rules for syntactically correct charts.

Maps the column-type signature of a candidate attribute combination
(C categorical, T temporal, Q quantitative) to the chart specs that are
valid for it — which vis types, and which group/binning/aggregate
operations must be inserted.

One extension beyond the printed table: a single bare Q variable maps to
a binned histogram (``bar``), which the paper's corpus includes ("bar
(histogram)" in Section 3.2) but Table 1 leaves implicit.

Besides the generative side (:func:`chart_specs_for`, used by the
synthesizer's tree edits), this module exposes the *validating* side:
:func:`validate_chart` checks an already-built ``VisQuery`` against the
same rules and returns structured :class:`ChartViolation` records — the
basis of the pipeline's verify stage and of ``translate --candidates``
legality flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: group operations a chart spec may require on an axis
GROUP_NONE = "none"
GROUP_GROUPING = "grouping"
GROUP_BINNING = "binning"


@dataclass(frozen=True)
class ChartSpec:
    """One way to visualize an attribute combination.

    ``axes`` lists the roles in select order (x, y, optional color);
    ``x_group`` / ``color_group`` say which group operation the x/color
    attribute needs; ``needs_aggregate`` says whether the measure (y)
    axis must carry an aggregate function.
    """

    vis_type: str
    x_group: str
    needs_aggregate: bool
    color_group: str = GROUP_NONE
    count_measure: bool = False

    @property
    def arity(self) -> int:
        """Number of select attributes this chart type carries."""
        return 3 if self.vis_type in ("stacked bar", "grouping line", "grouping scatter") else 2


def chart_specs_for(signature: Sequence[str]) -> List[ChartSpec]:
    """Valid chart specs for a type *signature* (tuple of C/T/Q).

    The signature describes the *bare* attributes kept from the SQL
    select list, in any order; callers are responsible for arranging
    axes.  Returns an empty list for combinations Table 1 rejects
    (e.g. two categorical variables on a line chart).
    """
    key = tuple(sorted(signature))
    return list(_RULES.get(key, ()))


_RULES = {
    # --- one variable ---------------------------------------------------
    ("C",): (
        ChartSpec("bar", GROUP_GROUPING, True, count_measure=True),
        ChartSpec("pie", GROUP_GROUPING, True, count_measure=True),
    ),
    ("T",): (
        ChartSpec("bar", GROUP_BINNING, True, count_measure=True),
        ChartSpec("pie", GROUP_BINNING, True, count_measure=True),
        ChartSpec("line", GROUP_BINNING, True, count_measure=True),
    ),
    # Histogram extension: bin the quantitative axis, count per bin.
    ("Q",): (
        ChartSpec("bar", GROUP_BINNING, True, count_measure=True),
    ),
    # --- two variables --------------------------------------------------
    # Group-free specs come first: when both the plain and the grouped
    # chart are good, the simpler tree is the preferred candidate.
    ("C", "Q"): (
        ChartSpec("bar", GROUP_NONE, False),
        ChartSpec("pie", GROUP_NONE, False),
        ChartSpec("bar", GROUP_GROUPING, True),
        ChartSpec("pie", GROUP_GROUPING, True),
    ),
    ("Q", "T"): (
        ChartSpec("line", GROUP_NONE, False),
        ChartSpec("bar", GROUP_BINNING, True),
        ChartSpec("pie", GROUP_BINNING, True),
        ChartSpec("line", GROUP_BINNING, True),
    ),
    ("Q", "Q"): (
        ChartSpec("scatter", GROUP_NONE, False),
    ),
    # --- three variables ------------------------------------------------
    ("C", "Q", "T"): (
        ChartSpec("grouping line", GROUP_BINNING, True, color_group=GROUP_GROUPING),
        ChartSpec("stacked bar", GROUP_BINNING, True, color_group=GROUP_GROUPING),
    ),
    ("C", "C", "Q"): (
        ChartSpec("stacked bar", GROUP_GROUPING, True, color_group=GROUP_GROUPING),
    ),
    # Grouping scatter colors raw points by the categorical variable —
    # the color channel is an encoding, not a GROUP BY aggregation.
    ("C", "Q", "Q"): (
        ChartSpec("grouping scatter", GROUP_NONE, False, color_group=GROUP_NONE),
    ),
}


def arrange_axes(
    attrs_with_types: Sequence[Tuple[object, str]], spec: ChartSpec
) -> List[object]:
    """Order attributes into (x, y[, color]) roles for *spec*.

    Picks the x attribute by the type the spec's x-group operation makes
    sense for (T for binning-by-time, C for grouping, Q otherwise), the
    color attribute as the remaining categorical one for three-variable
    charts, and the measure as what is left.
    """
    remaining = list(attrs_with_types)

    def take(predicate) -> object:
        for index, (attr, ctype) in enumerate(remaining):
            if predicate(ctype):
                remaining.pop(index)
                return attr
        attr, _ = remaining.pop(0)
        return attr

    if spec.arity == 3:
        if spec.vis_type == "grouping scatter":
            color = take(lambda t: t == "C")
            x = take(lambda t: t == "Q")
            y = take(lambda t: True)
        else:
            x_type = "T" if spec.x_group == GROUP_BINNING else "C"
            x = take(lambda t: t == x_type)
            color = take(lambda t: t == "C")
            y = take(lambda t: True)
        return [x, y, color]
    if spec.x_group == GROUP_BINNING:
        x = take(lambda t: t in ("T", "Q"))
    elif spec.x_group == GROUP_GROUPING:
        x = take(lambda t: t == "C")
    else:
        x = take(lambda t: t in ("C", "T"))
    y = take(lambda t: True)
    return [x, y]


# ----- validation (the checking side of Table 1) ---------------------------


@dataclass(frozen=True)
class ChartViolation:
    """One structured way a chart breaks the Table-1 rules.

    ``repairable`` says whether the pipeline's repair stage has a rule
    for this violation class (snap the vis type, conform the group
    operations, fix a bin unit, fuzzy-match a literal); unrepairable
    violations (an attribute combination no chart type accepts, an
    unknown column) fail the candidate outright.
    """

    code: str
    message: str
    repairable: bool = True
    #: for ``illegal-vis-type``: the chart types Table 1 does allow
    legal_types: Tuple[str, ...] = ()
    #: qualified column the violation anchors to, when there is one
    attr: Optional[str] = None
    #: offending literal value, for ``unknown-literal``
    value: Optional[object] = None

    def __str__(self) -> str:
        return f"{self.code}: {self.message}"


@dataclass
class ChartValidation:
    """The outcome of :func:`validate_chart`: violations + a verdict."""

    violations: List[ChartViolation] = field(default_factory=list)
    #: the bare-attribute type signature the chart was judged against
    signature: Tuple[str, ...] = ()

    PASS, NEAR_MISS, FAIL = "pass", "near_miss", "fail"

    @property
    def ok(self) -> bool:
        """True when the chart satisfies every Table-1 rule."""
        return not self.violations

    @property
    def status(self) -> str:
        """``pass`` / ``near_miss`` (all violations repairable) / ``fail``."""
        if not self.violations:
            return self.PASS
        if all(violation.repairable for violation in self.violations):
            return self.NEAR_MISS
        return self.FAIL

    @property
    def legal_types(self) -> Tuple[str, ...]:
        """Chart types Table 1 allows for the judged signature."""
        return tuple(
            spec.vis_type
            for spec in dict.fromkeys(chart_specs_for(self.signature))
        )

    def codes(self) -> List[str]:
        """Violation codes in report order (handy for tests and CLIs)."""
        return [violation.code for violation in self.violations]

    def to_json(self) -> dict:
        return {
            "status": self.status,
            "signature": list(self.signature),
            "violations": [
                {
                    "code": violation.code,
                    "message": violation.message,
                    "repairable": violation.repairable,
                    "legal_types": list(violation.legal_types),
                    "attr": violation.attr,
                    "value": violation.value,
                }
                for violation in self.violations
            ],
        }


def chart_signature(core, database) -> Tuple[Tuple[str, ...], List[tuple]]:
    """``(signature, per-attr info)`` of a query core's select list.

    The signature is the sorted C/T/Q type tuple of the *bare* content
    attributes — exactly what the synthesizer fed
    :func:`chart_specs_for` before inserting aggregates — so count
    measures (``count(*)`` or ``count(col)``) are excluded and other
    aggregated attributes contribute their column's type.  The info list
    carries ``(attr, ctype, is_count_measure)`` per select attribute in
    select order for callers that need the layout.
    """
    info: List[tuple] = []
    signature: List[str] = []
    for attr in core.select:
        is_count = attr.agg == "count"
        if attr.column == "*":
            ctype = "Q"
        else:
            ctype = database.column_type(attr.table, attr.column)
        info.append((attr, ctype, is_count))
        if not is_count:
            signature.append(ctype)
    return tuple(sorted(signature)), info


def validate_chart(query, database, check_literals: bool = True) -> ChartValidation:
    """Check a ``VisQuery`` against the Table-1 chart-validity rules.

    Structural well-formedness (arity, GROUP BY coverage) is the
    grammar's job (:func:`repro.grammar.validate.validate_query`); this
    judges *data-aware legality*: is the chart type legal for the select
    list's column-type signature, do the group/binning/aggregate
    operations match a legal :class:`ChartSpec`, are bin units sane for
    their column type, and (``check_literals``) do categorical filter
    literals actually occur in their column.  Returns a
    :class:`ChartValidation` whose ``status`` classifies the chart as
    ``pass`` / ``near_miss`` / ``fail`` — the pipeline's verify verdict.
    """
    validation = ChartValidation()
    core = query.primary_core
    try:
        signature, info = chart_signature(core, database)
    except Exception as exc:
        validation.violations.append(
            ChartViolation(
                code="unknown-column",
                message=str(exc),
                repairable=False,
            )
        )
        return validation
    validation.signature = signature

    specs = chart_specs_for(signature)
    if not specs:
        # A sum/avg over a non-quantitative column corrupts the
        # signature itself (avg(city) reads as a second C).  When that
        # is the cause, the combination is repairable: snapping the
        # aggregate to count removes it from the signature.
        _check_aggregates(core, database, validation)
        caused_by_aggregate = bool(validation.violations)
        validation.violations.insert(
            0,
            ChartViolation(
                code="illegal-combination",
                message=(
                    f"no chart type accepts the attribute signature "
                    f"{'+'.join(signature) or '(empty)'}"
                ),
                repairable=caused_by_aggregate,
            ),
        )
        return validation

    legal_types = tuple(dict.fromkeys(spec.vis_type for spec in specs))
    if query.vis_type not in legal_types:
        validation.violations.append(
            ChartViolation(
                code="illegal-vis-type",
                message=(
                    f"{query.vis_type!r} is illegal for signature "
                    f"{'+'.join(signature)}; legal: {', '.join(legal_types)}"
                ),
                legal_types=legal_types,
            )
        )
    else:
        matched = any(
            _spec_matches(spec, core, info) for spec in specs
            if spec.vis_type == query.vis_type
        )
        if not matched:
            validation.violations.append(
                ChartViolation(
                    code="group-mismatch",
                    message=(
                        f"group/aggregate layout does not match any legal "
                        f"{query.vis_type!r} spec for signature "
                        f"{'+'.join(signature)}"
                    ),
                    legal_types=legal_types,
                )
            )

    _check_aggregates(core, database, validation)
    _check_bin_units(core, database, validation)
    if check_literals:
        _check_literals(query, database, validation)
    return validation


def _group_kind_of(core, attr) -> str:
    """Which group operation (if any) covers *attr* in *core*."""
    for group in core.groups:
        if group.attr.qualified_name == attr.qualified_name:
            return group.kind
    return GROUP_NONE


def _spec_matches(spec: ChartSpec, core, info) -> bool:
    """Does the core's concrete layout realize *spec*?

    The synthesizer lays select lists out as (x, y[, color]) with the
    measure in the y slot; decoded trees are judged against the same
    layout.  A count-measure spec expects a count aggregate in the
    measure slot; other specs expect the x/color group kinds and the
    measure aggregation the spec demands.
    """
    if len(info) != spec.arity:
        return False
    x_attr, _, x_is_count = info[0]
    measure_attr, _, measure_is_count = info[1]
    if x_is_count:
        return False  # a count can never be the x axis
    if spec.count_measure != measure_is_count:
        return False
    if not spec.count_measure and spec.needs_aggregate != measure_attr.is_aggregated:
        return False
    if _group_kind_of(core, x_attr) != spec.x_group:
        return False
    if spec.arity == 3:
        color_attr, _, color_is_count = info[2]
        if color_is_count:
            return False
        if _group_kind_of(core, color_attr) != spec.color_group:
            return False
    return True


def _check_aggregates(core, database, validation: ChartValidation) -> None:
    """sum/avg over a categorical or temporal column is a type error."""
    for attr in core.select:
        if attr.agg in ("sum", "avg") and attr.column != "*":
            ctype = database.column_type(attr.table, attr.column)
            if ctype != "Q":
                validation.violations.append(
                    ChartViolation(
                        code="bad-aggregate",
                        message=(
                            f"{attr.agg}({attr.qualified_name}) aggregates a "
                            f"{ctype} column; only count applies"
                        ),
                        attr=attr.qualified_name,
                    )
                )


def _check_bin_units(core, database, validation: ChartValidation) -> None:
    """Temporal columns bin by calendar units, quantitative by width."""
    for group in core.groups:
        if group.kind != "binning":
            continue
        ctype = database.column_type(group.attr.table, group.attr.column)
        if ctype == "T" and group.bin_unit == "numeric":
            validation.violations.append(
                ChartViolation(
                    code="bin-unit",
                    message=(
                        f"temporal column {group.attr.qualified_name} "
                        f"cannot use numeric binning"
                    ),
                    attr=group.attr.qualified_name,
                )
            )
        elif ctype == "Q" and group.bin_unit != "numeric":
            validation.violations.append(
                ChartViolation(
                    code="bin-unit",
                    message=(
                        f"quantitative column {group.attr.qualified_name} "
                        f"cannot bin by {group.bin_unit!r}"
                    ),
                    attr=group.attr.qualified_name,
                )
            )
        elif ctype == "C":
            validation.violations.append(
                ChartViolation(
                    code="bin-unit",
                    message=(
                        f"categorical column {group.attr.qualified_name} "
                        f"cannot be binned (use grouping)"
                    ),
                    attr=group.attr.qualified_name,
                )
            )


def _check_literals(query, database, validation: ChartValidation) -> None:
    """Categorical equality literals should occur in their column.

    A decoded filter like ``city = 'Sam Francisco'`` is near-miss, not
    wrong — the repair stage fuzzy-matches it against the column's real
    values.  Only ``=``/``!=`` comparisons over categorical columns with
    non-empty string literals are checked; numeric and temporal
    thresholds are legitimate out-of-data values.
    """
    from repro.grammar.ast_nodes import Comparison

    for core in query.cores:
        if core.filter is None:
            continue
        for pred in core.filter.predicates():
            if not isinstance(pred, Comparison):
                continue
            if pred.op not in ("=", "!=") or not isinstance(pred.value, str):
                continue
            if not pred.value or pred.value == "<V>":
                continue
            try:
                if database.column_type(pred.attr.table, pred.attr.column) != "C":
                    continue
                values = database.table(pred.attr.table).column_values(
                    pred.attr.column
                )
            except Exception:
                continue
            if not values:
                continue
            known = {str(v).casefold() for v in values if v is not None}
            if pred.value.casefold() not in known:
                validation.violations.append(
                    ChartViolation(
                        code="unknown-literal",
                        message=(
                            f"{pred.attr.qualified_name} has no value "
                            f"{pred.value!r}"
                        ),
                        attr=pred.attr.qualified_name,
                        value=pred.value,
                    )
                )
