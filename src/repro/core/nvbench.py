"""The nvBench-style benchmark: container, builder, and statistics.

``build_nvbench`` drives the full paper pipeline: build (or accept) a
Spider-like corpus, train the DeepEye-style filter on a sample of
candidate charts, run the synthesizer over every (NL, SQL) pair, and
assemble the resulting (NL, VIS) pairs with hardness labels.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.filter_model import DeepEyeFilter, train_filter_from_candidates
from repro.core.synthesizer import NL2VISSynthesizer, SynthesizedPair
from repro.core.tree_edits import TreeEditConfig, generate_candidates
from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import from_tokens, to_tokens
from repro.spider.corpus import CorpusConfig, SpiderCorpus, build_spider_corpus
from repro.storage.schema import Database


@dataclass
class NVBenchConfig:
    """End-to-end build configuration."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    tree_edits: TreeEditConfig = field(default_factory=TreeEditConfig)
    #: VIS trees kept per input SQL query after filtering
    max_vis_per_query: int = 2
    #: how many input pairs to featurize when training the filter
    filter_training_pairs: int = 150
    #: train the classifier stage (False = rules + teacher only)
    train_filter: bool = True
    seed: int = 11


@dataclass(frozen=True)
class NVBenchPair(SynthesizedPair):
    """Alias of :class:`SynthesizedPair` under its benchmark name."""


@dataclass
class NVBench:
    """The synthesized benchmark: databases plus (NL, VIS) pairs."""

    corpus: SpiderCorpus
    pairs: List[SynthesizedPair] = field(default_factory=list)

    @property
    def databases(self) -> Dict[str, Database]:
        """Name → database map of the underlying corpus."""
        return self.corpus.databases

    def database_of(self, pair: SynthesizedPair) -> Database:
        """The database a pair was synthesized over."""
        return self.corpus.databases[pair.db_name]

    @property
    def distinct_vis(self) -> List[Tuple[str, VisQuery]]:
        """Distinct (db, vis-tree) pairs — the paper's "#-vis"."""
        seen = dict.fromkeys((pair.db_name, pair.vis) for pair in self.pairs)
        return list(seen)

    def vis_type_counts(self) -> Counter:
        """Distinct-vis counts per chart type (Table 3's #-vis)."""
        return Counter(db_vis[1].vis_type for db_vis in self.distinct_vis)

    def pair_type_counts(self) -> Counter:
        """(NL, VIS) pair counts per chart type."""
        return Counter(pair.vis_type for pair in self.pairs)

    def hardness_counts(self) -> Counter:
        """Pair counts per hardness tier."""
        return Counter(pair.hardness.value for pair in self.pairs)

    def type_hardness_matrix(self) -> Dict[Tuple[str, str], int]:
        """Counts of distinct vis per (vis type, hardness) — Figure 10."""
        from repro.core.hardness import classify_hardness

        matrix: Counter = Counter()
        for _, vis in self.distinct_vis:
            matrix[(vis.vis_type, classify_hardness(vis).value)] += 1
        return dict(matrix)

    @property
    def manual_edit_pairs(self) -> List[SynthesizedPair]:
        """Pairs whose NL needed the manual deletion revision."""
        return [pair for pair in self.pairs if pair.manually_edited]


def build_nvbench(
    corpus: Optional[SpiderCorpus] = None,
    config: Optional[NVBenchConfig] = None,
) -> NVBench:
    """Run the full nl2sql-to-nl2vis pipeline and return the benchmark."""
    config = config or NVBenchConfig()
    if corpus is None:
        corpus = build_spider_corpus(config.corpus)

    chart_filter = _make_filter(corpus, config)
    synthesizer = NL2VISSynthesizer(
        chart_filter=chart_filter,
        tree_config=config.tree_edits,
        max_vis_per_query=config.max_vis_per_query,
        seed=config.seed,
    )
    bench = NVBench(corpus=corpus)
    for pair in corpus.pairs:
        database = corpus.databases[pair.db_name]
        synthesized = synthesizer.synthesize(pair.nl, pair.query, database)
        for item in synthesized:
            bench.pairs.append(
                SynthesizedPair(
                    nl=item.nl,
                    vis=item.vis,
                    db_name=item.db_name,
                    hardness=item.hardness,
                    source_nl=pair.nl,
                    source_sql=pair.sql,
                    manually_edited=item.manually_edited,
                    back_translated=item.back_translated,
                )
            )
    return bench


def _make_filter(corpus: SpiderCorpus, config: NVBenchConfig) -> DeepEyeFilter:
    if not config.train_filter:
        return DeepEyeFilter()
    rng = np.random.default_rng(config.seed)
    sample_size = min(config.filter_training_pairs, len(corpus.pairs))
    if sample_size == 0:
        return DeepEyeFilter()
    indexes = rng.choice(len(corpus.pairs), size=sample_size, replace=False)
    charts = []
    for index in indexes:
        pair = corpus.pairs[int(index)]
        database = corpus.databases[pair.db_name]
        for candidate in generate_candidates(pair.query, database, config.tree_edits):
            charts.append((candidate.vis, database))
    return train_filter_from_candidates(charts, seed=config.seed)


# ----- JSON (de)serialization ---------------------------------------------


def save_nvbench_pairs(bench: NVBench, path: str) -> None:
    """Write the (NL, VIS) pairs (not the databases) to JSON; VIS trees
    are stored in their canonical token form."""
    from repro.core.hardness import Hardness  # local to avoid cycle at import

    payload = [
        {
            "nl": pair.nl,
            "vis_tokens": to_tokens(pair.vis),
            "db_name": pair.db_name,
            "hardness": pair.hardness.value,
            "source_nl": pair.source_nl,
            "source_sql": pair.source_sql,
            "manually_edited": pair.manually_edited,
            "back_translated": pair.back_translated,
        }
        for pair in bench.pairs
    ]
    Path(path).write_text(json.dumps(payload))


def load_nvbench_pairs(corpus: SpiderCorpus, path: str) -> NVBench:
    """Load pairs saved by :func:`save_nvbench_pairs` over *corpus*."""
    from repro.core.hardness import Hardness

    payload = json.loads(Path(path).read_text())
    bench = NVBench(corpus=corpus)
    for item in payload:
        vis = from_tokens(item["vis_tokens"])
        if not isinstance(vis, VisQuery):
            raise ValueError("stored tokens do not form a vis query")
        bench.pairs.append(
            SynthesizedPair(
                nl=item["nl"],
                vis=vis,
                db_name=item["db_name"],
                hardness=Hardness(item["hardness"]),
                source_nl=item["source_nl"],
                source_sql=item["source_sql"],
                manually_edited=item["manually_edited"],
                back_translated=item["back_translated"],
            )
        )
    return bench
