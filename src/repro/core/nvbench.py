"""The nvBench-style benchmark: container, builder, and statistics.

``build_nvbench`` drives the full paper pipeline: build (or accept) a
Spider-like corpus, train the DeepEye-style filter on a sample of
candidate charts, run the synthesizer over every (NL, SQL) pair, and
assemble the resulting (NL, VIS) pairs with hardness labels.

The build is instrumented and cache-aware (see ``docs/PERFORMANCE.md``):
an :class:`~repro.storage.executor.ExecutionCache` deduplicates query
executions across candidates and across the filter-training pass, a
:class:`~repro.perf.BuildProfiler` collects per-stage wall times, and
``workers=N`` shards the corpus by database over a process pool.  Serial
and parallel builds produce identical pair lists: every input pair draws
from its own ``(seed, pair index)``-derived RNG, so the sampling stream
does not depend on sharding.
"""

from __future__ import annotations

import json
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.filter_model import DeepEyeFilter, train_filter_from_candidates
from repro.core.synthesizer import NL2VISSynthesizer, SynthesizedPair
from repro.core.tree_edits import TreeEditConfig, generate_candidates
from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import from_tokens, to_tokens
from repro.obs.trace import Tracer, traced
from repro.perf.profiler import BuildProfiler, stage
from repro.spider.corpus import (
    CorpusConfig,
    NLSQLPair,
    SpiderCorpus,
    build_spider_corpus,
)
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database


@dataclass
class NVBenchConfig:
    """End-to-end build configuration."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    tree_edits: TreeEditConfig = field(default_factory=TreeEditConfig)
    #: VIS trees kept per input SQL query after filtering
    max_vis_per_query: int = 2
    #: how many input pairs to featurize when training the filter
    filter_training_pairs: int = 150
    #: train the classifier stage (False = rules + teacher only)
    train_filter: bool = True
    #: memoize query executions across candidates and build passes
    use_cache: bool = True
    seed: int = 11


@dataclass(frozen=True)
class NVBenchPair(SynthesizedPair):
    """Alias of :class:`SynthesizedPair` under its benchmark name."""


@dataclass
class NVBench:
    """The synthesized benchmark: databases plus (NL, VIS) pairs."""

    corpus: SpiderCorpus
    pairs: List[SynthesizedPair] = field(default_factory=list)

    @property
    def databases(self) -> Dict[str, Database]:
        """Name → database map of the underlying corpus."""
        return self.corpus.databases

    def database_of(self, pair: SynthesizedPair) -> Database:
        """The database a pair was synthesized over."""
        return self.corpus.databases[pair.db_name]

    @property
    def distinct_vis(self) -> List[Tuple[str, VisQuery]]:
        """Distinct (db, vis-tree) pairs — the paper's "#-vis"."""
        seen = dict.fromkeys((pair.db_name, pair.vis) for pair in self.pairs)
        return list(seen)

    def vis_type_counts(self) -> Counter:
        """Distinct-vis counts per chart type (Table 3's #-vis)."""
        return Counter(db_vis[1].vis_type for db_vis in self.distinct_vis)

    def pair_type_counts(self) -> Counter:
        """(NL, VIS) pair counts per chart type."""
        return Counter(pair.vis_type for pair in self.pairs)

    def hardness_counts(self) -> Counter:
        """Pair counts per hardness tier."""
        return Counter(pair.hardness.value for pair in self.pairs)

    def type_hardness_matrix(self) -> Dict[Tuple[str, str], int]:
        """Counts of distinct vis per (vis type, hardness) — Figure 10."""
        from repro.core.hardness import classify_hardness

        matrix: Counter = Counter()
        for _, vis in self.distinct_vis:
            matrix[(vis.vis_type, classify_hardness(vis).value)] += 1
        return dict(matrix)

    @property
    def manual_edit_pairs(self) -> List[SynthesizedPair]:
        """Pairs whose NL needed the manual deletion revision."""
        return [pair for pair in self.pairs if pair.manually_edited]


def build_nvbench(
    corpus: Optional[SpiderCorpus] = None,
    config: Optional[NVBenchConfig] = None,
    workers: int = 1,
    profiler: Optional[BuildProfiler] = None,
    tracer: Optional[Tracer] = None,
) -> NVBench:
    """Run the full nl2sql-to-nl2vis pipeline and return the benchmark.

    ``workers > 1`` shards the corpus by database (databases are fully
    independent) over a process pool and merges results back in corpus
    order; the output is bit-identical to the serial build.  Pass a
    :class:`BuildProfiler` to receive per-stage timings and cache
    hit/miss counters, and/or a :class:`~repro.obs.Tracer` to export a
    span tree of the whole build (one ``pair`` span per input pair; in a
    parallel build each worker records spans under a serialized parent
    context and the coordinator merges them in shard order).  Neither
    instrument changes the synthesized pair list.
    """
    config = config or NVBenchConfig()
    with traced(
        tracer, "build_nvbench",
        workers=workers, use_cache=config.use_cache, seed=config.seed,
    ) as build_span:
        if corpus is None:
            with stage(profiler, "corpus_build"), traced(tracer, "corpus_build"):
                corpus = build_spider_corpus(config.corpus)

        cache = ExecutionCache() if config.use_cache else None
        with stage(profiler, "filter_train"), traced(tracer, "filter_train"):
            chart_filter = _make_filter(
                corpus, config, cache=cache, profiler=profiler
            )
        with stage(profiler, "synthesize"), traced(
            tracer, "synthesize", input_pairs=len(corpus.pairs)
        ) as synth_span:
            if workers <= 1:
                indexed = _synthesize_items(
                    corpus.databases,
                    list(enumerate(corpus.pairs)),
                    chart_filter,
                    config,
                    cache=cache,
                    profiler=profiler,
                    tracer=tracer,
                )
            else:
                indexed = _parallel_synthesize(
                    corpus, chart_filter, config, workers, profiler, tracer
                )
            synth_span.set_attribute("output_pairs", len(indexed))
        if cache is not None:
            if profiler is not None:
                profiler.count("execution_cache_hits", cache.hits)
                profiler.count("execution_cache_misses", cache.misses)
            hits, misses = cache.counts()
            build_span.set_attributes(
                {"execution_cache_hits": hits, "execution_cache_misses": misses}
            )

        bench = NVBench(corpus=corpus)
        bench.pairs = [
            item for _, item in sorted(indexed, key=lambda entry: entry[0])
        ]
        build_span.set_attribute("pairs", len(bench.pairs))
    return bench


def _synthesize_items(
    databases: Dict[str, Database],
    items: List[Tuple[int, NLSQLPair]],
    chart_filter: DeepEyeFilter,
    config: NVBenchConfig,
    cache: Optional[ExecutionCache],
    profiler: Optional[BuildProfiler],
    tracer: Optional[Tracer] = None,
) -> List[Tuple[int, SynthesizedPair]]:
    """Synthesize (corpus index, pair) items; order-preserving."""
    synthesizer = NL2VISSynthesizer(
        chart_filter=chart_filter,
        tree_config=config.tree_edits,
        max_vis_per_query=config.max_vis_per_query,
        seed=config.seed,
        cache=cache,
        profiler=profiler,
        tracer=tracer,
    )
    out: List[Tuple[int, SynthesizedPair]] = []
    for index, pair in items:
        database = databases[pair.db_name]
        rng = np.random.default_rng((config.seed, index))
        with traced(tracer, "pair", index=index, db=pair.db_name) as pair_span:
            synthesized = synthesizer.synthesize(
                pair.nl, pair.query, database, rng=rng
            )
            pair_span.set_attribute("pairs_out", len(synthesized))
        for item in synthesized:
            out.append(
                (index, replace(item, source_nl=pair.nl, source_sql=pair.sql))
            )
    return out


def _build_shard(
    args: tuple,
) -> Tuple[List[Tuple[int, SynthesizedPair]], dict, List[dict]]:
    """Process-pool worker: synthesize one shard of databases.

    Each worker gets its own execution cache (shards never share a
    database, so nothing is lost), its own profiler, and — when the
    coordinator is traced — its own buffering :class:`Tracer` parented
    to the serialized ``synthesize`` span context; the coordinator
    merges the returned reports and span records.
    """
    databases, items, chart_filter, config, trace_context, shard_index = args
    cache = ExecutionCache() if config.use_cache else None
    profiler = BuildProfiler()
    tracer = Tracer() if trace_context is not None else None
    if tracer is None:
        out = _synthesize_items(
            databases, items, chart_filter, config, cache=cache, profiler=profiler
        )
    else:
        with tracer.span(
            "shard", parent=trace_context,
            shard=shard_index, databases=len(databases), input_pairs=len(items),
        ) as shard_span:
            out = _synthesize_items(
                databases, items, chart_filter, config,
                cache=cache, profiler=profiler, tracer=tracer,
            )
            if cache is not None:
                hits, misses = cache.counts()
                shard_span.set_attributes(
                    {"execution_cache_hits": hits,
                     "execution_cache_misses": misses}
                )
    if cache is not None:
        profiler.count("execution_cache_hits", cache.hits)
        profiler.count("execution_cache_misses", cache.misses)
    spans = tracer.finished() if tracer is not None else []
    return out, profiler.report(), spans


def _parallel_synthesize(
    corpus: SpiderCorpus,
    chart_filter: DeepEyeFilter,
    config: NVBenchConfig,
    workers: int,
    profiler: Optional[BuildProfiler],
    tracer: Optional[Tracer] = None,
) -> List[Tuple[int, SynthesizedPair]]:
    """Shard the corpus by database over a process pool and merge."""
    by_db: Dict[str, List[Tuple[int, NLSQLPair]]] = {}
    for index, pair in enumerate(corpus.pairs):
        by_db.setdefault(pair.db_name, []).append((index, pair))
    # Round-robin databases (in corpus order) across shards for balance.
    shards: List[Dict[str, List[Tuple[int, NLSQLPair]]]] = [
        {} for _ in range(min(workers, max(len(by_db), 1)))
    ]
    for slot, (db_name, items) in enumerate(by_db.items()):
        shards[slot % len(shards)][db_name] = items
    context = tracer.current_context() if tracer is not None else None
    trace_context = context.to_dict() if context is not None else None
    tasks = [
        (
            {name: corpus.databases[name] for name in shard},
            [item for items in shard.values() for item in items],
            chart_filter,
            config,
            trace_context,
            shard_index,
        )
        for shard_index, shard in enumerate(shards)
        if shard
    ]
    indexed: List[Tuple[int, SynthesizedPair]] = []
    with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
        # pool.map preserves task order, so profile and span merging is
        # deterministic regardless of worker scheduling.
        for out, report, spans in pool.map(_build_shard, tasks):
            indexed.extend(out)
            if profiler is not None:
                profiler.merge_report(report)
            if tracer is not None:
                tracer.absorb(spans)
    return indexed


def _make_filter(
    corpus: SpiderCorpus,
    config: NVBenchConfig,
    cache: Optional[ExecutionCache] = None,
    profiler: Optional[BuildProfiler] = None,
) -> DeepEyeFilter:
    if not config.train_filter:
        return DeepEyeFilter()
    rng = np.random.default_rng(config.seed)
    sample_size = min(config.filter_training_pairs, len(corpus.pairs))
    if sample_size == 0:
        return DeepEyeFilter()
    indexes = rng.choice(len(corpus.pairs), size=sample_size, replace=False)
    charts = []
    with stage(profiler, "filter_candidates"):
        for index in indexes:
            pair = corpus.pairs[int(index)]
            database = corpus.databases[pair.db_name]
            for candidate in generate_candidates(pair.query, database, config.tree_edits):
                charts.append((candidate.vis, database))
    return train_filter_from_candidates(
        charts, seed=config.seed, cache=cache, profiler=profiler
    )


# ----- JSON (de)serialization ---------------------------------------------


def save_nvbench_pairs(bench: NVBench, path: str) -> None:
    """Write the (NL, VIS) pairs (not the databases) to JSON; VIS trees
    are stored in their canonical token form."""
    payload = [
        {
            "nl": pair.nl,
            "vis_tokens": to_tokens(pair.vis),
            "db_name": pair.db_name,
            "hardness": pair.hardness.value,
            "source_nl": pair.source_nl,
            "source_sql": pair.source_sql,
            "manually_edited": pair.manually_edited,
            "back_translated": pair.back_translated,
        }
        for pair in bench.pairs
    ]
    Path(path).write_text(json.dumps(payload))


def load_nvbench_pairs(corpus: SpiderCorpus, path: str) -> NVBench:
    """Load pairs saved by :func:`save_nvbench_pairs` over *corpus*."""
    from repro.core.hardness import Hardness

    payload = json.loads(Path(path).read_text())
    bench = NVBench(corpus=corpus)
    for item in payload:
        vis = from_tokens(item["vis_tokens"])
        if not isinstance(vis, VisQuery):
            raise ValueError("stored tokens do not form a vis query")
        bench.pairs.append(
            SynthesizedPair(
                nl=item["nl"],
                vis=vis,
                db_name=item["db_name"],
                hardness=Hardness(item["hardness"]),
                source_nl=item["source_nl"],
                source_sql=item["source_sql"],
                manually_edited=item["manually_edited"],
                back_translated=item["back_translated"],
            )
        )
    return bench
