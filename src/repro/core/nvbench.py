"""The nvBench-style benchmark: container, builder, and statistics.

``build_nvbench`` drives the full paper pipeline: build (or accept) a
Spider-like corpus, train the DeepEye-style filter on a sample of
candidate charts, run the synthesizer over every (NL, SQL) pair, and
assemble the resulting (NL, VIS) pairs with hardness labels.

The build is a **bounded-memory, shard-based driver** (see
``docs/CORPUS.md``): the corpus is processed one database at a time
(a *unit*), serial and process-pool paths share one shard writer, and —
when an output directory is given — each completed shard is written to
disk and committed to a content-addressed manifest before the next unit
starts.  That makes the build *resumable* (a killed build restarts from
the last committed shard), *incremental* (a rebuild skips every shard
whose content key still matches), and *streamable* at paper scale
(153 databases / 25k+ pairs are never materialized at once; the
returned :class:`NVBench` reads pairs lazily from the shards).

The build is also instrumented and cache-aware (``docs/PERFORMANCE.md``):
an :class:`~repro.storage.executor.ExecutionCache` deduplicates query
executions across candidates and across the filter-training pass (and
persists across builds through the
:class:`~repro.storage.journal.PersistentExecutionCache` journal), a
:class:`~repro.perf.BuildProfiler` collects per-stage wall times and
shard/resume counters, and ``workers=N`` fans units out over a process
pool.  Serial and parallel builds produce identical pair lists and
byte-identical shards: every input pair draws from its own derived RNG,
so the sampling stream does not depend on sharding.
"""

from __future__ import annotations

import json
from collections import Counter, OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.filter_model import DeepEyeFilter, train_filter_from_candidates
from repro.core.synthesizer import NL2VISSynthesizer, SynthesizedPair
from repro.core.tree_edits import TreeEditConfig, generate_candidates
from repro.grammar.ast_nodes import VisQuery
from repro.obs.trace import Tracer, traced
from repro.perf.profiler import BuildProfiler, stage
from repro.spider.corpus import (
    CorpusConfig,
    NLSQLPair,
    PAPER_SCALE_CORPUS,
    SpiderCorpus,
    build_spider_corpus,
    domain_schedule,
    generate_corpus_unit,
)
from repro.storage.executor import ExecutionCache
from repro.storage.journal import PersistentExecutionCache
from repro.storage.shards import (
    BuildManifest,
    LazyCorpusUnits,
    LazyDatabases,
    LazyInputPairs,
    ManifestEntry,
    ShardError,
    ShardStore,
    ShardedPairs,
    content_hash,
    database_payload,
    pair_from_record,
    pair_record,
)
from repro.storage.schema import Database

#: Salt separating the streamed build's per-pair RNG stream from the
#: corpus-mode ``(seed, global index)`` stream.
_STREAM_PAIR_SALT = 7753


@dataclass
class NVBenchConfig:
    """End-to-end build configuration."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    tree_edits: TreeEditConfig = field(default_factory=TreeEditConfig)
    #: VIS trees kept per input SQL query after filtering
    max_vis_per_query: int = 2
    #: how many input pairs to featurize when training the filter
    filter_training_pairs: int = 150
    #: train the classifier stage (False = rules + teacher only)
    train_filter: bool = True
    #: memoize query executions across candidates and build passes
    use_cache: bool = True
    seed: int = 11


def paper_scale_config(**overrides) -> NVBenchConfig:
    """The paper-shape build: 153 DBs, ≥ 25k (NL, VIS) pairs.

    Meant for the streamed engine (``build_nvbench(stream=True,
    out=...)``) — the corpus is generated one database at a time and
    never held in memory whole.
    """
    corpus = replace(PAPER_SCALE_CORPUS)
    return NVBenchConfig(corpus=corpus, **overrides)


@dataclass(frozen=True)
class NVBenchPair(SynthesizedPair):
    """Alias of :class:`SynthesizedPair` under its benchmark name."""


@dataclass
class NVBench:
    """The synthesized benchmark: databases plus (NL, VIS) pairs.

    ``pairs`` is a ``Sequence`` — either a plain in-memory list (the
    classic build) or a lazy, shard-backed view
    (:class:`~repro.storage.shards.ShardedPairs`) when the benchmark
    was built to or loaded from a shard directory.  All statistics
    iterate the sequence, so they work identically either way.
    """

    corpus: SpiderCorpus
    pairs: Sequence[SynthesizedPair] = field(default_factory=list)

    @property
    def databases(self) -> Dict[str, Database]:
        """Name → database map of the underlying corpus."""
        return self.corpus.databases

    def database_of(self, pair: SynthesizedPair) -> Database:
        """The database a pair was synthesized over."""
        return self.corpus.databases[pair.db_name]

    @property
    def distinct_vis(self) -> List[Tuple[str, VisQuery]]:
        """Distinct (db, vis-tree) pairs — the paper's "#-vis"."""
        seen = dict.fromkeys((pair.db_name, pair.vis) for pair in self.pairs)
        return list(seen)

    def vis_type_counts(self) -> Counter:
        """Distinct-vis counts per chart type (Table 3's #-vis)."""
        return Counter(db_vis[1].vis_type for db_vis in self.distinct_vis)

    def pair_type_counts(self) -> Counter:
        """(NL, VIS) pair counts per chart type."""
        return Counter(pair.vis_type for pair in self.pairs)

    def hardness_counts(self) -> Counter:
        """Pair counts per hardness tier."""
        return Counter(pair.hardness.value for pair in self.pairs)

    def type_hardness_matrix(self) -> Dict[Tuple[str, str], int]:
        """Counts of distinct vis per (vis type, hardness) — Figure 10."""
        from repro.core.hardness import classify_hardness

        matrix: Counter = Counter()
        for _, vis in self.distinct_vis:
            matrix[(vis.vis_type, classify_hardness(vis).value)] += 1
        return dict(matrix)

    @property
    def manual_edit_pairs(self) -> List[SynthesizedPair]:
        """Pairs whose NL needed the manual deletion revision."""
        return [pair for pair in self.pairs if pair.manually_edited]


# ----- build units ---------------------------------------------------------


@dataclass
class BuildUnit:
    """One database's worth of build work — the unit of sharding.

    Corpus mode carries the materialized database and its indexed input
    pairs; streamed mode carries only ``(gen_config, db_index)`` and the
    worker regenerates the database from the per-DB derived RNG.
    """

    db_index: int
    db_name: str
    database: Optional[Database] = None
    items: Optional[List[Tuple[int, NLSQLPair]]] = None
    gen_config: Optional[CorpusConfig] = None


def _materialize_unit(unit: BuildUnit):
    """``(database, indexed items, rng_factory)`` for one unit."""
    if unit.gen_config is not None:
        database, pairs = generate_corpus_unit(unit.gen_config, unit.db_index)
        items = list(enumerate(pairs))
        seed = unit.gen_config.seed
        db_index = unit.db_index

        def rng_factory(index: int) -> np.random.Generator:
            return np.random.default_rng(
                (seed, _STREAM_PAIR_SALT, db_index, index)
            )

        return database, items, rng_factory
    return unit.database, unit.items or [], None


# ----- content addressing --------------------------------------------------


def _config_fingerprint(config: NVBenchConfig, mode: str) -> str:
    """Hash over every config knob that can change shard bytes.

    ``use_cache`` is deliberately excluded — it is a pure performance
    knob (cached and uncached builds are asserted identical).
    """
    from repro.storage.shards import FORMAT_VERSION

    return content_hash(
        {
            "format": FORMAT_VERSION,
            "mode": mode,
            "corpus": asdict(config.corpus),
            "tree_edits": asdict(config.tree_edits),
            "max_vis_per_query": config.max_vis_per_query,
            "filter_training_pairs": config.filter_training_pairs,
            "train_filter": config.train_filter,
            "seed": config.seed,
        }
    )


def _filter_sample_indexes(corpus: SpiderCorpus, config: NVBenchConfig) -> List[int]:
    """The deterministic corpus sample the chart filter trains on."""
    if not config.train_filter:
        return []
    rng = np.random.default_rng(config.seed)
    sample_size = min(config.filter_training_pairs, len(corpus.pairs))
    if sample_size == 0:
        return []
    return [int(i) for i in rng.choice(len(corpus.pairs), size=sample_size, replace=False)]


def _unit_key(
    unit: BuildUnit,
    config_fp: str,
    filter_fp: str,
    db_hash: Optional[str],
) -> str:
    """The content key a shard is addressed by in the manifest.

    Streamed units are fully determined by (config, db_index) — their
    key needs no data hash, so a resumed build can skip clean shards
    without regenerating anything.  Corpus units hash the actual
    database payload plus the indexed (NL, SQL) items (global indexes
    included: the per-pair RNG derives from them).
    """
    payload: dict = {
        "config": config_fp,
        "filter": filter_fp,
        "db_index": unit.db_index,
        "db_name": unit.db_name,
    }
    if unit.gen_config is None:
        payload["db"] = db_hash
        payload["items"] = [
            (index, pair.nl, pair.sql) for index, pair in (unit.items or [])
        ]
    return content_hash(payload)


# ----- the driver ----------------------------------------------------------


def build_nvbench(
    corpus: Optional[SpiderCorpus] = None,
    config: Optional[NVBenchConfig] = None,
    workers: int = 1,
    profiler: Optional[BuildProfiler] = None,
    tracer: Optional[Tracer] = None,
    out: Optional[str] = None,
    resume: bool = False,
    stream: bool = False,
    cache: Optional[ExecutionCache] = None,
    max_databases: Optional[int] = None,
    after_shard: Optional[Callable[[int, str], None]] = None,
) -> NVBench:
    """Run the full nl2sql-to-nl2vis pipeline and return the benchmark.

    Parameters beyond the classic ones:

    out:
        Directory to stream shards into (``docs/CORPUS.md``).  Each
        database's (NL, VIS) pairs are written as one JSONL shard the
        moment the unit completes, the manifest is committed after every
        shard, and the returned :class:`NVBench` reads pairs lazily —
        the full pair list is never materialized in this process.
    resume:
        With ``out``: trust the existing manifest, re-verify every
        committed shard's content key and file hashes, and rebuild only
        dirty or missing shards.  A killed build resumes from the last
        committed shard and yields byte-identical output.
    stream:
        Generate the corpus one database at a time from
        ``config.corpus`` (independent per-DB RNG streams) instead of
        requiring/areadying a whole :class:`SpiderCorpus`.  This is the
        paper-scale path.
    cache:
        Explicit :class:`ExecutionCache` (e.g. a
        :class:`PersistentExecutionCache`).  Default: a fresh in-memory
        cache, or — with ``out`` — a persistent journal-backed cache at
        ``<out>/cache/journal.jsonl`` shared across builds.
    max_databases:
        Cap on streamed databases (CI smoke jobs build a prefix of the
        paper-scale plan).
    after_shard:
        Callback ``(unit_index, db_name)`` invoked after each shard is
        committed — fault-injection hook for the resumability tests.

    ``workers > 1`` fans units over a process pool and merges results in
    unit order; the output is bit-identical to the serial build.
    """
    config = config or NVBenchConfig()
    if stream and corpus is not None:
        raise ValueError("stream=True generates its own corpus; don't pass one")
    if resume and out is None:
        raise ValueError("resume=True requires an output directory (out=...)")
    mode = "streamed" if stream else "corpus"
    store = ShardStore(out) if out is not None else None

    with traced(
        tracer, "build_nvbench",
        workers=workers, use_cache=config.use_cache, seed=config.seed,
        mode=mode, out=str(out) if out else "",
    ) as build_span:
        if corpus is None and not stream:
            with stage(profiler, "corpus_build"), traced(tracer, "corpus_build"):
                corpus = build_spider_corpus(config.corpus)

        cache = cache if cache is not None else _default_cache(config, store)
        if isinstance(cache, PersistentExecutionCache) and profiler is not None:
            profiler.count("cache_journal_preloaded", cache.preloaded)
            profiler.count("cache_journal_corrupt", cache.corrupt_entries)

        units = _plan_units(corpus, config, stream, max_databases)
        config_fp = _config_fingerprint(config, mode)

        with stage(profiler, "filter_train"), traced(tracer, "filter_train"):
            if stream:
                chart_filter = _make_filter_streamed(
                    config, cache=cache, profiler=profiler,
                    max_databases=max_databases,
                )
                filter_fp = content_hash({"streamed": True, "config": config_fp})
            else:
                chart_filter = _make_filter(
                    corpus, config, cache=cache, profiler=profiler
                )
                filter_fp = _corpus_filter_fingerprint(corpus, config, config_fp)

        manifest = BuildManifest(
            mode=mode, config_fingerprint=config_fp, filter_fingerprint=filter_fp
        )
        previous = store.load_manifest() if (store and resume) else None
        if previous is not None and not manifest.compatible_with(previous):
            previous = None

        db_hashes: Dict[str, str] = {}
        keys: Dict[str, str] = {}
        for unit in units:
            db_hash = None
            if unit.gen_config is None:
                db_hash = db_hashes.setdefault(
                    unit.db_name, content_hash(database_payload(unit.database))
                )
            keys[unit.db_name] = _unit_key(unit, config_fp, filter_fp, db_hash)
        if profiler is not None:
            profiler.count("shards_total", len(units))

        with stage(profiler, "synthesize"), traced(
            tracer, "synthesize", databases=len(units)
        ) as synth_span:
            collected, total_pairs, total_inputs = _run_units(
                units, keys, manifest, previous, store, chart_filter, config,
                workers, cache, profiler, tracer, after_shard,
                keep_pairs=store is None,
            )
            synth_span.set_attribute("input_pairs", total_inputs)
            synth_span.set_attribute("output_pairs", total_pairs)

        if store is not None:
            # Final manifest in canonical unit order (intermediate saves
            # commit in completion order for crash safety).
            ordered = OrderedDict(
                sorted(manifest.entries.items(), key=lambda kv: kv[1].db_index)
            )
            manifest.entries = ordered
            store.save_manifest(manifest)

        if cache is not None:
            if isinstance(cache, PersistentExecutionCache):
                cache.flush()
            if profiler is not None:
                profiler.count("execution_cache_hits", cache.hits)
                profiler.count("execution_cache_misses", cache.misses)
            hits, misses = cache.counts()
            build_span.set_attributes(
                {"execution_cache_hits": hits, "execution_cache_misses": misses}
            )

        bench = _assemble(corpus, store, manifest, collected, stream)
        build_span.set_attribute("pairs", total_pairs)
    return bench


def _default_cache(
    config: NVBenchConfig, store: Optional[ShardStore]
) -> Optional[ExecutionCache]:
    if not config.use_cache:
        return None
    if store is not None:
        return PersistentExecutionCache(store.journal_path)
    return ExecutionCache()


def _plan_units(
    corpus: Optional[SpiderCorpus],
    config: NVBenchConfig,
    stream: bool,
    max_databases: Optional[int],
) -> List[BuildUnit]:
    """The ordered per-database work plan."""
    if stream:
        schedule = domain_schedule(config.corpus)
        if max_databases is not None:
            schedule = schedule[:max_databases]
        return [
            BuildUnit(db_index=i, db_name=name, gen_config=config.corpus)
            for i, (_, name) in enumerate(schedule)
        ]
    by_db: Dict[str, List[Tuple[int, NLSQLPair]]] = {
        name: [] for name in corpus.databases
    }
    for index, pair in enumerate(corpus.pairs):
        by_db.setdefault(pair.db_name, []).append((index, pair))
    return [
        BuildUnit(
            db_index=i,
            db_name=name,
            database=corpus.databases.get(name),
            items=items,
        )
        for i, (name, items) in enumerate(by_db.items())
    ]


def _run_units(
    units: List[BuildUnit],
    keys: Dict[str, str],
    manifest: BuildManifest,
    previous: Optional[BuildManifest],
    store: Optional[ShardStore],
    chart_filter: DeepEyeFilter,
    config: NVBenchConfig,
    workers: int,
    cache: Optional[ExecutionCache],
    profiler: Optional[BuildProfiler],
    tracer: Optional[Tracer],
    after_shard: Optional[Callable[[int, str], None]],
    keep_pairs: bool,
) -> Tuple[List[Tuple[tuple, SynthesizedPair]], int, int]:
    """Drive every unit: skip clean shards, build the rest, commit.

    Returns ``(collected pairs, total output pairs, total input pairs)``
    — ``collected`` is empty unless *keep_pairs* (the classic in-memory
    build); sharded builds stream each unit's pairs to disk and drop
    them, which is the bounded-memory guarantee ``BENCH_build.json``
    records as ``resident_pairs_peak``.
    """
    collected: List[Tuple[tuple, SynthesizedPair]] = []
    total_pairs = 0
    total_inputs = 0
    pending: List[BuildUnit] = []

    def commit(entry: ManifestEntry, unit: BuildUnit) -> None:
        manifest.entries[entry.name] = entry
        store.save_manifest(manifest)
        if isinstance(cache, PersistentExecutionCache):
            cache.flush()
        if after_shard is not None:
            after_shard(unit.db_index, unit.db_name)

    for unit in units:
        if previous is not None:
            prior = previous.entries.get(unit.db_name)
            if prior is not None and store.entry_is_clean(prior, keys[unit.db_name]):
                total_pairs += prior.pairs
                total_inputs += prior.input_pairs
                if profiler is not None:
                    profiler.count("shards_skipped_clean")
                manifest.entries[unit.db_name] = prior
                store.save_manifest(manifest)
                continue
            if prior is not None and profiler is not None:
                profiler.count("shards_rebuilt_dirty")
        pending.append(unit)

    if workers <= 1 or len(pending) <= 1:
        for unit in pending:
            entry, indexed, n_inputs = _process_unit(
                unit, keys[unit.db_name], chart_filter, config,
                cache=cache, profiler=profiler, tracer=tracer, store=store,
                keep_pairs=keep_pairs,
            )
            total_inputs += n_inputs
            if profiler is not None:
                profiler.count("shards_built")
            if store is not None:
                total_pairs += entry.pairs
                if profiler is not None:
                    profiler.count_max("resident_pairs_peak", entry.pairs)
                commit(entry, unit)
            else:
                total_pairs += len(indexed)
                collected.extend(indexed)
                if profiler is not None:
                    profiler.count_max("resident_pairs_peak", total_pairs)
    else:
        total_pairs, total_inputs = _run_units_pooled(
            pending, keys, chart_filter, config, workers, cache, profiler,
            tracer, store, keep_pairs, collected, commit,
            total_pairs, total_inputs,
        )
    return collected, total_pairs, total_inputs


def _run_units_pooled(
    pending, keys, chart_filter, config, workers, cache, profiler, tracer,
    store, keep_pairs, collected, commit, total_pairs, total_inputs,
):
    """Fan pending units over a process pool; merge in unit order.

    Each worker gets its own execution cache — pre-seeded with the
    coordinator cache's entries for its database, so a persistent
    journal still pays off across processes — plus its own profiler and
    (when tracing) a buffering tracer parented to the ``synthesize``
    span; the coordinator absorbs everything in submission order, so
    profiles, spans, and pair lists are deterministic regardless of
    worker scheduling.
    """
    context = tracer.current_context() if tracer is not None else None
    trace_context = context.to_dict() if context is not None else None
    tasks = []
    for unit in pending:
        seed_entries = []
        if cache is not None:
            if isinstance(cache, PersistentExecutionCache):
                seed_entries = cache.entries_for_db(unit.db_name)
            use_cache = True
        else:
            use_cache = False
        tasks.append((
            unit, keys[unit.db_name], chart_filter, config, use_cache,
            seed_entries, trace_context,
            str(store.root) if store is not None else None, keep_pairs,
        ))
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        # pool.map preserves task order, so profile/span/pair merging is
        # deterministic regardless of worker scheduling.
        for (entry, indexed, n_inputs, report, spans, new_entries), task in zip(
            pool.map(_unit_task, tasks), tasks
        ):
            unit = task[0]
            total_inputs += n_inputs
            if profiler is not None:
                profiler.merge_report(report)
                profiler.count("shards_built")
            if tracer is not None:
                tracer.absorb(spans)
            if isinstance(cache, PersistentExecutionCache) and new_entries:
                cache.absorb_entries(new_entries)
            if store is not None:
                total_pairs += entry.pairs
                if profiler is not None:
                    profiler.count_max("resident_pairs_peak", entry.pairs)
                commit(entry, unit)
            else:
                total_pairs += len(indexed)
                collected.extend(indexed)
                if profiler is not None:
                    profiler.count_max("resident_pairs_peak", total_pairs)
    return total_pairs, total_inputs


def _unit_task(args: tuple):
    """Process-pool worker: build one unit with its own instruments."""
    (unit, key, chart_filter, config, use_cache, seed_entries,
     trace_context, store_root, keep_pairs) = args
    cache = ExecutionCache() if use_cache else None
    if cache is not None and seed_entries:
        for entry_key, entry in seed_entries:
            cache._entries[entry_key] = entry
    seeded = set(cache._entries) if cache is not None else set()
    profiler = BuildProfiler()
    tracer = Tracer() if trace_context is not None else None
    store = ShardStore(store_root) if store_root is not None else None
    entry, indexed, n_inputs = _process_unit(
        unit, key, chart_filter, config,
        cache=cache, profiler=profiler, tracer=tracer, store=store,
        keep_pairs=keep_pairs, parent_context=trace_context,
    )
    if cache is not None:
        profiler.count("execution_cache_hits", cache.hits)
        profiler.count("execution_cache_misses", cache.misses)
    new_entries = (
        [(k, v) for k, v in cache._entries.items() if k not in seeded]
        if cache is not None
        else []
    )
    spans = tracer.finished() if tracer is not None else []
    return entry, indexed, n_inputs, profiler.report(), spans, new_entries


def _process_unit(
    unit: BuildUnit,
    key: str,
    chart_filter: DeepEyeFilter,
    config: NVBenchConfig,
    cache: Optional[ExecutionCache],
    profiler: Optional[BuildProfiler],
    tracer: Optional[Tracer],
    store: Optional[ShardStore],
    keep_pairs: bool,
    parent_context: Optional[dict] = None,
) -> Tuple[Optional[ManifestEntry], List[Tuple[tuple, SynthesizedPair]], int]:
    """Synthesize one database and (optionally) write its shard.

    This is the **one shard writer** both the serial and the
    process-pool paths run: materialize the unit, synthesize its pairs
    in input order, then atomically write the shard and corpus files.
    Returns ``(manifest entry | None, kept pairs, input-pair count)``.
    """
    database, items, rng_factory = _materialize_unit(unit)
    with traced(
        tracer, "shard", parent=parent_context,
        shard=unit.db_index, db=unit.db_name, input_pairs=len(items),
    ) as shard_span:
        indexed = _synthesize_items(
            {unit.db_name: database} if database is not None else {},
            items, chart_filter, config,
            cache=cache, profiler=profiler, tracer=tracer,
            rng_factory=rng_factory,
        )
        shard_span.set_attribute("pairs_out", len(indexed))

    entry = None
    if store is not None:
        records = [pair_record(pair, index) for index, pair in indexed]
        shard_sha = store.write_shard(unit.db_name, records)
        corpus_sha = store.write_corpus_unit(
            unit.db_name, database, [(pair.nl, pair.sql) for _, pair in items]
        )
        entry = ManifestEntry(
            name=unit.db_name,
            key=key,
            db_index=unit.db_index,
            shard_sha256=shard_sha,
            corpus_sha256=corpus_sha,
            pairs=len(indexed),
            input_pairs=len(items),
        )
        if not keep_pairs:
            indexed = []
    return entry, indexed, len(items)


def _assemble(
    corpus: Optional[SpiderCorpus],
    store: Optional[ShardStore],
    manifest: BuildManifest,
    collected: List[Tuple[tuple, SynthesizedPair]],
    stream: bool,
) -> NVBench:
    """The returned benchmark: in-memory or lazily shard-backed."""
    if store is not None:
        if stream or corpus is None:
            return load_nvbench_dir(str(store.root))
        bench = NVBench(corpus=corpus)
        bench.pairs = ShardedPairs(store, manifest)
        return bench
    if corpus is None:
        # stream=True without an output directory: reconstruct a corpus
        # container from whatever the units generated is not possible
        # bounded-memory; callers wanting the corpus should pass out=.
        corpus = SpiderCorpus()
    bench = NVBench(corpus=corpus)
    bench.pairs = [item for _, item in sorted(collected, key=lambda e: e[0])]
    return bench


def _synthesize_items(
    databases: Dict[str, Database],
    items: List[Tuple[int, NLSQLPair]],
    chart_filter: DeepEyeFilter,
    config: NVBenchConfig,
    cache: Optional[ExecutionCache],
    profiler: Optional[BuildProfiler],
    tracer: Optional[Tracer] = None,
    rng_factory: Optional[Callable[[int], np.random.Generator]] = None,
) -> List[Tuple[tuple, SynthesizedPair]]:
    """Synthesize (sort key, pair) items; order-preserving.

    The default RNG derivation is the corpus-mode contract — every input
    pair draws from ``default_rng((seed, global index))`` — so the
    sampling stream is independent of sharding; streamed units override
    it with their per-DB-local derivation.
    """
    if rng_factory is None:
        seed = config.seed

        def rng_factory(index: int) -> np.random.Generator:
            return np.random.default_rng((seed, index))

    synthesizer = NL2VISSynthesizer(
        chart_filter=chart_filter,
        tree_config=config.tree_edits,
        max_vis_per_query=config.max_vis_per_query,
        seed=config.seed,
        cache=cache,
        profiler=profiler,
        tracer=tracer,
    )
    out: List[Tuple[tuple, SynthesizedPair]] = []
    for index, pair in items:
        database = databases[pair.db_name]
        rng = rng_factory(index)
        with traced(tracer, "pair", index=index, db=pair.db_name) as pair_span:
            synthesized = synthesizer.synthesize(
                pair.nl, pair.query, database, rng=rng
            )
            pair_span.set_attribute("pairs_out", len(synthesized))
        for item in synthesized:
            out.append(
                (index, replace(item, source_nl=pair.nl, source_sql=pair.sql))
            )
    return out


def _make_filter(
    corpus: SpiderCorpus,
    config: NVBenchConfig,
    cache: Optional[ExecutionCache] = None,
    profiler: Optional[BuildProfiler] = None,
) -> DeepEyeFilter:
    indexes = _filter_sample_indexes(corpus, config)
    if not indexes:
        return DeepEyeFilter()
    charts = []
    with stage(profiler, "filter_candidates"):
        for index in indexes:
            pair = corpus.pairs[int(index)]
            database = corpus.databases[pair.db_name]
            for candidate in generate_candidates(pair.query, database, config.tree_edits):
                charts.append((candidate.vis, database))
    return train_filter_from_candidates(
        charts, seed=config.seed, cache=cache, profiler=profiler
    )


def _corpus_filter_fingerprint(
    corpus: SpiderCorpus, config: NVBenchConfig, config_fp: str
) -> str:
    """Hash the filter's actual training inputs.

    A shard is only clean if the shared chart filter is provably the
    same, and the filter depends on the sampled pairs *and their
    databases' data* — so editing a database inside the training sample
    dirties every shard, while editing one outside it dirties only its
    own.
    """
    indexes = _filter_sample_indexes(corpus, config)
    sample = [
        (corpus.pairs[i].db_name, corpus.pairs[i].nl, corpus.pairs[i].sql)
        for i in indexes
    ]
    db_names = sorted({corpus.pairs[i].db_name for i in indexes})
    db_hashes = {
        name: content_hash(database_payload(corpus.databases[name]))
        for name in db_names
    }
    return content_hash(
        {
            "config": config_fp,
            "n_pairs": len(corpus.pairs),
            "sample": sample,
            "databases": db_hashes,
        }
    )


def _make_filter_streamed(
    config: NVBenchConfig,
    cache: Optional[ExecutionCache],
    profiler: Optional[BuildProfiler],
    max_databases: Optional[int] = None,
) -> DeepEyeFilter:
    """Train the filter from the stream's first N input pairs.

    Streamed builds have no corpus to sample from, so the training set
    is the first ``filter_training_pairs`` (NL, SQL) pairs in database
    order — fully determined by the corpus config, which is exactly
    what the filter fingerprint hashes.  The few databases touched here
    are regenerated later by their own units; generation is cheap next
    to synthesis, and the execution cache (persistent across the build)
    already holds their results by then.
    """
    if not config.train_filter or config.filter_training_pairs == 0:
        return DeepEyeFilter()
    charts = []
    taken = 0
    limit = config.corpus.num_databases
    if max_databases is not None:
        limit = min(limit, max_databases)
    with stage(profiler, "filter_candidates"):
        for db_index in range(limit):
            database, pairs = generate_corpus_unit(config.corpus, db_index)
            for pair in pairs:
                for candidate in generate_candidates(
                    pair.query, database, config.tree_edits
                ):
                    charts.append((candidate.vis, database))
                taken += 1
                if taken >= config.filter_training_pairs:
                    break
            if taken >= config.filter_training_pairs:
                break
    if not charts:
        return DeepEyeFilter()
    return train_filter_from_candidates(
        charts, seed=config.seed, cache=cache, profiler=profiler
    )


# ----- directory (shard) load ----------------------------------------------


def load_nvbench_dir(path: str, lru_size: int = 4) -> NVBench:
    """Open a sharded benchmark directory **lazily**.

    Lengths come from the manifest; shards and per-DB corpus units load
    on access through small LRUs, so stats, eval, and training can
    consume a paper-scale benchmark without ever materializing it —
    the round-trip counterpart of ``build_nvbench(out=...)`` and the
    CLI's ``--benchmark DIR``.
    """
    store = ShardStore(path)
    manifest = store.load_manifest()
    if manifest is None:
        raise ShardError(f"no readable manifest under {path!r}")
    units = LazyCorpusUnits(store, manifest, capacity=lru_size)
    corpus = SpiderCorpus()
    corpus.databases = LazyDatabases(units)
    corpus.pairs = LazyInputPairs(units)
    bench = NVBench(corpus=corpus)
    bench.pairs = ShardedPairs(store, manifest, lru_size=lru_size)
    return bench


# ----- JSON (de)serialization ---------------------------------------------


def save_nvbench_pairs(bench: NVBench, path: str) -> None:
    """Write the (NL, VIS) pairs (not the databases) to JSON; VIS trees
    are stored in their canonical token form."""
    payload = []
    for pair in bench.pairs:
        record = pair_record(pair, 0)
        del record["index"]
        payload.append(record)
    Path(path).write_text(json.dumps(payload))


def load_nvbench_pairs(corpus: SpiderCorpus, path: str) -> NVBench:
    """Load pairs saved by :func:`save_nvbench_pairs` over *corpus*."""
    payload = json.loads(Path(path).read_text())
    bench = NVBench(corpus=corpus)
    bench.pairs = [pair_from_record(item) for item in payload]
    return bench
