"""Back-translation smoothing (offline stand-in).

The paper pipes every rule-edited NL query through machine translation
(English → French → English) to smooth awkward rule-inserted phrasing.
Without a translation service, this module provides a deterministic
paraphraser playing the same role: it substitutes common synonyms,
normalizes a few stiff constructions, and occasionally reorders the
leading verb phrase — all seeded, so the corpus is reproducible, and all
measurably increasing variant diversity (lower pairwise BLEU, Table 3).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

import numpy as np

#: Word-level synonym alternatives (applied with per-word coin flips).
#: Deliberately includes the aggregate/sort vocabulary — real
#: back-translation rephrases those too, which is precisely what makes
#: keyword-lexicon systems (DeepEye, NL4DV) brittle on nvBench.
_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "show": ("display", "present", "give"),
    "draw": ("plot", "sketch"),
    "visualize": ("display", "chart"),
    "find": ("get", "identify"),
    "list": ("enumerate", "give"),
    "return": ("give back", "report"),
    "chart": ("graph",),
    "about": ("regarding", "on"),
    "each": ("every",),
    "number": ("count",),
    "average": ("mean", "typical"),
    "total": ("combined", "overall", "aggregate"),
    "maximum": ("top", "peak"),
    "minimum": ("smallest", "bottom"),
    "sorted": ("ordered", "ranked", "arranged"),
    "descending": ("decreasing",),
    "ascending": ("increasing",),
    "whose": ("where the",),
    "records": ("rows", "entries"),
    "compute": ("work out", "derive"),
    "showing": ("displaying", "presenting"),
}

#: Phrase-level normalizations (each applied with a coin flip).
_REWRITES: Tuple[Tuple[str, str], ...] = (
    (r"\bhow many there are\b", "the count"),
    (r"\bhow many\b", "what number of"),
    (r"\band give the top\b", "limited to the top"),
    (r"\bin a\b", "using a"),
    (r"\bfor every\b", "for each of the"),
    (r"\bfor each\b", "per"),
    (r"\bin descending order\b", "from largest to smallest"),
    (r"\bin ascending order\b", "from smallest to largest"),
    (r"\bgreater than\b", "exceeding"),
    (r"\bless than\b", "beneath"),
    (r"\bgrouped by\b", "split out by"),
    (r"\bnumber of\b", "count of"),
)


def smooth(text: str, rng: np.random.Generator) -> str:
    """Return a smoothed paraphrase of *text* (seeded by *rng*)."""
    for pattern, replacement in _REWRITES:
        if rng.random() < 0.5:
            text = re.sub(pattern, replacement, text, flags=re.IGNORECASE)
    tokens = re.split(r"(\W+)", text)
    out: List[str] = []
    for token in tokens:
        lower = token.lower()
        choices = _SYNONYMS.get(lower)
        if choices and rng.random() < 0.55:
            replacement = str(rng.choice(choices))
            if token[:1].isupper():
                replacement = replacement[0].upper() + replacement[1:]
            out.append(replacement)
        else:
            out.append(token)
    smoothed = "".join(out)
    smoothed = re.sub(r"\s{2,}", " ", smoothed)
    return smoothed.strip()
