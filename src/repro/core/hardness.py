"""VIS-query hardness classification (paper Section 3.2).

The paper defines hardness from three ingredients:

* **S1** — the clause subtree kinds {Select, Order, Group, Filter,
  Superlative} present in the tree;
* **S2** — three count conditions over A-subtrees, Filter-subtrees, and
  Group-subtrees;
* **S3** — the set operators {intersect, union, except}.

The printed rules R1-R5 are somewhat ambiguous; we implement the
interpretation that reproduces the published distribution (Figure 10:
medium most common, then easy, hard, extra hard):

* **Easy** — only a Select (no other S1 subtree) with ≤ 2 attributes.
* **Medium** — one extra S1 subtree, and at most one of the S2 counts
  reaches 2 (R2); e.g. the canonical grouped-count bar chart.
* **Hard** — two extra S1 subtrees (R4), or any S2 count exceeding 2 /
  at least two S2 counts reaching 2 (R3), or a plain set operation over
  otherwise-simple branches (R5), or a nested subquery.
* **Extra Hard** — anything beyond: three or more extra S1 subtrees,
  set operations over non-trivial branches, or combinations of nesting
  with heavy clause structure.
"""

from __future__ import annotations

from enum import Enum
from typing import Union

from repro.grammar.ast_nodes import (
    InSubquery,
    QueryCore,
    SetQuery,
    SQLQuery,
    SubqueryComparison,
    VisQuery,
)

HARDNESS_LEVELS = ("easy", "medium", "hard", "extra hard")


class Hardness(str, Enum):
    """Spider-style difficulty tiers."""

    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA_HARD = "extra hard"


def classify_hardness(query: Union[SQLQuery, VisQuery]) -> Hardness:
    """Classify *query* into one of the four hardness tiers."""
    body = query.body
    if isinstance(body, SetQuery):
        left = _core_signature(body.left)
        right = _core_signature(body.right)
        extra_s1 = max(left["extra_s1"], right["extra_s1"])
        s2_hits = max(left["s2_hits"], right["s2_hits"])
        nested = left["nested"] or right["nested"]
        # R5: a bare set operation is hard; s2_hits ≤ 1 allows the
        # baseline two-attribute select every chartable query carries.
        if extra_s1 <= 1 and s2_hits <= 1 and not nested:
            return Hardness.HARD
        return Hardness.EXTRA_HARD

    signature = _core_signature(body)
    extra_s1 = signature["extra_s1"]
    s2_hits = signature["s2_hits"]
    nested = signature["nested"]

    if nested:
        # A nested subquery is at least hard; with heavy clause structure
        # on top it becomes extra hard.
        if extra_s1 >= 3 or s2_hits >= 3:
            return Hardness.EXTRA_HARD
        return Hardness.HARD
    if extra_s1 >= 3 or (extra_s1 == 2 and s2_hits >= 3):
        return Hardness.EXTRA_HARD
    if extra_s1 == 2 or s2_hits >= 3:
        # R4 (three S1 subtrees) or R3 (all three S2 counts reach two).
        return Hardness.HARD
    if extra_s1 == 1 or signature["n_attrs"] > 2:
        # R1/R2: Select plus at most one other clause kind.
        return Hardness.MEDIUM
    return Hardness.EASY


def _core_signature(core: QueryCore) -> dict:
    n_attrs = len(core.select)
    n_groups = len(core.groups)
    n_filters = 0
    nested = False
    if core.filter is not None:
        for pred in core.filter.predicates():
            if isinstance(pred, (SubqueryComparison, InSubquery)):
                nested = True
            if not list(pred.children()):
                n_filters += 1

    extra_s1 = 0
    if core.order is not None:
        extra_s1 += 1
    if core.superlative is not None:
        extra_s1 += 1
    if n_groups:
        extra_s1 += 1
    if core.filter is not None:
        extra_s1 += 1

    # S2: counts reaching two, and counts overflowing two.
    s2_hits = sum(1 for count in (n_attrs, n_filters, n_groups) if count >= 2)
    s2_overflow = sum(1 for count in (n_attrs, n_filters, n_groups) if count > 2)
    return {
        "n_attrs": n_attrs,
        "extra_s1": extra_s1,
        "s2_hits": s2_hits,
        "s2_overflow": s2_overflow,
        "nested": nested,
    }
