"""Filtering bad visualizations (paper Section 2.4).

Reimplements DeepEye's two-stage working mechanism:

1. **Expert rules** remove invalid and obviously bad charts — the four
   classes the paper observed on TPC-H/TPC-DS: single-value results, pie
   charts with too many slices, bar charts with too many categories, and
   degenerate/empty results.
2. A **trained binary classifier** decides good/bad for the remainder.
   The original was trained on 2,520/30,892 hand-labelled charts; since
   those labels are unavailable offline, we train a logistic regression
   (pure numpy) on charts sampled from a synthetic corpus and labelled by
   a richer *teacher* rule set encoding the community rules-of-thumb the
   original labels captured.  The feature vector follows the paper:
   number of distinct values, number of tuples, ratio of unique values,
   max/min values, data type, attribute correlation, and vis type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.grammar.ast_nodes import VIS_TYPES, VisQuery
from repro.perf.profiler import BuildProfiler, stage
from repro.storage.executor import (
    ExecutionCache,
    ExecutionError,
    Executor,
    ResultTable,
)
from repro.storage.schema import Database

#: rule thresholds (expert stage)
MAX_PIE_SLICES = 12
MAX_BAR_CATEGORIES = 50
MAX_LINE_POINTS = 500
MAX_SCATTER_POINTS = 2000
MAX_SERIES = 12


@dataclass(frozen=True)
class ChartFeatures:
    """The DeepEye feature vector for one rendered chart."""

    vis_type: str
    n_rows: int
    n_distinct_x: int
    unique_ratio_x: float
    y_min: float
    y_max: float
    y_spread: float
    x_is_temporal: bool
    x_is_numeric: bool
    correlation: float
    n_series: int

    def to_vector(self) -> np.ndarray:
        """Numeric feature vector (log-scaled counts + type one-hot)."""
        type_onehot = [1.0 if self.vis_type == name else 0.0 for name in VIS_TYPES]
        return np.array(
            [
                math.log1p(self.n_rows),
                math.log1p(self.n_distinct_x),
                self.unique_ratio_x,
                math.log1p(abs(self.y_min)),
                math.log1p(abs(self.y_max)),
                math.log1p(self.y_spread),
                1.0 if self.x_is_temporal else 0.0,
                1.0 if self.x_is_numeric else 0.0,
                self.correlation,
                math.log1p(self.n_series),
            ]
            + type_onehot
        )


FEATURE_DIM = 10 + len(VIS_TYPES)


def extract_features(
    vis: VisQuery,
    database: Database,
    result: Optional[ResultTable] = None,
    cache: Optional[ExecutionCache] = None,
) -> Optional[ChartFeatures]:
    """Execute *vis* (unless *result* is given) and featurize the chart.

    Returns ``None`` when the query cannot run — callers treat that as a
    bad chart.  With a *cache*, candidates sharing a query body execute
    once (failures included).
    """
    if result is None:
        try:
            result = Executor(database, cache=cache).execute(vis)
        except ExecutionError:
            return None
    if not result.rows:
        return None
    xs = result.column_values(0)
    ys = result.column_values(1) if len(result.columns) > 1 else xs
    numeric_ys = [y for y in ys if isinstance(y, (int, float))]
    distinct_x = len(set(xs))
    y_min = float(min(numeric_ys)) if numeric_ys else 0.0
    y_max = float(max(numeric_ys)) if numeric_ys else 0.0
    n_series = 1
    if len(result.columns) > 2:
        n_series = len(set(result.column_values(2)))
    numeric_xs = [x for x in xs if isinstance(x, (int, float))]
    correlation = 0.0
    if len(numeric_xs) == len(xs) and len(numeric_ys) == len(ys) and len(xs) > 2:
        x_arr = np.asarray(numeric_xs, dtype=float)
        y_arr = np.asarray(numeric_ys, dtype=float)
        if x_arr.std() > 0 and y_arr.std() > 0:
            correlation = float(np.corrcoef(x_arr, y_arr)[0, 1])
    core = vis.cores[0]
    x_attr = core.select[0]
    x_type = database.column_type(x_attr.table, x_attr.column)
    return ChartFeatures(
        vis_type=vis.vis_type,
        n_rows=result.row_count,
        n_distinct_x=distinct_x,
        unique_ratio_x=distinct_x / max(len(xs), 1),
        y_min=y_min,
        y_max=y_max,
        y_spread=y_max - y_min,
        x_is_temporal=x_type == "T",
        x_is_numeric=x_type == "Q",
        correlation=correlation,
        n_series=n_series,
    )


def rule_verdict(features: ChartFeatures) -> Optional[bool]:
    """The expert-rule stage: ``True``/``False`` when a rule fires,
    ``None`` when the chart should go to the classifier.

    Encodes the paper's four observed bad classes plus the obvious
    rules-of-thumb from the vis community.
    """
    # (1) single value: better shown as a table than a chart.
    if features.n_rows <= 1:
        return False
    # (2) pie charts with many slices.
    if features.vis_type == "pie":
        if features.n_rows > MAX_PIE_SLICES:
            return False
        if features.y_min < 0:
            return False
    # (3) bar charts with too many categories.
    if features.vis_type in ("bar", "stacked bar"):
        if features.n_distinct_x > MAX_BAR_CATEGORIES:
            return False
    # (4) degenerate axes.
    if features.vis_type in ("line", "grouping line"):
        if features.n_distinct_x > MAX_LINE_POINTS:
            return False
        if features.n_distinct_x < 2:
            return False
    if features.vis_type in ("scatter", "grouping scatter"):
        if features.n_rows > MAX_SCATTER_POINTS:
            return False
        if features.n_rows < 3:
            return False
    if features.n_series > MAX_SERIES:
        return False
    return None


def teacher_label(features: ChartFeatures) -> bool:
    """Training label for the classifier: the community rules-of-thumb
    the original 2,520/30,892 hand labels encoded, at finer granularity
    than :func:`rule_verdict`."""
    verdict = rule_verdict(features)
    if verdict is not None:
        return verdict
    if features.vis_type == "pie":
        return (
            2 <= features.n_rows <= 8
            and features.y_min >= 0
            and features.unique_ratio_x > 0.99
        )
    if features.vis_type in ("bar", "stacked bar"):
        # Bars need distinct categories on the x axis; repeated category
        # labels mean the query should have grouped instead.
        if features.vis_type == "bar" and features.unique_ratio_x < 0.9:
            return False
        return 2 <= features.n_distinct_x <= 30
    if features.vis_type in ("line", "grouping line"):
        return 3 <= features.n_distinct_x <= 120
    if features.vis_type in ("scatter", "grouping scatter"):
        return 5 <= features.n_rows <= 1500
    return True


class LogisticRegression:
    """Minimal L2-regularized logistic regression trained by Adam."""

    def __init__(self, dim: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(scale=0.01, size=dim)
        self.bias = 0.0

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(good chart) per row of *features*."""
        logits = features @ self.weights + self.bias
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 200,
        lr: float = 0.05,
        l2: float = 1e-4,
    ) -> List[float]:
        """Fit by Adam on the logistic loss; returns the loss curve."""
        losses = []
        m_w = np.zeros_like(self.weights)
        v_w = np.zeros_like(self.weights)
        m_b = v_b = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for step in range(1, epochs + 1):
            proba = self.predict_proba(features)
            error = proba - labels
            grad_w = features.T @ error / len(labels) + l2 * self.weights
            grad_b = float(error.mean())
            m_w = beta1 * m_w + (1 - beta1) * grad_w
            v_w = beta2 * v_w + (1 - beta2) * grad_w**2
            m_b = beta1 * m_b + (1 - beta1) * grad_b
            v_b = beta2 * v_b + (1 - beta2) * grad_b**2
            m_w_hat = m_w / (1 - beta1**step)
            v_w_hat = v_w / (1 - beta2**step)
            m_b_hat = m_b / (1 - beta1**step)
            v_b_hat = v_b / (1 - beta2**step)
            self.weights -= lr * m_w_hat / (np.sqrt(v_w_hat) + eps)
            self.bias -= lr * m_b_hat / (math.sqrt(v_b_hat) + eps)
            proba = np.clip(proba, 1e-9, 1 - 1e-9)
            loss = float(
                -(labels * np.log(proba) + (1 - labels) * np.log(1 - proba)).mean()
            )
            losses.append(loss)
        return losses


class DeepEyeFilter:
    """The two-stage good/bad chart filter M() of Section 2.4."""

    def __init__(self, model: Optional[LogisticRegression] = None):
        self.model = model

    def score(self, features: ChartFeatures) -> float:
        """Goodness score in [0, 1]; rule rejections score 0."""
        verdict = rule_verdict(features)
        if verdict is False:
            return 0.0
        if verdict is True:
            return 1.0
        if self.model is None:
            return 1.0 if teacher_label(features) else 0.0
        return float(self.model.predict_proba(features.to_vector()[None, :])[0])

    def score_batch(self, samples: Sequence[ChartFeatures]) -> np.ndarray:
        """Vectorized :meth:`score` over many charts.

        Rule verdicts short-circuit per chart; everything the rules leave
        undecided is stacked into one matrix and scored through a single
        ``predict_proba`` call.
        """
        scores = np.empty(len(samples), dtype=float)
        undecided: List[int] = []
        for index, features in enumerate(samples):
            verdict = rule_verdict(features)
            if verdict is False:
                scores[index] = 0.0
            elif verdict is True:
                scores[index] = 1.0
            elif self.model is None:
                scores[index] = 1.0 if teacher_label(features) else 0.0
            else:
                undecided.append(index)
        if undecided:
            matrix = np.stack([samples[i].to_vector() for i in undecided])
            scores[np.asarray(undecided)] = self.model.predict_proba(matrix)
        return scores

    def is_good(
        self,
        vis: VisQuery,
        database: Database,
        result: Optional[ResultTable] = None,
        threshold: float = 0.5,
    ) -> bool:
        features = extract_features(vis, database, result)
        if features is None:
            return False
        return self.score(features) >= threshold

    def fit(
        self,
        samples: Sequence[ChartFeatures],
        labels: Sequence[bool],
        seed: int = 0,
    ) -> List[float]:
        """Train the classifier stage on featurized charts."""
        matrix = np.stack([f.to_vector() for f in samples])
        target = np.asarray(labels, dtype=float)
        self.model = LogisticRegression(dim=matrix.shape[1], seed=seed)
        return self.model.fit(matrix, target)


def train_filter_from_candidates(
    candidates: Sequence[Tuple[VisQuery, Database]],
    seed: int = 0,
    cache: Optional[ExecutionCache] = None,
    profiler: Optional[BuildProfiler] = None,
) -> DeepEyeFilter:
    """Train a :class:`DeepEyeFilter` on candidate charts labelled by the
    teacher rules (the offline stand-in for DeepEye's labelled corpus).

    Executions go through *cache* when given, so the benchmark build's
    synthesis pass can reuse the filter-training pass's results.
    """
    samples: List[ChartFeatures] = []
    labels: List[bool] = []
    with stage(profiler, "filter_featurize"):
        for vis, database in candidates:
            features = extract_features(vis, database, cache=cache)
            if features is None:
                continue
            samples.append(features)
            labels.append(teacher_label(features))
    filter_model = DeepEyeFilter()
    if samples and len(set(labels)) > 1:
        with stage(profiler, "filter_fit"):
            filter_model.fit(samples, labels, seed=seed)
    return filter_model
