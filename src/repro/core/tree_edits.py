"""Tree edits: generating candidate VIS trees from one SQL tree.

Implements Section 2.3 of the paper:

* **Deletions** (∆⁻) operate only on Select and Order.  The select list
  is re-enumerated as all 1-, 2-, and 3-attribute combinations; Order is
  kept and dropped.  Filter, Superlative, and existing grouping subtrees
  stay untouched (they map directly to vis languages), so combinations
  that would orphan a Superlative or grouping attribute are skipped.
* **Insertions** (∆⁺) add grouping/binning (temporal columns bin by a
  configurable set of calendar units, numeric columns by equal-width
  bins), an aggregate on the measure axis when grouping demands one, the
  ``Visualize`` subtree itself (per the Table 1 rules), and optionally a
  sort on bar-family charts.

Every candidate carries a :class:`TreeEdit` record of its ∆ — the NL
edit stage replays these edits against the source NL question.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from repro.grammar.ast_nodes import (
    Attribute,
    Group,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    VisQuery,
)
from repro.grammar.errors import GrammarError
from repro.grammar.validate import ORDERABLE_VIS_TYPES, validate_query
from repro.core.vis_rules import (
    GROUP_BINNING,
    GROUP_GROUPING,
    GROUP_NONE,
    ChartSpec,
    arrange_axes,
    chart_specs_for,
)
from repro.storage.schema import Database


@dataclass(frozen=True)
class TreeEdit:
    """The ∆ between the SQL tree and one candidate VIS tree."""

    deleted_attrs: Tuple[Attribute, ...] = ()
    deleted_order: Optional[Order] = None
    added_groups: Tuple[Group, ...] = ()
    added_aggregate: Optional[str] = None
    added_count: bool = False
    added_vis: str = "bar"
    added_order: Optional[Order] = None

    @property
    def has_deletions(self) -> bool:
        """True when the edit removed Select attributes or the Order."""
        return bool(self.deleted_attrs) or self.deleted_order is not None


@dataclass(frozen=True)
class VisCandidate:
    """A candidate VIS tree plus its provenance."""

    vis: VisQuery
    edit: TreeEdit
    source: SQLQuery


@dataclass
class TreeEditConfig:
    """Knobs bounding the candidate enumeration."""

    #: aggregate functions tried on the measure axis when one is needed
    #: and the source attribute carries none
    aggregates: Tuple[str, ...] = ("sum", "avg")
    #: calendar units tried when binning a temporal x axis
    temporal_units: Tuple[str, ...] = ("year", "month", "weekday")
    #: add a sorted-by-measure variant for bar-family charts
    add_sorted_variants: bool = True
    #: hard cap on candidates per input query
    max_candidates: int = 40


def generate_candidates(
    query: SQLQuery,
    database: Database,
    config: Optional[TreeEditConfig] = None,
) -> List[VisCandidate]:
    """Enumerate candidate VIS trees for *query* against *database*."""
    config = config or TreeEditConfig()
    body = query.body
    if isinstance(body, SetQuery):
        candidates = _set_query_candidates(query, body, database, config)
    else:
        candidates = _core_candidates(query, body, database, config)
    deduped: dict = {}
    for candidate in candidates:
        deduped.setdefault(candidate.vis, candidate)
    out = list(deduped.values())[: config.max_candidates]
    for candidate in out:
        validate_query(candidate.vis)
    return out


# ----- set-operation queries ----------------------------------------------


def _set_query_candidates(
    query: SQLQuery,
    body: SetQuery,
    database: Database,
    config: TreeEditConfig,
) -> List[VisCandidate]:
    """VIS over a set operation: no deletions/insertions inside the
    branches — only a Visualize node on top, when the (shared) select
    signature already supports a group-free chart."""
    if len(body.left.select) != len(body.right.select):
        return []
    signature = [_attr_type(attr, database) for attr in body.left.select]
    candidates = []
    for spec in chart_specs_for(signature):
        if spec.x_group != GROUP_NONE or spec.needs_aggregate:
            continue
        if len(body.left.select) != spec.arity:
            continue
        vis = VisQuery(vis_type=spec.vis_type, body=body)
        candidates.append(
            VisCandidate(vis=vis, edit=TreeEdit(added_vis=spec.vis_type), source=query)
        )
    return candidates


# ----- single-core queries -------------------------------------------------


def _core_candidates(
    query: SQLQuery,
    core: QueryCore,
    database: Database,
    config: TreeEditConfig,
) -> List[VisCandidate]:
    original_attrs = list(dict.fromkeys(core.select))
    required = _required_attrs(core)
    candidates: List[VisCandidate] = []
    for subset in _attr_subsets(original_attrs, required):
        deleted = tuple(a for a in original_attrs if a not in subset)
        for order_kept in _order_variants(core):
            candidates.extend(
                _insertions_for(
                    query, core, subset, deleted, order_kept, database, config
                )
            )
    return candidates


def _required_attrs(core: QueryCore) -> List[Attribute]:
    """Attributes that deletions must keep: grouping columns (their
    subtrees are invariant) and the Superlative's target."""
    required = [group.attr.bare() for group in core.groups if group.kind == "grouping"]
    if core.superlative is not None:
        required.append(core.superlative.attr)
    return required


def _attr_subsets(
    attrs: List[Attribute], required: List[Attribute]
) -> List[Tuple[Attribute, ...]]:
    subsets: List[Tuple[Attribute, ...]] = []
    max_size = min(3, len(attrs))
    for size in range(1, max_size + 1):
        for combo in combinations(attrs, size):
            if all(_contains(combo, req) for req in required):
                subsets.append(combo)
    return subsets


def _contains(combo: Sequence[Attribute], required: Attribute) -> bool:
    return any(
        attr.qualified_name == required.qualified_name
        and (attr.agg == required.agg or required.agg is None)
        for attr in combo
    )


def _order_variants(core: QueryCore) -> List[Optional[Order]]:
    """Keep the original Order and also try the tree without it
    (Section 2.3: Order may not be needed for some visualizations)."""
    if core.order is None:
        return [None]
    return [core.order, None]


def _attr_type(attr: Attribute, database: Database) -> str:
    if attr.is_aggregated:
        return "Q"
    return database.column_type(attr.table, attr.column)


def _insertions_for(
    query: SQLQuery,
    core: QueryCore,
    subset: Tuple[Attribute, ...],
    deleted: Tuple[Attribute, ...],
    order_kept: Optional[Order],
    database: Database,
    config: TreeEditConfig,
) -> List[VisCandidate]:
    signature = [_attr_type(attr, database) for attr in subset]
    typed = list(zip(subset, signature))
    out: List[VisCandidate] = []
    for spec in chart_specs_for(signature):
        if spec.arity == 2 and len(subset) == 1 and not spec.count_measure:
            continue
        out.extend(
            _build_candidates(
                query, core, typed, deleted, order_kept, spec, database, config
            )
        )
    return out


def _build_candidates(
    query: SQLQuery,
    core: QueryCore,
    typed: List[Tuple[Attribute, str]],
    deleted: Tuple[Attribute, ...],
    order_kept: Optional[Order],
    spec: ChartSpec,
    database: Database,
    config: TreeEditConfig,
) -> List[VisCandidate]:
    if spec.count_measure:
        # One-variable specs: the single kept attribute is the x axis and
        # the measure is a synthesized COUNT(*).
        x_attr = typed[0][0]
        color_attr = None
        measures = [Attribute(column="*", table=x_attr.table, agg="count")]
        added_count = True
    else:
        axes = arrange_axes(typed, spec)
        x_attr = axes[0]
        color_attr = axes[2] if spec.arity == 3 else None
        y_attr = axes[1]
        added_count = False
        if spec.needs_aggregate and not y_attr.is_aggregated:
            measures = [replace(y_attr, agg=agg) for agg in config.aggregates]
        else:
            measures = [y_attr]
    # The x and color axes must be raw columns: an aggregate (notably
    # COUNT(*)) can only ever be the measure.
    if x_attr.is_aggregated or (color_attr is not None and color_attr.is_aggregated):
        return []

    group_variants = _group_variants(spec, x_attr, color_attr, core, database, config)

    out: List[VisCandidate] = []
    for measure in measures:
        for groups, added_groups in group_variants:
            select: Tuple[Attribute, ...] = (x_attr.bare(), measure)
            if color_attr is not None:
                select = select + (color_attr.bare(),)
            orders = _final_orders(spec, order_kept, select, measure, config)
            for order, added_order in orders:
                try:
                    vis_core = QueryCore(
                        select=select,
                        filter=core.filter,
                        groups=groups,
                        order=order,
                        superlative=_kept_superlative(core, select),
                    )
                    vis = VisQuery(vis_type=spec.vis_type, body=vis_core)
                    validate_query(vis)
                except (ValueError, GrammarError):
                    # The spec clashed with the invariant subtrees (e.g. a
                    # group-free chart over a query whose grouping must be
                    # kept) — not a valid candidate.
                    continue
                deleted_order = (
                    core.order
                    if core.order is not None and order != core.order
                    else None
                )
                edit = TreeEdit(
                    deleted_attrs=deleted,
                    deleted_order=deleted_order,
                    added_groups=added_groups,
                    added_aggregate=measure.agg if measure.agg and not added_count else None,
                    added_count=added_count,
                    added_vis=spec.vis_type,
                    added_order=added_order,
                )
                out.append(VisCandidate(vis=vis, edit=edit, source=query))
    return out


def _group_variants(
    spec: ChartSpec,
    x_attr: Attribute,
    color_attr: Optional[Attribute],
    core: QueryCore,
    database: Database,
    config: TreeEditConfig,
) -> List[Tuple[Tuple[Group, ...], Tuple[Group, ...]]]:
    """Enumerate (groups, added_groups) pairs for the candidate.

    Groups already present in the SQL tree are invariant and reused;
    anything beyond them counts as an insertion.
    """
    existing = {group.attr.qualified_name: group for group in core.groups}

    def x_groups() -> List[Tuple[Optional[Group], bool]]:
        if spec.x_group == GROUP_NONE:
            return [(None, False)]
        if x_attr.qualified_name in existing:
            return [(existing[x_attr.qualified_name], False)]
        if spec.x_group == GROUP_GROUPING:
            return [(Group(kind="grouping", attr=x_attr.bare()), True)]
        ctype = database.column_type(x_attr.table, x_attr.column)
        if ctype == "T":
            return [
                (Group(kind="binning", attr=x_attr.bare(), bin_unit=unit), True)
                for unit in config.temporal_units
            ]
        return [(Group(kind="binning", attr=x_attr.bare(), bin_unit="numeric"), True)]

    variants: List[Tuple[Tuple[Group, ...], Tuple[Group, ...]]] = []
    for x_group, x_added in x_groups():
        groups: List[Group] = []
        added: List[Group] = []
        if x_group is not None:
            groups.append(x_group)
            if x_added:
                added.append(x_group)
        if color_attr is not None and spec.color_group == GROUP_GROUPING:
            if color_attr.qualified_name in existing:
                color_group = existing[color_attr.qualified_name]
                groups.append(color_group)
            else:
                color_group = Group(kind="grouping", attr=color_attr.bare())
                groups.append(color_group)
                added.append(color_group)
        # Existing grouping subtrees are invariant — re-attach any that the
        # spec did not already place.  (QueryCore allows at most two; if
        # re-attaching overflows or clashes, candidate construction skips
        # this variant.)
        present = {group.attr.qualified_name for group in groups}
        for qualified, group in existing.items():
            if qualified not in present:
                groups.append(group)
        if len(groups) > 2:
            continue
        variants.append((tuple(groups), tuple(added)))
    return variants


def _final_orders(
    spec: ChartSpec,
    order_kept: Optional[Order],
    select: Tuple[Attribute, ...],
    measure: Attribute,
    config: TreeEditConfig,
) -> List[Tuple[Optional[Order], Optional[Order]]]:
    """(order, added_order) variants for the candidate."""
    orderable = spec.vis_type in ORDERABLE_VIS_TYPES
    variants: List[Tuple[Optional[Order], Optional[Order]]] = []
    if order_kept is not None and orderable and _contains(select, order_kept.attr):
        variants.append((order_kept, None))
    else:
        variants.append((None, None))
    if (
        config.add_sorted_variants
        and orderable
        and spec.needs_aggregate
        and spec.vis_type in ("bar", "stacked bar")
        and order_kept is None
    ):
        inserted = Order(direction="desc", attr=measure)
        variants.append((inserted, inserted))
    return variants


def _kept_superlative(core: QueryCore, select: Tuple[Attribute, ...]):
    if core.superlative is None:
        return None
    if _contains(select, core.superlative.attr):
        return core.superlative
    return None
