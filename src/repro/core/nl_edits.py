"""NL edits: rewriting the source NL question to match the tree edits.

Section 2.5 of the paper:

* **Insertions** use rule templates (collected from Ask Data / NL4DV /
  a binning user study) to splice chart-type, grouping, binning,
  aggregate, and ordering phrases into the NL, with both explicit
  ("draw a pie chart") and implicit ("show the proportion") phrasings.
* **Deletions** cannot be rewritten automatically in general — the paper
  has PhD students revise those by hand (~1 minute each).  Our corpus NL
  is clause-aligned, so the stand-in "manual" revision removes the
  deleted columns' mentions from the attribute listing; each such
  revision is flagged ``manually_edited`` and feeds the Figure 14
  man-hour accounting.
* Every produced variant may be smoothed with back-translation
  (:mod:`repro.core.backtranslation`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.backtranslation import smooth
from repro.core.tree_edits import TreeEdit
from repro.grammar.ast_nodes import Attribute, Group, Order, VisQuery


@dataclass(frozen=True)
class NLVariant:
    """One synthesized NL query for a VIS tree."""

    text: str
    manually_edited: bool
    back_translated: bool


#: Explicit chart-type phrasings (Ask Data / NL4DV style).
_VIS_PREFIXES = {
    "bar": (
        "Draw a bar chart about",
        "Visualize a bar chart for",
        "Show a bar graph of",
        "Plot a bar chart showing",
    ),
    "pie": (
        "Draw a pie chart about",
        "Visualize with a pie chart:",
        "Show a pie chart for",
        "Plot a pie graph of",
    ),
    "line": (
        "Draw a line chart about",
        "Visualize a line chart for",
        "Show a line graph of",
        "Plot a line chart showing",
    ),
    "scatter": (
        "Draw a scatter plot about",
        "Visualize a scatter chart for",
        "Show a scatter diagram of",
    ),
    "stacked bar": (
        "Draw a stacked bar chart about",
        "Visualize a stacked bar chart for",
        "Show a stacked bar graph of",
    ),
    "grouping line": (
        "Draw a multi-series line chart about",
        "Visualize a grouped line chart for",
        "Show a line chart with one line per group of",
    ),
    "grouping scatter": (
        "Draw a grouped scatter plot about",
        "Visualize a colored scatter chart for",
        "Show a scatter plot grouped by color of",
    ),
}

#: Implicit phrasings — no chart word, the intent implies the type.
_VIS_IMPLICIT = {
    "bar": ("Compare across categories:", "Give a visual comparison of"),
    "pie": ("Show the proportion of", "What fraction does each part take:"),
    "line": ("Show the trend of", "How does it change over time:"),
    "scatter": ("Show the relationship for", "Is there a correlation:"),
    "stacked bar": ("Compare the composition of", "Break down by group:"),
    "grouping line": ("Compare the trends of", "Show how each group evolves:"),
    "grouping scatter": ("Show the relationship per group for", "Compare correlations across groups:"),
}

_BIN_PHRASES = {
    "year": ("by year", "with a bin of one year", "yearly"),
    "quarter": ("by quarter", "in quarterly buckets", "quarter by quarter"),
    "month": ("by month", "with a bucket of one month", "monthly"),
    "weekday": ("by day of the week", "for each weekday"),
    "hour": ("by hour", "with hourly bins"),
    "minute": ("by minute", "with one-minute buckets"),
    "numeric": ("in equal-width bins", "binned into intervals", "as a histogram"),
}

_AGG_PHRASES = {
    "sum": "the total {col}",
    "avg": "the average {col}",
    "max": "the maximum {col}",
    "min": "the minimum {col}",
    "count": "how many there are",
}


def _phrase(name: str) -> str:
    return name.replace("_", " ")


def remove_column_mentions(nl: str, columns: Sequence[str]) -> str:
    """Remove mentions of deleted columns from an NL attribute listing.

    This is the stand-in for the paper's manual deletion revision; it
    handles the ``a, b and c`` listing shapes our corpus produces and
    cleans up leftover separators.
    """
    text = nl
    for column in columns:
        phrase = re.escape(_phrase(column))
        # ", col and" -> " and" ; ", col," -> "," ; "col and " -> "" ...
        patterns = (
            (rf",\s*{phrase}\s+and\b", " and"),
            (rf",\s*{phrase}\s*,", ","),
            (rf"\b{phrase}\s*,\s*", ""),
            (rf"\s+and\s+{phrase}\b", ""),
            (rf"\b{phrase}\s+and\s+", ""),
            (rf",\s*{phrase}\b", ""),
        )
        for pattern, replacement in patterns:
            new_text, count = re.subn(pattern, replacement, text, count=1, flags=re.IGNORECASE)
            if count:
                text = new_text
                break
    text = re.sub(r"\s{2,}", " ", text)
    text = re.sub(r"\s+([,.?])", r"\1", text)
    text = re.sub(r",\s*(and\b)", r" \1", text)
    return text.strip()


def _insertion_clauses(
    edit: TreeEdit, vis: VisQuery, rng: np.random.Generator
) -> List[str]:
    """Trailing clauses describing the inserted Group/Agg/Order nodes."""
    clauses: List[str] = []
    for group in edit.added_groups:
        col = _phrase(group.attr.column)
        if group.kind == "grouping":
            template = str(
                rng.choice(
                    [
                        f"for each {col}",
                        f"by each {col}",
                        f"grouped by {col}",
                        f"per {col}",
                    ]
                )
            )
        else:
            unit_phrase = str(rng.choice(_BIN_PHRASES[group.bin_unit]))
            template = str(
                rng.choice(
                    [
                        f"bin the {col} {unit_phrase}",
                        f"bucket {col} {unit_phrase}",
                        f"with {col} {unit_phrase}",
                    ]
                )
            )
        clauses.append(template)
    if edit.added_count:
        clauses.append(
            str(
                rng.choice(
                    [
                        "and count how many there are",
                        "showing the number of records",
                        "and show how many we have",
                    ]
                )
            )
        )
    elif edit.added_aggregate is not None:
        measure = vis.primary_core.select[1]
        agg_phrase = _AGG_PHRASES[edit.added_aggregate].format(
            col=_phrase(measure.column)
        )
        clauses.append(
            str(rng.choice([f"showing {agg_phrase}", f"and compute {agg_phrase}"]))
        )
    if edit.added_order is not None:
        clauses.append(_order_clause(edit.added_order, rng))
    return clauses


def _order_clause(order: Order, rng: np.random.Generator) -> str:
    col = _phrase(order.attr.column) if order.attr.column != "*" else "the total number"
    word = "ascending" if order.direction == "asc" else "descending"
    return str(
        rng.choice(
            [
                f"sort by {col} in {word} order",
                f"order the result by {col} {word}",
                f"and rank by {col} from "
                + ("low to high" if order.direction == "asc" else "high to low"),
            ]
        )
    )


def synthesize_nl_variants(
    source_nl: str,
    edit: TreeEdit,
    vis: VisQuery,
    rng: np.random.Generator,
    n_variants: Optional[int] = None,
    back_translate: bool = True,
) -> List[NLVariant]:
    """Produce NL variants for one VIS tree (Section 2.5).

    The number of variants defaults to 2-6 (nvBench averages ~3.7 per
    vis); roughly half are smoothed with back-translation.
    """
    if n_variants is None:
        n_variants = int(rng.integers(3, 8))
    deleted_columns = [
        attr.column for attr in edit.deleted_attrs if attr.column != "*"
    ]
    base = source_nl
    manually_edited = False
    if deleted_columns:
        revised = remove_column_mentions(base, deleted_columns)
        manually_edited = revised != base
        base = revised
    base_body = base.rstrip(" .?!")

    prefixes = list(_VIS_PREFIXES[vis.vis_type]) + list(_VIS_IMPLICIT[vis.vis_type])
    order = rng.permutation(len(prefixes))
    variants: List[NLVariant] = []
    seen = set()
    for index in range(n_variants * 2):
        prefix = prefixes[int(order[index % len(prefixes)])]
        clauses = _insertion_clauses(edit, vis, rng)
        body = base_body[0].lower() + base_body[1:] if base_body else base_body
        text = prefix + " " + body
        if clauses:
            text += ", " + ", ".join(clauses)
        text += "."
        # Section 2.5: *all* NL specifications are smoothed with
        # back-translation; the per-word coin flips inside ``smooth``
        # give each variant a different surface form.
        translated = back_translate
        if translated:
            text = smooth(text, rng)
        if text not in seen:
            seen.add(text)
            variants.append(
                NLVariant(
                    text=text,
                    manually_edited=manually_edited,
                    back_translated=translated,
                )
            )
        if len(variants) >= n_variants:
            break
    return variants
