"""Reproduction of "Synthesizing NL2VIS Benchmarks from NL2SQL Benchmarks"
(Luo et al., SIGMOD 2021).

The top-level package re-exports the main entry points; see ``README.md``
for a quickstart and ``DESIGN.md`` for the system inventory.

>>> from repro import NL2VISSynthesizer, build_nvbench, to_vega_lite
"""

from repro.core.nvbench import NVBench, NVBenchConfig, build_nvbench
from repro.core.synthesizer import NL2VISSynthesizer, SynthesizedPair
from repro.grammar import SQLQuery, VisQuery, from_tokens, to_text, to_tokens
from repro.spider.corpus import CorpusConfig, SpiderCorpus, build_spider_corpus
from repro.sqlparse import parse_sql, to_sql
from repro.storage import Column, Database, Executor, ForeignKey, Table
from repro.vis import render_data, to_echarts, to_vega_lite

__version__ = "1.0.0"

__all__ = [
    "Column",
    "CorpusConfig",
    "Database",
    "Executor",
    "ForeignKey",
    "NL2VISSynthesizer",
    "NVBench",
    "NVBenchConfig",
    "SQLQuery",
    "SpiderCorpus",
    "SynthesizedPair",
    "Table",
    "VisQuery",
    "__version__",
    "build_nvbench",
    "build_spider_corpus",
    "from_tokens",
    "parse_sql",
    "render_data",
    "to_echarts",
    "to_sql",
    "to_text",
    "to_tokens",
    "to_vega_lite",
]
