"""Corpus-trained word embeddings (the offline GloVe substitute).

The paper trains a GloVe model over its own corpus to initialize seq2vis.
GloVe factorizes a log co-occurrence matrix; the classic offline-friendly
equivalent is truncated SVD over the PPMI (positive pointwise mutual
information) co-occurrence matrix, which we implement here with numpy
only.  Vectors are L2-normalized so dot products are cosine similarities.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nlp.vocab import SPECIALS, Vocabulary


def train_embeddings(
    sentences: Sequence[Sequence[str]],
    vocab: Vocabulary,
    dim: int = 64,
    window: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Train embeddings for *vocab* from co-occurrences in *sentences*.

    Returns an array of shape ``(len(vocab), dim)``.  Special tokens and
    words absent from the corpus get small random vectors so downstream
    layers never see all-zero rows.
    """
    if dim < 1:
        raise ValueError("embedding dim must be positive")
    size = len(vocab)
    counts: Dict[tuple, float] = {}
    word_totals = np.zeros(size)
    for sentence in sentences:
        ids = [vocab.id_of(token) for token in sentence]
        for center_pos, center in enumerate(ids):
            lo = max(0, center_pos - window)
            hi = min(len(ids), center_pos + window + 1)
            for context_pos in range(lo, hi):
                if context_pos == center_pos:
                    continue
                context = ids[context_pos]
                # Harmonic distance weighting, as in GloVe.
                weight = 1.0 / abs(context_pos - center_pos)
                counts[(center, context)] = counts.get((center, context), 0.0) + weight
                word_totals[center] += weight

    total = word_totals.sum()
    rng = np.random.default_rng(seed)
    vectors = rng.normal(scale=0.1, size=(size, dim))
    if total <= 0 or not counts:
        return _normalize(vectors)

    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for (center, context), weight in counts.items():
        denominator = word_totals[center] * word_totals[context]
        if denominator <= 0:
            continue
        pmi = np.log((weight * total) / denominator)
        if pmi > 0:
            rows.append(center)
            cols.append(context)
            values.append(pmi)
    if not values:
        return _normalize(vectors)

    ppmi = np.zeros((size, size))
    ppmi[rows, cols] = values
    # Truncated SVD of the PPMI matrix; scale by sqrt of singular values
    # (the symmetric factorization, standard for PPMI-SVD embeddings).
    u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
    rank = min(dim, len(s))
    learned = u[:, :rank] * np.sqrt(s[:rank])
    seen = word_totals > 0
    vectors[seen, :rank] = learned[seen]
    for special in SPECIALS:
        index = vocab.id_of(special)
        vectors[index] = rng.normal(scale=0.1, size=dim)
    return _normalize(vectors)


def _normalize(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return vectors / norms


def nearest_neighbors(
    vectors: np.ndarray, vocab: Vocabulary, token: str, k: int = 5
) -> List[str]:
    """The *k* most cosine-similar vocabulary tokens to *token*."""
    index = vocab.id_of(token)
    sims = vectors @ vectors[index]
    order = np.argsort(-sims)
    out = []
    for candidate in order:
        if candidate == index:
            continue
        out.append(vocab.token_of(int(candidate)))
        if len(out) == k:
            break
    return out
