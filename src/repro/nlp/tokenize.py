"""Natural-language tokenization.

A regex word tokenizer: lowercases, splits punctuation, keeps numbers
(including decimals) as single tokens, and keeps snake_case identifiers
intact because Spider-style NL mentions column names verbatim.
"""

from __future__ import annotations

import re
from typing import List

_WORD_RE = re.compile(r"\d+\.\d+|\w+|[^\w\s]")


def tokenize_nl(text: str) -> List[str]:
    """Tokenize an NL query into lowercase tokens."""
    return _WORD_RE.findall(text.lower())


def detokenize(tokens: List[str]) -> str:
    """Join tokens back into readable text (punctuation hugs words)."""
    out: List[str] = []
    for token in tokens:
        if out and re.fullmatch(r"[^\w\s]", token) and token not in "(\"'":
            out[-1] += token
        else:
            out.append(token)
    return " ".join(out)
