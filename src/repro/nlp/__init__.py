"""NLP substrate: tokenization, vocabularies, BLEU, word embeddings.

These utilities back three parts of the reproduction: the Table 3 BLEU
diversity statistics, the GloVe-style embeddings that initialize seq2vis,
and the NL tokenization shared by the synthesizer and the model.
"""

from repro.nlp.bleu import bleu_score, pairwise_bleu
from repro.nlp.embeddings import train_embeddings
from repro.nlp.tokenize import tokenize_nl
from repro.nlp.vocab import Vocabulary

__all__ = [
    "Vocabulary",
    "bleu_score",
    "pairwise_bleu",
    "tokenize_nl",
    "train_embeddings",
]
