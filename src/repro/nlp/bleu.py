"""BLEU score (Papineni et al., 2002).

Used exactly as in the paper's Table 3: pairwise BLEU between the NL
variants of one VIS query measures their *syntactic diversity* — lower
is more diverse.  Implements modified n-gram precision with the standard
brevity penalty and +1 smoothing for short sentences (the NL queries are
one sentence long, so unsmoothed 4-gram precision would often be zero).
"""

from __future__ import annotations

import math
from collections import Counter
from itertools import combinations
from typing import List, Sequence


def _ngrams(tokens: Sequence[str], order: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1)
    )


def bleu_score(
    candidate: Sequence[str],
    reference: Sequence[str],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """BLEU of *candidate* against a single *reference* token sequence."""
    if not candidate or not reference:
        return 0.0
    log_precision_sum = 0.0
    for order in range(1, max_order + 1):
        cand = _ngrams(candidate, order)
        ref = _ngrams(reference, order)
        overlap = sum((cand & ref).values())
        total = max(sum(cand.values()), 1)
        if smooth:
            precision = (overlap + 1.0) / (total + 1.0)
        else:
            if overlap == 0:
                return 0.0
            precision = overlap / total
        log_precision_sum += math.log(precision)
    geo_mean = math.exp(log_precision_sum / max_order)
    ratio = len(candidate) / len(reference)
    brevity = 1.0 if ratio >= 1.0 else math.exp(1.0 - 1.0 / ratio)
    return brevity * geo_mean


def pairwise_bleu(sentences: List[Sequence[str]], max_order: int = 4) -> float:
    """Average BLEU over all ordered pairs of *sentences*.

    This is the Table 3 diversity metric: values near 0 mean the NL
    variants for one VIS share few n-grams (good diversity).  Returns 0.0
    when fewer than two sentences are given.
    """
    if len(sentences) < 2:
        return 0.0
    total = 0.0
    count = 0
    for left, right in combinations(range(len(sentences)), 2):
        total += bleu_score(sentences[left], sentences[right], max_order)
        total += bleu_score(sentences[right], sentences[left], max_order)
        count += 2
    return total / count
