"""Token vocabularies with special symbols for the seq2vis model."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

PAD = "<pad>"
UNK = "<unk>"
BOS = "<s>"
EOS = "</s>"

SPECIALS = (PAD, UNK, BOS, EOS)


class Vocabulary:
    """A frozen token ↔ id mapping with pad/unk/bos/eos specials."""

    def __init__(self, tokens: Iterable[str]):
        self._itos: List[str] = list(SPECIALS)
        seen = set(self._itos)
        for token in tokens:
            if token not in seen:
                seen.add(token)
                self._itos.append(token)
        self._stoi: Dict[str, int] = {t: i for i, t in enumerate(self._itos)}

    @classmethod
    def build(
        cls, sentences: Iterable[Sequence[str]], min_count: int = 1
    ) -> "Vocabulary":
        """Build from sentences, keeping tokens seen >= *min_count* times
        in descending frequency order (ties broken alphabetically for
        determinism)."""
        counts = Counter(token for sentence in sentences for token in sentence)
        kept = [t for t, c in counts.items() if c >= min_count]
        kept.sort(key=lambda t: (-counts[t], t))
        return cls(kept)

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    @property
    def pad_id(self) -> int:
        return self._stoi[PAD]

    @property
    def unk_id(self) -> int:
        return self._stoi[UNK]

    @property
    def bos_id(self) -> int:
        return self._stoi[BOS]

    @property
    def eos_id(self) -> int:
        return self._stoi[EOS]

    def id_of(self, token: str) -> int:
        """Token id, or the unk id for unknown tokens."""
        return self._stoi.get(token, self.unk_id)

    def token_of(self, index: int) -> str:
        """Token string for an id."""
        return self._itos[index]

    def encode(self, tokens: Sequence[str], add_bos: bool = False, add_eos: bool = False) -> List[int]:
        """Token strings → ids, optionally wrapped in BOS/EOS."""
        ids = [self.id_of(t) for t in tokens]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Sequence[int], strip_specials: bool = True) -> List[str]:
        """Ids → token strings, dropping specials by default."""
        tokens = [self.token_of(i) for i in ids]
        if strip_specials:
            tokens = [t for t in tokens if t not in SPECIALS]
        return tokens

    @property
    def tokens(self) -> List[str]:
        """All tokens in id order (a copy)."""
        return list(self._itos)
