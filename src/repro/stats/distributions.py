"""Figure 9: statistical profile of quantitative columns.

* goodness-of-fit of each Q column against the six reference families
  the paper tests — normal, log-normal, exponential, power-law, uniform,
  chi-square — via Kolmogorov-Smirnov tests with fitted parameters;
* skewness tiers (|skew| < 0.5 symmetric, < 1 moderately skewed, else
  highly skewed — the standard rule of thumb the paper follows);
* outlier fractions under the 1.5×IQR rule.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy import stats

from repro.spider.corpus import SpiderCorpus

DISTRIBUTIONS = ("normal", "lognormal", "exponential", "powerlaw", "uniform", "chi2")

#: Columns with fewer samples than this are not classified.
MIN_SAMPLES = 8
#: KS-test acceptance threshold.
P_THRESHOLD = 0.05


def fit_distribution(values: Sequence[float]) -> Optional[str]:
    """Best-fitting reference family for *values* (``None`` if no family
    passes the KS test — the paper's "not following any" bucket)."""
    data = np.asarray([v for v in values if v is not None], dtype=float)
    if len(data) < MIN_SAMPLES or np.std(data) == 0:
        return None
    candidates = []
    loc, scale = float(np.mean(data)), float(np.std(data, ddof=1))
    candidates.append(("normal", stats.kstest(data, "norm", args=(loc, scale))))
    if (data > 0).all():
        log_data = np.log(data)
        mu, sigma = float(np.mean(log_data)), float(np.std(log_data, ddof=1))
        if sigma > 0:
            candidates.append(
                ("lognormal", stats.kstest(data, "lognorm", args=(sigma, 0, np.exp(mu))))
            )
        shifted = data - data.min()
        mean_shift = shifted.mean()
        if mean_shift > 0:
            candidates.append(
                ("exponential", stats.kstest(data, "expon", args=(data.min(), mean_shift)))
            )
        if (data >= 1).all():
            # Pareto MLE for the shape parameter.
            minimum = data.min()
            alpha = len(data) / np.log(data / minimum).sum()
            candidates.append(
                ("powerlaw", stats.kstest(data, "pareto", args=(alpha, 0, minimum)))
            )
        chi_df = max(mean_shift, 1.0)
        candidates.append(("chi2", stats.kstest(data, "chi2", args=(chi_df,))))
    span = data.max() - data.min()
    if span > 0:
        candidates.append(
            ("uniform", stats.kstest(data, "uniform", args=(data.min(), span)))
        )
    passing = [
        (result.pvalue, name)
        for name, result in candidates
        if result.pvalue >= P_THRESHOLD
    ]
    if not passing:
        return None
    return max(passing)[1]


def skewness_class(values: Sequence[float]) -> Optional[str]:
    """'symmetric' / 'moderate' / 'high' per the |skew| rule of thumb."""
    data = np.asarray([v for v in values if v is not None], dtype=float)
    if len(data) < MIN_SAMPLES or np.std(data) == 0:
        return None
    skew = abs(float(stats.skew(data)))
    if skew < 0.5:
        return "symmetric"
    if skew < 1.0:
        return "moderate"
    return "high"


def outlier_fraction(values: Sequence[float]) -> Optional[float]:
    """Fraction of points beyond 1.5×IQR from the quartiles."""
    data = np.asarray([v for v in values if v is not None], dtype=float)
    if len(data) < MIN_SAMPLES:
        return None
    q1, q3 = np.percentile(data, [25, 75])
    iqr = q3 - q1
    low, high = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    return float(((data < low) | (data > high)).mean())


def quantitative_columns(corpus: SpiderCorpus) -> List[List[float]]:
    """All Q-column value vectors in the corpus."""
    out = []
    for db in corpus.databases.values():
        for table in db.tables.values():
            for column in table.columns:
                if column.ctype == "Q":
                    out.append(
                        [
                            v
                            for v in table.column_values(column.name)
                            if isinstance(v, (int, float))
                        ]
                    )
    return out


def corpus_distribution_profile(corpus: SpiderCorpus) -> Dict[str, Counter]:
    """Figure 9 (a)-(c) aggregated over every quantitative column."""
    fits: Counter = Counter()
    skews: Counter = Counter()
    outliers: Counter = Counter()
    for values in quantitative_columns(corpus):
        fit = fit_distribution(values)
        fits[fit if fit is not None else "none"] += 1
        skew = skewness_class(values)
        if skew is not None:
            skews[skew] += 1
        fraction = outlier_fraction(values)
        if fraction is not None:
            if fraction == 0:
                outliers["0%"] += 1
            elif fraction <= 0.01:
                outliers["0-1%"] += 1
            elif fraction <= 0.10:
                outliers["1-10%"] += 1
            else:
                outliers[">10%"] += 1
    return {"fits": fits, "skewness": skews, "outliers": outliers}
