"""Dataset statistics (paper Section 3.2).

* :mod:`dataset_stats` — Table 2 (coverage, columns/rows, type mix) and
  the Figure 8 column/row histograms.
* :mod:`distributions` — Figure 9: goodness-of-fit of quantitative
  columns against six reference distributions, skewness tiers, and
  outlier percentages (1.5×IQR rule).
* :mod:`nl_stats` — Table 3: per-vis-type pair counts, NL lengths, and
  pairwise BLEU diversity.
"""

from repro.stats.dataset_stats import (
    column_count_histogram,
    dataset_summary,
    row_count_histogram,
)
from repro.stats.distributions import (
    fit_distribution,
    outlier_fraction,
    skewness_class,
)
from repro.stats.nl_stats import nl_vis_table

__all__ = [
    "column_count_histogram",
    "dataset_summary",
    "fit_distribution",
    "nl_vis_table",
    "outlier_fraction",
    "row_count_histogram",
    "skewness_class",
]
