"""Table 3: NL/VIS pair statistics per vis type.

For each vis type: #vis, #(NL, VIS) pairs, pairs-per-vis, average /
max / min NL word counts, and average pairwise BLEU across the NL
variants of each vis (the diversity metric — lower is more diverse).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.core.nvbench import NVBench
from repro.nlp.bleu import pairwise_bleu
from repro.nlp.tokenize import tokenize_nl


@dataclass
class TypeRow:
    """One row of Table 3."""

    vis_type: str
    n_vis: int
    n_pairs: int
    pairs_per_vis: float
    avg_words: float
    max_words: int
    min_words: int
    avg_bleu: float


def nl_vis_table(bench: NVBench) -> List[TypeRow]:
    """Compute Table 3 rows, plus an 'all' summary row at the end."""
    by_vis: Dict[tuple, List[str]] = defaultdict(list)
    for pair in bench.pairs:
        by_vis[(pair.db_name, pair.vis)].append(pair.nl)

    by_type: Dict[str, List[List[str]]] = defaultdict(list)
    for (_, vis), nls in by_vis.items():
        by_type[vis.vis_type].append(nls)

    rows: List[TypeRow] = []
    for vis_type in sorted(by_type, key=lambda t: -sum(len(v) for v in by_type[t])):
        groups = by_type[vis_type]
        rows.append(_row(vis_type, groups))
    all_groups = [group for groups in by_type.values() for group in groups]
    rows.append(_row("all", all_groups))
    return rows


def _row(vis_type: str, groups: List[List[str]]) -> TypeRow:
    n_vis = len(groups)
    all_nls = [nl for group in groups for nl in group]
    word_counts = [len(tokenize_nl(nl)) for nl in all_nls]
    bleus = [
        pairwise_bleu([tokenize_nl(nl) for nl in group])
        for group in groups
        if len(group) >= 2
    ]
    return TypeRow(
        vis_type=vis_type,
        n_vis=n_vis,
        n_pairs=len(all_nls),
        pairs_per_vis=len(all_nls) / max(n_vis, 1),
        avg_words=sum(word_counts) / max(len(word_counts), 1),
        max_words=max(word_counts, default=0),
        min_words=min(word_counts, default=0),
        avg_bleu=sum(bleus) / max(len(bleus), 1),
    )
