"""Table 2 and Figure 8: benchmark dataset statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.spider.corpus import SpiderCorpus


@dataclass
class DatasetSummary:
    """The numbers Table 2 reports."""

    n_databases: int
    n_tables: int
    n_domains: int
    top_domains: List[Tuple[str, int]]
    n_columns: int
    avg_columns: float
    max_columns: int
    min_columns: int
    n_rows: int
    avg_rows: float
    max_rows: int
    min_rows: int
    column_type_counts: Dict[str, int]

    def column_type_fractions(self) -> Dict[str, float]:
        """C/T/Q shares of all columns."""
        total = max(sum(self.column_type_counts.values()), 1)
        return {k: v / total for k, v in self.column_type_counts.items()}


def dataset_summary(corpus: SpiderCorpus, top_k: int = 5) -> DatasetSummary:
    """Compute the Table 2 statistics for *corpus*."""
    tables = [
        (db.domain, table)
        for db in corpus.databases.values()
        for table in db.tables.values()
    ]
    domain_tables = Counter(domain for domain, _ in tables)
    column_counts = [len(table.columns) for _, table in tables]
    row_counts = [table.row_count for _, table in tables]
    type_counts: Counter = Counter()
    for _, table in tables:
        for column in table.columns:
            type_counts[column.ctype] += 1
    return DatasetSummary(
        n_databases=len(corpus.databases),
        n_tables=len(tables),
        n_domains=len({db.domain for db in corpus.databases.values()}),
        top_domains=domain_tables.most_common(top_k),
        n_columns=sum(column_counts),
        avg_columns=sum(column_counts) / max(len(column_counts), 1),
        max_columns=max(column_counts, default=0),
        min_columns=min(column_counts, default=0),
        n_rows=sum(row_counts),
        avg_rows=sum(row_counts) / max(len(row_counts), 1),
        max_rows=max(row_counts, default=0),
        min_rows=min(row_counts, default=0),
        column_type_counts=dict(type_counts),
    )


#: Figure 8(a) bucket edges for #columns per table.
COLUMN_BUCKETS = ((2, 3), (4, 5), (6, 7), (8, 10), (11, 10_000))
#: Figure 8(b) bucket edges for #rows per table.
ROW_BUCKETS = ((1, 5), (6, 20), (21, 100), (101, 500), (501, 2000), (2001, 10**9))


def _label(low: int, high: int) -> str:
    return f"{low}-{high}" if high < 10_000 else f"{low}+"


def _bucketize(values: Iterable[int], buckets) -> Dict[str, int]:
    out: Dict[str, int] = {_label(low, high): 0 for low, high in buckets}
    for value in values:
        for low, high in buckets:
            if low <= value <= high:
                out[_label(low, high)] += 1
                break
    return out


def column_count_histogram(corpus: SpiderCorpus) -> Dict[str, int]:
    """Figure 8(a): distribution of per-table column counts."""
    counts = [
        len(table.columns)
        for db in corpus.databases.values()
        for table in db.tables.values()
    ]
    return _bucketize(counts, COLUMN_BUCKETS)


def row_count_histogram(corpus: SpiderCorpus) -> Dict[str, int]:
    """Figure 8(b): distribution of per-table row counts."""
    counts = [
        table.row_count
        for db in corpus.databases.values()
        for table in db.tables.values()
    ]
    return _bucketize(counts, ROW_BUCKETS)
