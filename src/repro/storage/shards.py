"""On-disk shard format and build manifest for streamed benchmark builds.

A sharded benchmark is a directory (see ``docs/CORPUS.md``)::

    <dir>/
      manifest.json          build manifest: per-DB content keys + file hashes
      shards/<db>.jsonl      one (NL, VIS) pair per line, grammar-token form
      corpus/<db>.json       the database (schema + rows) and its (NL, SQL) pairs
      cache/journal.jsonl    persistent ExecutionCache journal (repro.storage.journal)

Every shard is **content-addressed**: the manifest maps each database to
a key hashed over everything that determines the shard's bytes (the
database's schema and data — or, in streamed-generation mode, the
corpus config and database index that deterministically produce them —
plus the tree-edit config, build parameters, and the chart filter's
training fingerprint).  An incremental rebuild recomputes keys, verifies
file hashes, and skips every clean shard; a killed build resumes from
the last committed manifest entry.  Files are written atomically
(temp + rename), so a shard either exists completely or not at all.

The shard format round-trips through the grammar serializer
(:func:`repro.grammar.serialize.to_tokens` / ``from_tokens``), so a
shard line is exactly one :class:`~repro.core.synthesizer.SynthesizedPair`
and the whole directory is a save/load representation of an
:class:`~repro.core.nvbench.NVBench`.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.storage.schema import Column, Database, ForeignKey, Table

#: Bump when the shard record layout or the key derivation changes; a
#: version mismatch makes every prior shard dirty instead of garbled.
FORMAT_VERSION = 1


# ----- canonical hashing ---------------------------------------------------


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def content_hash(payload: object) -> str:
    """SHA-256 over the canonical JSON form of *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def file_sha256(path: Path) -> str:
    """SHA-256 of a file's bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_text_atomic(path: Path, text: str) -> str:
    """Write *text* to *path* via temp-file + rename; returns the sha256.

    The rename is atomic on POSIX, so a killed build never leaves a
    half-written shard or manifest — the file either has the old
    content, the new content, or does not exist.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    data = text.encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return hashlib.sha256(data).hexdigest()


# ----- pair records --------------------------------------------------------


def pair_record(pair, index: int) -> dict:
    """One shard line for a synthesized pair; VIS in token form."""
    from repro.grammar.serialize import to_tokens

    return {
        "index": index,
        "nl": pair.nl,
        "vis_tokens": to_tokens(pair.vis),
        "db_name": pair.db_name,
        "hardness": pair.hardness.value,
        "source_nl": pair.source_nl,
        "source_sql": pair.source_sql,
        "manually_edited": pair.manually_edited,
        "back_translated": pair.back_translated,
    }


def pair_from_record(record: dict):
    """Rebuild a :class:`SynthesizedPair` from one shard line."""
    from repro.core.hardness import Hardness
    from repro.core.synthesizer import SynthesizedPair
    from repro.grammar.ast_nodes import VisQuery
    from repro.grammar.serialize import from_tokens

    vis = from_tokens(record["vis_tokens"])
    if not isinstance(vis, VisQuery):
        raise ShardError("stored tokens do not form a vis query")
    return SynthesizedPair(
        nl=record["nl"],
        vis=vis,
        db_name=record["db_name"],
        hardness=Hardness(record["hardness"]),
        source_nl=record["source_nl"],
        source_sql=record["source_sql"],
        manually_edited=record["manually_edited"],
        back_translated=record["back_translated"],
    )


# ----- database payloads ---------------------------------------------------


def database_payload(database: Database) -> dict:
    """The JSON form of one database (schema, rows, foreign keys)."""
    return {
        "name": database.name,
        "domain": database.domain,
        "tables": [
            {
                "name": table.name,
                "columns": [
                    {"name": c.name, "ctype": c.ctype} for c in table.columns
                ],
                "rows": [list(row) for row in table.rows],
            }
            for table in database.tables.values()
        ],
        "foreign_keys": [
            {
                "table": fk.table,
                "column": fk.column,
                "ref_table": fk.ref_table,
                "ref_column": fk.ref_column,
            }
            for fk in database.foreign_keys
        ],
    }


def database_from_payload(payload: dict) -> Database:
    """Inverse of :func:`database_payload`."""
    database = Database(name=payload["name"], domain=payload["domain"])
    for table_payload in payload["tables"]:
        table = Table(
            name=table_payload["name"],
            columns=tuple(
                Column(name=c["name"], ctype=c["ctype"])
                for c in table_payload["columns"]
            ),
        )
        table.extend([tuple(row) for row in table_payload["rows"]])
        database.add_table(table)
    database.foreign_keys = [
        ForeignKey(
            table=fk["table"],
            column=fk["column"],
            ref_table=fk["ref_table"],
            ref_column=fk["ref_column"],
        )
        for fk in payload["foreign_keys"]
    ]
    return database


class ShardError(RuntimeError):
    """Raised for unreadable or internally inconsistent shard files."""


# ----- the manifest --------------------------------------------------------


@dataclass
class ManifestEntry:
    """One database's committed shard: content key plus file hashes."""

    name: str
    key: str
    db_index: int
    shard_sha256: str
    corpus_sha256: str
    pairs: int
    input_pairs: int

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "ManifestEntry":
        return cls(**payload)


@dataclass
class BuildManifest:
    """The build's source of truth: which shards exist and their keys.

    The manifest is rewritten atomically after every committed shard, so
    its entry list is exactly the set of shards a resumed build may
    trust (subject to :meth:`ShardStore.entry_is_clean` re-verifying the
    file hashes — a truncated or garbled shard is detected there and
    rebuilt, never silently merged).
    """

    version: int = FORMAT_VERSION
    mode: str = "corpus"
    config_fingerprint: str = ""
    filter_fingerprint: str = ""
    entries: "OrderedDict[str, ManifestEntry]" = field(default_factory=OrderedDict)

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "mode": self.mode,
            "config_fingerprint": self.config_fingerprint,
            "filter_fingerprint": self.filter_fingerprint,
            "databases": [entry.to_json() for entry in self.entries.values()],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BuildManifest":
        manifest = cls(
            version=payload["version"],
            mode=payload["mode"],
            config_fingerprint=payload["config_fingerprint"],
            filter_fingerprint=payload["filter_fingerprint"],
        )
        for entry_payload in payload["databases"]:
            entry = ManifestEntry.from_json(entry_payload)
            manifest.entries[entry.name] = entry
        return manifest

    def compatible_with(self, other: "BuildManifest") -> bool:
        """Whether *other*'s shards may be reused by this build."""
        return (
            other.version == self.version
            and other.mode == self.mode
            and other.config_fingerprint == self.config_fingerprint
            and other.filter_fingerprint == self.filter_fingerprint
        )

    @property
    def total_pairs(self) -> int:
        return sum(entry.pairs for entry in self.entries.values())

    @property
    def total_input_pairs(self) -> int:
        return sum(entry.input_pairs for entry in self.entries.values())


# ----- the store -----------------------------------------------------------


class ShardStore:
    """Path layout and atomic I/O for one sharded benchmark directory."""

    def __init__(self, root: str):
        self.root = Path(root)

    # -- paths --

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def journal_path(self) -> Path:
        return self.root / "cache" / "journal.jsonl"

    def shard_path(self, db_name: str) -> Path:
        return self.root / "shards" / f"{db_name}.jsonl"

    def corpus_path(self, db_name: str) -> Path:
        return self.root / "corpus" / f"{db_name}.json"

    # -- shards --

    def write_shard(self, db_name: str, records: Sequence[dict]) -> str:
        """Write one shard atomically; returns its sha256."""
        text = "".join(canonical_json(record) + "\n" for record in records)
        return write_text_atomic(self.shard_path(db_name), text)

    def read_shard_records(self, db_name: str) -> List[dict]:
        """Parse one shard back into its record dicts."""
        path = self.shard_path(db_name)
        try:
            lines = path.read_text().splitlines()
        except OSError as exc:
            raise ShardError(f"cannot read shard {path}: {exc}") from exc
        records = []
        for number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ShardError(
                    f"corrupt shard {path} line {number}: {exc}"
                ) from exc
            records.append(record)
        return records

    def read_shard_pairs(self, db_name: str) -> list:
        """One shard as :class:`SynthesizedPair` objects."""
        return [pair_from_record(r) for r in self.read_shard_records(db_name)]

    # -- per-database corpus units --

    def write_corpus_unit(
        self, db_name: str, database: Database, input_pairs: Sequence[tuple]
    ) -> str:
        """Persist one database plus its (NL, SQL) pairs; returns sha256.

        *input_pairs* is a sequence of ``(nl, sql)`` strings — the parsed
        AST is rebuilt against the schema on load.
        """
        payload = {
            "database": database_payload(database),
            "pairs": [{"nl": nl, "sql": sql} for nl, sql in input_pairs],
        }
        return write_text_atomic(self.corpus_path(db_name), canonical_json(payload))

    def load_corpus_unit(self, db_name: str) -> Tuple[Database, list]:
        """Load one database and its re-parsed (NL, SQL) pairs."""
        from repro.spider.corpus import NLSQLPair
        from repro.sqlparse.parser import parse_sql

        path = self.corpus_path(db_name)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardError(f"cannot read corpus unit {path}: {exc}") from exc
        database = database_from_payload(payload["database"])
        pairs = [
            NLSQLPair(
                nl=item["nl"],
                sql=item["sql"],
                query=parse_sql(item["sql"], database),
                db_name=db_name,
            )
            for item in payload["pairs"]
        ]
        return database, pairs

    # -- manifest --

    def load_manifest(self) -> Optional[BuildManifest]:
        """The committed manifest, or ``None`` when missing/corrupt.

        A corrupt manifest is treated like an absent one — the build
        restarts from zero rather than trusting damaged state (the shard
        files themselves are still re-verified per entry, so nothing
        garbled is ever merged).
        """
        try:
            payload = json.loads(self.manifest_path.read_text())
            return BuildManifest.from_json(payload)
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None

    def save_manifest(self, manifest: BuildManifest) -> None:
        write_text_atomic(
            self.manifest_path, json.dumps(manifest.to_json(), indent=2)
        )

    def entry_is_clean(self, entry: ManifestEntry, key: str) -> bool:
        """Whether a committed shard may be reused for content key *key*.

        Requires the stored key to match *and* both on-disk files to
        hash to their recorded digests — a truncated or bit-flipped
        shard fails here and is rebuilt.
        """
        if entry.key != key:
            return False
        shard = self.shard_path(entry.name)
        corpus = self.corpus_path(entry.name)
        if not shard.is_file() or not corpus.is_file():
            return False
        return (
            file_sha256(shard) == entry.shard_sha256
            and file_sha256(corpus) == entry.corpus_sha256
        )


# ----- lazy, shard-backed views --------------------------------------------


class _ShardLRU:
    """Small LRU over decoded shards so lazy reads stay bounded-memory."""

    def __init__(self, store: ShardStore, capacity: int = 4):
        self.store = store
        self.capacity = max(1, capacity)
        self._cache: "OrderedDict[str, list]" = OrderedDict()

    def pairs(self, db_name: str) -> list:
        if db_name in self._cache:
            self._cache.move_to_end(db_name)
            return self._cache[db_name]
        pairs = self.store.read_shard_pairs(db_name)
        self._cache[db_name] = pairs
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return pairs


class ShardedPairs(Sequence):
    """A lazy ``Sequence[SynthesizedPair]`` over a shard directory.

    Lengths come from the manifest (no file is opened to answer
    ``len``); ``__getitem__`` maps a global position to (shard, offset)
    through precomputed prefix sums and decodes at most ``lru_size``
    shards at a time; ``__iter__`` streams shard by shard.  This is the
    backing sequence of a lazily loaded :class:`NVBench` — stats, eval,
    and training iterate it without the corpus ever being fully
    materialized.
    """

    def __init__(self, store: ShardStore, manifest: BuildManifest, lru_size: int = 4):
        self._store = store
        self._names: List[str] = list(manifest.entries)
        self._counts = [manifest.entries[name].pairs for name in self._names]
        self._offsets: List[int] = []
        total = 0
        for count in self._counts:
            self._offsets.append(total)
            total += count
        self._total = total
        self._lru = _ShardLRU(store, lru_size)

    def __len__(self) -> int:
        return self._total

    def __iter__(self) -> Iterator:
        for name in self._names:
            yield from self._lru.pairs(name)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(self._total))]
        if position < 0:
            position += self._total
        if not 0 <= position < self._total:
            raise IndexError(position)
        import bisect

        shard = bisect.bisect_right(self._offsets, position) - 1
        return self._lru.pairs(self._names[shard])[position - self._offsets[shard]]


class LazyCorpusUnits:
    """Shared loader/cache behind the lazy database map and pair list."""

    def __init__(self, store: ShardStore, manifest: BuildManifest, capacity: int = 4):
        self.store = store
        self.names: List[str] = list(manifest.entries)
        self.input_counts = {
            name: manifest.entries[name].input_pairs for name in self.names
        }
        self.capacity = max(1, capacity)
        self._cache: "OrderedDict[str, tuple]" = OrderedDict()

    def unit(self, db_name: str) -> Tuple[Database, list]:
        if db_name in self._cache:
            self._cache.move_to_end(db_name)
            return self._cache[db_name]
        unit = self.store.load_corpus_unit(db_name)
        self._cache[db_name] = unit
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return unit


class LazyDatabases(dict):
    """A ``name -> Database`` map that loads per-DB JSON on first access.

    Subclasses ``dict`` so everything that treats ``corpus.databases``
    as a plain mapping (iteration, ``len``, membership) works without
    touching the data; values load (and may later be evicted from the
    shared LRU, staying pinned here once requested) on ``[]`` access.
    """

    def __init__(self, units: LazyCorpusUnits):
        super().__init__()
        self._units = units
        for name in units.names:
            dict.__setitem__(self, name, None)

    def __getitem__(self, name: str) -> Database:
        value = dict.__getitem__(self, name)
        if value is None:
            value = self._units.unit(name)[0]
            dict.__setitem__(self, name, value)
        return value

    def get(self, name, default=None):
        try:
            return self[name]
        except KeyError:
            return default

    def values(self):
        return [self[name] for name in self]

    def items(self):
        return [(name, self[name]) for name in self]


class LazyInputPairs(Sequence):
    """Lazy ``Sequence[NLSQLPair]`` over the per-DB corpus units."""

    def __init__(self, units: LazyCorpusUnits):
        self._units = units
        self._offsets: List[int] = []
        total = 0
        for name in units.names:
            self._offsets.append(total)
            total += units.input_counts[name]
        self._total = total

    def __len__(self) -> int:
        return self._total

    def __iter__(self) -> Iterator:
        for name in self._units.names:
            yield from self._units.unit(name)[1]

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(self._total))]
        if position < 0:
            position += self._total
        if not 0 <= position < self._total:
            raise IndexError(position)
        import bisect

        unit = bisect.bisect_right(self._offsets, position) - 1
        name = self._units.names[unit]
        return self._units.unit(name)[1][position - self._offsets[unit]]
