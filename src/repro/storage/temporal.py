"""Temporal value parsing and calendar binning.

Temporal cell values are ISO strings; this module parses them and
implements the binning policy of Section 2.3: temporal columns bin by
minute, hour, day of the week, month, quarter, or year.
"""

from __future__ import annotations

from datetime import datetime
from typing import Optional

_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d",
    "%Y-%m",
    "%Y",
)

_WEEKDAYS = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


def parse_temporal(value: object) -> Optional[datetime]:
    """Parse a temporal cell into a ``datetime``; ``None`` if unparseable.

    Accepts ISO-ish strings at several granularities and bare integers
    (interpreted as years, a common pattern in Spider tables).
    """
    if value is None:
        return None
    if isinstance(value, datetime):
        return value
    if isinstance(value, int) and 1000 <= value <= 9999:
        return datetime(value, 1, 1)
    if isinstance(value, float) and value.is_integer() and 1000 <= value <= 9999:
        return datetime(int(value), 1, 1)
    text = str(value).strip()
    for fmt in _FORMATS:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    return None


def bin_temporal(value: object, unit: str) -> Optional[str]:
    """Map a temporal cell to its bin label for *unit*.

    Labels sort chronologically for trend units (year, quarter, month)
    and are calendar parts for cyclic units (weekday, hour, minute).
    Returns ``None`` for unparseable values (the row is dropped, matching
    SQL NULL-group semantics).
    """
    moment = parse_temporal(value)
    if moment is None:
        return None
    if unit == "year":
        return f"{moment.year:04d}"
    if unit == "quarter":
        quarter = (moment.month - 1) // 3 + 1
        return f"{moment.year:04d}-Q{quarter}"
    if unit == "month":
        return f"{moment.year:04d}-{moment.month:02d}"
    if unit == "weekday":
        return _WEEKDAYS[moment.weekday()]
    if unit == "hour":
        return f"{moment.hour:02d}:00"
    if unit == "minute":
        return f"{moment.hour:02d}:{moment.minute:02d}"
    raise ValueError(f"unknown temporal bin unit: {unit!r}")


def weekday_sort_key(label: str) -> int:
    """Sort key placing weekday labels in calendar order."""
    try:
        return _WEEKDAYS.index(label)
    except ValueError:
        return len(_WEEKDAYS)
