"""Schema objects: columns with C/T/Q types, tables, and databases.

The paper classifies every column as categorical (C), temporal (T), or
quantitative (Q) — Table 2 reports the type mix and the Table 1 chart
rules key off these types, so the type is a first-class schema property
here rather than something inferred at query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

COLUMN_TYPES: Tuple[str, ...] = ("C", "T", "Q")


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown table/column lookups."""


@dataclass(frozen=True)
class Column:
    """A typed column: ``ctype`` is C (categorical), T (temporal), or
    Q (quantitative)."""

    name: str
    ctype: str

    def __post_init__(self) -> None:
        if self.ctype not in COLUMN_TYPES:
            raise SchemaError(f"unknown column type: {self.ctype!r}")


@dataclass
class Table:
    """A named table with typed columns and row storage.

    Rows are tuples aligned with ``columns``; temporal values are ISO
    strings (``YYYY-MM-DD`` or ``YYYY-MM-DD HH:MM``), which keeps the
    corpus JSON-serializable.
    """

    name: str
    columns: Tuple[Column, ...]
    rows: List[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        self._index = {column.name: i for i, column in enumerate(self.columns)}

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in schema order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column_index(self, name: str) -> int:
        """Positional index of a column."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column_values(self, name: str) -> List[object]:
        """All cell values of one column."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def insert(self, row: Sequence[object]) -> None:
        """Append one row (arity-checked)."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"with {len(self.columns)} columns"
            )
        self.rows.append(tuple(row))

    def extend(self, rows: Sequence[Sequence[object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    @property
    def row_count(self) -> int:
        """Number of stored rows."""
        return len(self.rows)


@dataclass(frozen=True)
class ForeignKey:
    """``table.column`` references ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str


@dataclass
class Database:
    """A named collection of tables plus foreign keys and a domain label."""

    name: str
    tables: Dict[str, Table] = field(default_factory=dict)
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    domain: str = "general"

    def add_table(self, table: Table) -> None:
        """Register a table (names must be unique)."""
        if table.name in self.tables:
            raise SchemaError(f"duplicate table name: {table.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"database {self.name!r} has no table {name!r}"
            ) from None

    def column(self, table: str, column: str) -> Column:
        """Look up a column by table and name."""
        return self.table(table).column(column)

    def column_type(self, table: str, column: str) -> str:
        """C/T/Q type of a column ('*' counts as quantitative)."""
        if column == "*":
            return "Q"
        return self.column(table, column).ctype

    def iter_columns(self) -> Iterator[Tuple[str, Column]]:
        """Yield ``(table_name, column)`` for every column in the DB."""
        for table in self.tables.values():
            for column in table.columns:
                yield table.name, column

    def join_edges(self, left: str, right: str) -> List[ForeignKey]:
        """Foreign keys directly connecting two tables (either direction)."""
        edges = []
        for fk in self.foreign_keys:
            if {fk.table, fk.ref_table} == {left, right}:
                edges.append(fk)
        return edges

    def join_path(self, tables: Sequence[str]) -> List[ForeignKey]:
        """A set of foreign keys spanning *tables*, found by BFS over the
        FK graph; raises :class:`SchemaError` if the tables are not
        connected."""
        needed = list(dict.fromkeys(tables))
        for name in needed:
            self.table(name)
        if len(needed) <= 1:
            return []
        adjacency: Dict[str, List[ForeignKey]] = {}
        for fk in self.foreign_keys:
            adjacency.setdefault(fk.table, []).append(fk)
            adjacency.setdefault(fk.ref_table, []).append(fk)
        reached = {needed[0]}
        path: List[ForeignKey] = []
        frontier = [needed[0]]
        while frontier:
            current = frontier.pop()
            for fk in adjacency.get(current, []):
                other = fk.ref_table if fk.table == current else fk.table
                if other not in reached:
                    reached.add(other)
                    path.append(fk)
                    frontier.append(other)
        missing = [name for name in needed if name not in reached]
        if missing:
            raise SchemaError(
                f"tables {missing} are not FK-reachable from {needed[0]!r}"
            )
        return _prune_path(path, set(needed))

    @property
    def total_rows(self) -> int:
        """Sum of row counts across tables."""
        return sum(table.row_count for table in self.tables.values())

    @property
    def total_columns(self) -> int:
        """Sum of column counts across tables."""
        return sum(len(table.columns) for table in self.tables.values())


def _prune_path(path: List[ForeignKey], needed: set) -> List[ForeignKey]:
    """Drop FK edges whose removal keeps all needed tables connected."""
    pruned = list(path)
    changed = True
    while changed:
        changed = False
        for fk in list(pruned):
            rest = [edge for edge in pruned if edge is not fk]
            if _connects(rest, needed):
                pruned = rest
                changed = True
                break
    return pruned


def _connects(edges: List[ForeignKey], needed: set) -> bool:
    if len(needed) <= 1:
        return True
    nodes = set(needed)
    for edge in edges:
        nodes.add(edge.table)
        nodes.add(edge.ref_table)
    parent = {node: node for node in nodes}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for edge in edges:
        parent[find(edge.table)] = find(edge.ref_table)
    roots = {find(node) for node in needed}
    return len(roots) == 1
