"""In-memory relational substrate.

nvBench needs a database engine twice: the synthesizer executes candidate
VIS queries to extract the data features the DeepEye-style filter scores,
and the evaluation pipeline executes predicted vs gold queries to compute
*result matching accuracy*.  This package provides a small but complete
engine over the grammar of Figure 5: schemas with categorical/temporal/
quantitative column types, foreign-key joins, filters (including nested
subqueries), grouping and binning, aggregation, ordering, superlatives
(LIMIT), and set operations.
"""

from repro.storage.schema import Column, Database, ForeignKey, Table
from repro.storage.executor import ExecutionError, Executor, ResultTable
from repro.storage.temporal import bin_temporal, parse_temporal

__all__ = [
    "Column",
    "Database",
    "ExecutionError",
    "Executor",
    "ForeignKey",
    "ResultTable",
    "Table",
    "bin_temporal",
    "parse_temporal",
]
