"""Query executor for the unified AST over in-memory databases.

Supports everything the Figure 5 grammar can express: multi-table FK
joins, filter predicates (including nested subqueries), grouping and
binning with aggregation, ORDER BY, superlatives (LIMIT), and the three
set operations.  Results come back as a :class:`ResultTable` whose column
order follows the select list — the VIS backends map columns to axes
positionally.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Predicate,
    QueryCore,
    SetQuery,
    SQLQuery,
    SubqueryComparison,
    VisQuery,
)
from repro.storage.schema import Database, SchemaError
from repro.storage.temporal import bin_temporal, weekday_sort_key


class ExecutionError(RuntimeError):
    """Raised when a structurally valid query cannot run on the data."""


class ExecutionCache:
    """Memoizes :meth:`Executor.execute` results across queries.

    Keys are ``(db_name, canonical query-body tokens)`` — the ``Visualize``
    subtree is stripped, so a bar and a pie chart over the same query body
    share one execution.  Failures are cached too (negative caching), so a
    query that cannot run is attempted once per corpus, not once per
    candidate.  Cached :class:`ResultTable` objects are shared between
    callers and must be treated as read-only.

    All mutating operations take an internal lock, so one cache can be
    shared by the inference server's batch-executor threads.
    """

    _OK, _ERR = "ok", "err"

    def __init__(self):
        self._entries: Dict[tuple, Tuple[str, object]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(db_name: str, query: Union[SQLQuery, VisQuery]) -> tuple:
        """The canonical cache key for *query* over database *db_name*."""
        from repro.grammar.serialize import to_tokens

        tokens = to_tokens(query)
        if isinstance(query, VisQuery):
            tokens = tokens[2:]  # drop "visualize <type>": same data either way
        return (db_name, tuple(tokens))

    def __len__(self) -> int:
        return len(self._entries)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot cross process boundaries
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters plus the derived hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "hit_rate": self.hits / total if total else 0.0,
            }

    def counts(self) -> Tuple[int, int]:
        """A consistent ``(hits, misses)`` snapshot.

        Cheaper than :meth:`stats` for hot-path span attributes — the
        build and serve tracers stamp these onto their spans.
        """
        with self._lock:
            return self.hits, self.misses

    def fetch(self, key: tuple) -> Optional[Tuple[str, object]]:
        """The raw cached entry for *key*, counting a hit when present."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
            return entry

    def store_result(self, key: tuple, result: "ResultTable") -> None:
        """Cache a successful execution; counts one miss."""
        with self._lock:
            self.misses += 1
            self._entries[key] = (self._OK, result)

    def store_error(self, key: tuple, message: str) -> None:
        """Cache a failed execution; counts one miss."""
        with self._lock:
            self.misses += 1
            self._entries[key] = (self._ERR, message)


@dataclass
class ResultTable:
    """Execution output: labelled columns and rows in select order."""

    columns: List[str]
    rows: List[tuple]

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def column_values(self, index: int) -> List[object]:
        """All values of one result column."""
        return [row[index] for row in self.rows]

    def canonical(self) -> Tuple[Tuple[str, ...], Tuple[tuple, ...]]:
        """Order-insensitive canonical form used by result matching."""
        return tuple(self.columns), tuple(
            sorted(self.rows, key=lambda row: tuple(map(_sort_key, row)))
        )


@dataclass
class _Frame:
    """A working relation: cell access by qualified column name."""

    columns: Dict[str, int] = field(default_factory=dict)
    rows: List[tuple] = field(default_factory=list)

    def value(self, row: tuple, qualified: str) -> object:
        try:
            return row[self.columns[qualified]]
        except KeyError:
            raise ExecutionError(f"unknown column {qualified!r}") from None


_MISSING_BIN = object()


class Executor:
    """Executes AST queries against one :class:`Database`.

    An optional :class:`ExecutionCache` memoizes whole-query results (and
    failures) keyed on the canonical query body, shared across Executor
    instances over the same cache.
    """

    def __init__(self, database: Database, cache: Optional[ExecutionCache] = None):
        self.database = database
        self.cache = cache

    def execute(self, query: Union[SQLQuery, VisQuery]) -> ResultTable:
        """Run *query* and return its result table."""
        if self.cache is None:
            return self._execute(query)
        key = ExecutionCache.key_of(self.database.name, query)
        entry = self.cache.fetch(key)
        if entry is not None:
            kind, payload = entry
            if kind == ExecutionCache._ERR:
                raise ExecutionError(payload)
            return payload
        try:
            result = self._execute(query)
        except ExecutionError as exc:
            self.cache.store_error(key, str(exc))
            raise
        self.cache.store_result(key, result)
        return result

    def _execute(self, query: Union[SQLQuery, VisQuery]) -> ResultTable:
        body = query.body
        if isinstance(body, SetQuery):
            left = self.execute_core(body.left)
            right = self.execute_core(body.right)
            return _apply_set_op(body.op, left, right)
        return self.execute_core(body)

    def execute_core(self, core: QueryCore) -> ResultTable:
        """Run one query core: join, filter, group, order, project."""
        frame = self._build_frame(core)
        rows = frame.rows
        where_pred, having_pred = _split_filter(core)
        if where_pred is not None:
            rows = [
                row for row in rows if self._eval_predicate(where_pred, frame, row)
            ]
        sort_orders: Dict[str, Dict[str, float]] = {}
        if core.groups or any(attr.is_aggregated for attr in core.select):
            out_rows = self._aggregate(core, frame, rows, sort_orders, having_pred)
        else:
            if having_pred is not None:
                raise ExecutionError(
                    "aggregated filter requires grouping or aggregated select"
                )
            out_rows = [
                tuple(frame.value(row, attr.qualified_name) for attr in core.select)
                for row in rows
            ]
        columns = [str(attr) for attr in core.select]
        out_rows = self._order_rows(core, columns, out_rows, sort_orders)
        return ResultTable(columns=columns, rows=out_rows)

    # ----- join stage -------------------------------------------------

    def _build_frame(self, core: QueryCore) -> _Frame:
        tables = list(core.tables)
        if not tables:
            raise ExecutionError("query references no tables")
        try:
            fk_path = self.database.join_path(tables)
        except SchemaError as exc:
            raise ExecutionError(str(exc)) from exc
        join_tables = list(
            dict.fromkeys(
                tables + [fk.table for fk in fk_path] + [fk.ref_table for fk in fk_path]
            )
        )
        frame = self._table_frame(join_tables[0])
        joined = {join_tables[0]}
        pending = list(fk_path)
        while pending:
            progressed = False
            for fk in list(pending):
                if fk.table in joined and fk.ref_table not in joined:
                    frame = self._hash_join(
                        frame,
                        self._table_frame(fk.ref_table),
                        f"{fk.table}.{fk.column}",
                        f"{fk.ref_table}.{fk.ref_column}",
                    )
                    joined.add(fk.ref_table)
                elif fk.ref_table in joined and fk.table not in joined:
                    frame = self._hash_join(
                        frame,
                        self._table_frame(fk.table),
                        f"{fk.ref_table}.{fk.ref_column}",
                        f"{fk.table}.{fk.column}",
                    )
                    joined.add(fk.table)
                else:
                    continue
                pending.remove(fk)
                progressed = True
            if not progressed:
                raise ExecutionError(
                    f"could not order join path over tables {join_tables}"
                )
        return frame

    def _table_frame(self, table_name: str) -> _Frame:
        table = self.database.table(table_name)
        columns = {
            f"{table_name}.{name}": index
            for index, name in enumerate(table.column_names)
        }
        return _Frame(columns=columns, rows=list(table.rows))

    @staticmethod
    def _hash_join(left: _Frame, right: _Frame, left_key: str, right_key: str) -> _Frame:
        bucket: Dict[object, List[tuple]] = {}
        right_index = right.columns[right_key]
        for row in right.rows:
            bucket.setdefault(row[right_index], []).append(row)
        columns = dict(left.columns)
        offset = len(left.columns)
        for name, index in right.columns.items():
            columns[name] = offset + index
        left_index = left.columns[left_key]
        rows = [
            left_row + right_row
            for left_row in left.rows
            for right_row in bucket.get(left_row[left_index], ())
        ]
        return _Frame(columns=columns, rows=rows)

    # ----- filter stage -----------------------------------------------

    def _eval_predicate(self, pred: Predicate, frame: _Frame, row: tuple) -> bool:
        if isinstance(pred, LogicalPredicate):
            left = self._eval_predicate(pred.left, frame, row)
            if pred.op == "and":
                return left and self._eval_predicate(pred.right, frame, row)
            return left or self._eval_predicate(pred.right, frame, row)
        if isinstance(pred, Comparison):
            return _compare(
                pred.op, frame.value(row, pred.attr.qualified_name), pred.value
            )
        if isinstance(pred, SubqueryComparison):
            scalar = self._scalar_subquery(pred.query)
            if scalar is None:
                return False
            return _compare(
                pred.op, frame.value(row, pred.attr.qualified_name), scalar
            )
        if isinstance(pred, Between):
            value = frame.value(row, pred.attr.qualified_name)
            return _compare(">=", value, pred.low) and _compare("<=", value, pred.high)
        if isinstance(pred, Like):
            value = frame.value(row, pred.attr.qualified_name)
            matched = value is not None and _like_match(str(value), pred.pattern)
            return matched != pred.negated
        if isinstance(pred, InSubquery):
            values = self._column_subquery(pred.query)
            value = frame.value(row, pred.attr.qualified_name)
            return (value in values) != pred.negated
        raise ExecutionError(f"unknown predicate node: {type(pred)!r}")

    def _eval_having(
        self, pred: Predicate, frame: _Frame, members: List[tuple]
    ) -> bool:
        """Evaluate a HAVING-style predicate over one group's member rows.

        Aggregated attributes are computed over the group; bare attributes
        are read from the group's first row (they are grouping columns).
        """
        if isinstance(pred, LogicalPredicate):
            left = self._eval_having(pred.left, frame, members)
            if pred.op == "and":
                return left and self._eval_having(pred.right, frame, members)
            return left or self._eval_having(pred.right, frame, members)
        if isinstance(pred, Comparison):
            return _compare(pred.op, self._having_value(pred.attr, frame, members), pred.value)
        if isinstance(pred, SubqueryComparison):
            scalar = self._scalar_subquery(pred.query)
            if scalar is None:
                return False
            return _compare(pred.op, self._having_value(pred.attr, frame, members), scalar)
        if isinstance(pred, Between):
            value = self._having_value(pred.attr, frame, members)
            return _compare(">=", value, pred.low) and _compare("<=", value, pred.high)
        if not members:
            return False
        return self._eval_predicate(pred, frame, members[0])

    def _having_value(
        self, attr: Attribute, frame: _Frame, members: List[tuple]
    ) -> object:
        if attr.is_aggregated:
            return self._aggregate_attr(attr, frame, members)
        if not members:
            return None
        return frame.value(members[0], attr.qualified_name)

    def _scalar_subquery(self, core: QueryCore) -> object:
        result = self.execute_core(core)
        if not result.rows:
            return None
        return result.rows[0][0]

    def _column_subquery(self, core: QueryCore) -> set:
        result = self.execute_core(core)
        return {row[0] for row in result.rows}

    # ----- group/aggregate stage ----------------------------------------

    def _aggregate(
        self,
        core: QueryCore,
        frame: _Frame,
        rows: List[tuple],
        sort_orders: Dict[str, Dict[str, float]],
        having_pred: Optional[Predicate] = None,
    ) -> List[tuple]:
        keyers = [
            self._group_keyer(group, frame, rows, sort_orders) for group in core.groups
        ]
        group_labels = {
            group.attr.qualified_name: keyer
            for group, keyer in zip(core.groups, keyers)
        }
        grouped: Dict[tuple, List[tuple]] = {}
        for row in rows:
            key = tuple(keyer(row) for keyer in keyers)
            if any(part is _MISSING_BIN for part in key):
                continue
            grouped.setdefault(key, []).append(row)
        if not core.groups:
            grouped = {(): rows}
        out_rows = []
        for key, members in grouped.items():
            if having_pred is not None and not self._eval_having(
                having_pred, frame, members
            ):
                continue
            out_row = []
            for attr in core.select:
                if attr.is_aggregated:
                    out_row.append(self._aggregate_attr(attr, frame, members))
                elif attr.qualified_name in group_labels:
                    out_row.append(group_labels[attr.qualified_name](members[0]))
                elif members:
                    out_row.append(frame.value(members[0], attr.qualified_name))
                else:
                    out_row.append(None)
            out_rows.append(tuple(out_row))
        if not core.groups and not rows and all(
            attr.agg == "count" for attr in core.select
        ):
            return [(0,) * len(core.select)]
        return out_rows

    def _group_keyer(
        self,
        group: Group,
        frame: _Frame,
        rows: List[tuple],
        sort_orders: Dict[str, Dict[str, float]],
    ):
        qualified = group.attr.qualified_name
        if group.kind == "grouping":
            return lambda row: frame.value(row, qualified)
        ctype = self.database.column_type(group.attr.table, group.attr.column)
        if group.bin_unit == "numeric" or ctype == "Q":
            return self._numeric_bin_keyer(group, frame, rows, sort_orders)
        order: Dict[str, float] = {}
        sort_orders[qualified] = order

        def keyer(row: tuple) -> object:
            label = bin_temporal(frame.value(row, qualified), group.bin_unit)
            if label is None:
                return _MISSING_BIN
            if group.bin_unit == "weekday":
                order[label] = weekday_sort_key(label)
            else:
                order.setdefault(label, len(order))
            return label

        return keyer

    def _numeric_bin_keyer(
        self,
        group: Group,
        frame: _Frame,
        rows: List[tuple],
        sort_orders: Dict[str, Dict[str, float]],
    ):
        qualified = group.attr.qualified_name
        values = [
            frame.value(row, qualified)
            for row in rows
            if isinstance(frame.value(row, qualified), (int, float))
        ]
        order: Dict[str, float] = {}
        sort_orders[qualified] = order
        if not values:
            return lambda row: _MISSING_BIN
        low, high = min(values), max(values)
        # Paper convention: binSize = ceil((max - min) / #bins), default 10.
        span = high - low
        size = math.ceil(span / group.bin_count) if span > 0 else 1

        def keyer(row: tuple) -> object:
            value = frame.value(row, qualified)
            if not isinstance(value, (int, float)):
                return _MISSING_BIN
            slot = min(int((value - low) // size), group.bin_count - 1)
            lo = low + slot * size
            label = f"[{_format_number(lo)}, {_format_number(lo + size)})"
            order[label] = lo
            return label

        return keyer

    def _aggregate_attr(
        self, attr: Attribute, frame: _Frame, members: List[tuple]
    ) -> object:
        if attr.agg == "count":
            if attr.column == "*":
                return len(members)
            return sum(
                1
                for row in members
                if frame.value(row, attr.qualified_name) is not None
            )
        values = [
            frame.value(row, attr.qualified_name)
            for row in members
            if frame.value(row, attr.qualified_name) is not None
        ]
        if not values:
            return None
        if attr.agg == "sum":
            return _numeric_sum(values)
        if attr.agg == "avg":
            total = _numeric_sum(values)
            return total / len(values) if total is not None else None
        if attr.agg == "max":
            return max(values, key=_sort_key)
        if attr.agg == "min":
            return min(values, key=_sort_key)
        raise ExecutionError(f"unknown aggregate: {attr.agg!r}")

    # ----- order/limit stage --------------------------------------------

    def _order_rows(
        self,
        core: QueryCore,
        columns: List[str],
        rows: List[tuple],
        sort_orders: Dict[str, Dict[str, float]],
    ) -> List[tuple]:
        if core.order is not None:
            index = _find_sort_column(core.order.attr, core.select, columns)
            key = _column_sort_key(index, sort_orders.get(core.order.attr.qualified_name))
            rows = sorted(rows, key=key, reverse=core.order.direction == "desc")
        if core.superlative is not None:
            sup = core.superlative
            index = _find_sort_column(sup.attr, core.select, columns)
            key = _column_sort_key(index, sort_orders.get(sup.attr.qualified_name))
            rows = sorted(rows, key=key, reverse=sup.kind == "most")[: sup.k]
        return rows


# ----- helpers -----------------------------------------------------------


def _split_filter(core: QueryCore):
    """Split the filter's top-level AND chain into (where, having) parts.

    Any conjunct mentioning an aggregated attribute is a HAVING condition
    and is evaluated per group after aggregation; the rest is a WHERE
    condition evaluated per input row.
    """
    if core.filter is None:
        return None, None
    conjuncts = _and_chain(core.filter.root)
    where = [p for p in conjuncts if not _mentions_aggregate(p)]
    having = [p for p in conjuncts if _mentions_aggregate(p)]
    return _rejoin(where), _rejoin(having)


def _and_chain(pred: Predicate) -> List[Predicate]:
    if isinstance(pred, LogicalPredicate) and pred.op == "and":
        return _and_chain(pred.left) + _and_chain(pred.right)
    return [pred]


def _mentions_aggregate(pred: Predicate) -> bool:
    return any(attr.is_aggregated for attr in pred.attributes())


def _rejoin(preds: List[Predicate]) -> Optional[Predicate]:
    if not preds:
        return None
    joined = preds[0]
    for pred in preds[1:]:
        joined = LogicalPredicate(op="and", left=joined, right=pred)
    return joined


def _apply_set_op(op: str, left: ResultTable, right: ResultTable) -> ResultTable:
    if len(left.columns) != len(right.columns):
        raise ExecutionError("set-operation branches have different arities")
    left_rows = list(dict.fromkeys(left.rows))
    right_set = set(right.rows)
    if op == "union":
        rows = left_rows + [
            row for row in dict.fromkeys(right.rows) if row not in set(left.rows)
        ]
    elif op == "intersect":
        rows = [row for row in left_rows if row in right_set]
    elif op == "except":
        rows = [row for row in left_rows if row not in right_set]
    else:
        raise ExecutionError(f"unknown set operator: {op!r}")
    return ResultTable(columns=left.columns, rows=rows)


def _find_sort_column(
    attr: Attribute, select: Tuple[Attribute, ...], columns: List[str]
) -> int:
    for index, sel in enumerate(select):
        if sel == attr:
            return index
    for index, sel in enumerate(select):
        if sel.qualified_name == attr.qualified_name:
            return index
    raise ExecutionError(
        f"order attribute {attr} is not part of the select list {columns}"
    )


def _column_sort_key(index: int, order: Optional[Dict[str, float]]):
    if order:
        return lambda row: (
            _sort_key(order.get(row[index], row[index]))
            if isinstance(row[index], str)
            else _sort_key(row[index])
        )
    return lambda row: _sort_key(row[index])


def _sort_key(value: object) -> tuple:
    """Total order over heterogeneous cells: None, numbers, then strings."""
    if value is None:
        return (2, 0.0, "")
    if isinstance(value, bool):
        return (0, float(value), "")
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def _numeric_sum(values: Sequence[object]) -> Optional[float]:
    total = 0.0
    integral = True
    for value in values:
        if not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot sum non-numeric value {value!r}")
        if isinstance(value, float):
            integral = False
        total += value
    return int(total) if integral else total


def _compare(op: str, left: object, right: object) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, (int, float)) != isinstance(right, (int, float)):
        # Comparing a number against a string: fall back to text equality
        # semantics only for =/!=, as real engines would reject the rest.
        if op == "=":
            return str(left) == str(right)
        if op == "!=":
            return str(left) != str(right)
        return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == ">":
        return left > right
    if op == "<":
        return left < right
    if op == ">=":
        return left >= right
    if op == "<=":
        return left <= right
    raise ExecutionError(f"unknown comparison operator: {op!r}")


def _like_match(value: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value, flags=re.IGNORECASE) is not None


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"
