"""Cross-run persistent backing store for :class:`ExecutionCache`.

The journal is an **append-only JSONL file**: one line per cached
execution, carrying the cache key (database name + canonical query-body
tokens) and either the result table or the cached error.  Each line ends
with a short checksum over its own payload, so the loader is
corruption-tolerant by construction:

* a line that does not parse as JSON (e.g. a partial write from a killed
  build) is dropped;
* a line whose checksum does not match (bit rot, manual edits) is
  dropped;
* everything before and after a bad line still loads — corrupt entries
  are **skipped and counted**, never silently merged into the cache.

Dropping an entry is always safe: the cache is a pure memoization layer
and a dropped entry simply re-executes (``tests/test_build_parallel.py``
asserts cached and uncached builds are identical).

:class:`PersistentExecutionCache` wires the journal under the normal
:class:`ExecutionCache` interface so filter training and synthesis share
one store *across builds*: entries appended by one run are preloaded by
the next, and the streamed build flushes new entries after every
committed shard.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.executor import ExecutionCache, ResultTable


def _checksum(body: str) -> str:
    """Short content checksum guarding one journal line."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


def encode_entry(key: tuple, kind: str, payload: object) -> str:
    """One journal line (with trailing newline) for a cache entry."""
    record = {"db": key[0], "tokens": list(key[1]), "kind": kind}
    if kind == ExecutionCache._OK:
        record["columns"] = list(payload.columns)
        record["rows"] = [list(row) for row in payload.rows]
    else:
        record["error"] = str(payload)
    body = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
    return json.dumps({"body": record, "h": _checksum(body)},
                      sort_keys=True, separators=(",", ":"), default=str) + "\n"


def decode_entry(line: str) -> Optional[Tuple[tuple, Tuple[str, object]]]:
    """Parse one journal line; ``None`` for corrupt/garbled lines."""
    try:
        wrapper = json.loads(line)
        record = wrapper["body"]
        body = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=str)
        if wrapper["h"] != _checksum(body):
            return None
        key = (record["db"], tuple(record["tokens"]))
        if record["kind"] == ExecutionCache._OK:
            result = ResultTable(
                columns=list(record["columns"]),
                rows=[tuple(row) for row in record["rows"]],
            )
            return key, (ExecutionCache._OK, result)
        return key, (ExecutionCache._ERR, record["error"])
    except (json.JSONDecodeError, KeyError, TypeError, IndexError):
        return None


def load_journal(path: Path) -> Tuple[Dict[tuple, Tuple[str, object]], int]:
    """Load a journal file → ``(entries, corrupt_line_count)``.

    A missing file is an empty journal.  Later lines win on duplicate
    keys (append-only semantics: re-recorded entries supersede).
    """
    entries: Dict[tuple, Tuple[str, object]] = {}
    corrupt = 0
    try:
        lines = Path(path).read_text().splitlines()
    except OSError:
        return entries, 0
    for line in lines:
        if not line.strip():
            continue
        decoded = decode_entry(line)
        if decoded is None:
            corrupt += 1
            continue
        key, entry = decoded
        entries[key] = entry
    return entries, corrupt


class PersistentExecutionCache(ExecutionCache):
    """An :class:`ExecutionCache` backed by an append-only journal.

    On construction, every valid journal line is preloaded (corrupt
    lines are counted in :attr:`corrupt_entries` and skipped).  New
    entries recorded during the run accumulate in memory until
    :meth:`flush` appends them to the journal — the streamed build
    flushes after every committed shard, so a killed build loses at most
    one shard's worth of cache work.
    """

    def __init__(self, path: str):
        super().__init__()
        self.path = Path(path)
        preloaded, self.corrupt_entries = load_journal(self.path)
        self._entries.update(preloaded)
        self.preloaded = len(preloaded)
        self._pending: List[tuple] = []

    # -- recording ------------------------------------------------------

    def store_result(self, key: tuple, result: ResultTable) -> None:
        super().store_result(key, result)
        with self._lock:
            self._pending.append(key)

    def store_error(self, key: tuple, message: str) -> None:
        super().store_error(key, message)
        with self._lock:
            self._pending.append(key)

    def absorb_entries(self, entries: Iterable[Tuple[tuple, Tuple[str, object]]]) -> int:
        """Adopt entries produced elsewhere (a worker process); returns
        how many were new.  Adopted entries are flushed like local ones."""
        added = 0
        with self._lock:
            for key, entry in entries:
                if key not in self._entries:
                    self._entries[key] = entry
                    self._pending.append(key)
                    added += 1
        return added

    # -- sharing with workers -------------------------------------------

    def entries_for_db(self, db_name: str) -> List[Tuple[tuple, Tuple[str, object]]]:
        """All entries keyed under one database (worker pre-seeding)."""
        with self._lock:
            return [
                (key, entry)
                for key, entry in self._entries.items()
                if key[0] == db_name
            ]

    # -- persistence ----------------------------------------------------

    def flush(self) -> int:
        """Append pending entries to the journal; returns the count.

        Appends are line-atomic in practice and, even when they are not,
        a torn final line is exactly what the corruption-tolerant loader
        drops on the next run.
        """
        with self._lock:
            pending, self._pending = self._pending, []
            lines = [
                encode_entry(key, *self._entries[key])
                for key in pending
                if key in self._entries
            ]
        if not lines:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.writelines(lines)
            handle.flush()
            os.fsync(handle.fileno())
        return len(lines)

    def __getstate__(self) -> dict:
        # Crossing a process boundary would fork the journal; workers get
        # plain ExecutionCache seedings instead (see _parallel driver).
        raise TypeError("PersistentExecutionCache does not pickle; "
                        "seed workers with entries_for_db() instead")
