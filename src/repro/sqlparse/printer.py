"""Print the unified AST back to SQL text.

Joins are reconstructed from the database's foreign keys when a schema is
provided (``FROM a JOIN b ON a.x = b.y``); otherwise multi-table queries
fall back to a comma list.  ``binning`` groups have no SQL equivalent and
print as plain ``GROUP BY`` on the binned column — printing a VIS tree's
query body yields the SQL that retrieves its source data.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    InSubquery,
    Like,
    LogicalPredicate,
    Predicate,
    QueryCore,
    SetQuery,
    SQLQuery,
    SubqueryComparison,
    Value,
    VisQuery,
)
from repro.storage.schema import Database


def to_sql(
    query: Union[SQLQuery, VisQuery], database: Optional[Database] = None
) -> str:
    """Render *query*'s data part as SQL text."""
    body = query.body
    if isinstance(body, SetQuery):
        left = _core_sql(body.left, database)
        right = _core_sql(body.right, database)
        return f"{left} {body.op.upper()} {right}"
    return _core_sql(body, database)


def _core_sql(core: QueryCore, database: Optional[Database]) -> str:
    parts = ["SELECT " + ", ".join(_attr_sql(attr) for attr in core.select)]
    parts.append("FROM " + _from_sql(core, database))

    where, having = _partition_filter(core)
    if where:
        parts.append("WHERE " + " AND ".join(_pred_sql(p, database) for p in where))
    if core.groups:
        columns = ", ".join(group.attr.qualified_name for group in core.groups)
        parts.append("GROUP BY " + columns)
    if having:
        parts.append("HAVING " + " AND ".join(_pred_sql(p, database) for p in having))
    if core.order is not None:
        parts.append(
            f"ORDER BY {_attr_sql(core.order.attr)} {core.order.direction.upper()}"
        )
    if core.superlative is not None:
        sup = core.superlative
        direction = "DESC" if sup.kind == "most" else "ASC"
        parts.append(f"ORDER BY {_attr_sql(sup.attr)} {direction} LIMIT {sup.k}")
    return " ".join(parts)


def _from_sql(core: QueryCore, database: Optional[Database]) -> str:
    tables = list(core.tables)
    if len(tables) == 1 or database is None:
        return ", ".join(tables)
    path = database.join_path(tables)
    joined = [tables[0]]
    clause = tables[0]
    pending = list(path)
    while pending:
        progressed = False
        for fk in list(pending):
            if fk.table in joined and fk.ref_table not in joined:
                new, on = fk.ref_table, f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
            elif fk.ref_table in joined and fk.table not in joined:
                new, on = fk.table, f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
            else:
                continue
            clause += f" JOIN {new} ON {on}"
            joined.append(new)
            pending.remove(fk)
            progressed = True
        if not progressed:
            # Disconnected FK path: fall back to a comma list for the rest.
            rest = [t for t in tables if t not in joined]
            return ", ".join([clause] + rest)
    rest = [t for t in tables if t not in joined]
    if rest:
        return ", ".join([clause] + rest)
    return clause


def _partition_filter(core: QueryCore):
    if core.filter is None:
        return [], []
    conjuncts = _and_chain(core.filter.root)
    where = [p for p in conjuncts if not _mentions_aggregate(p)]
    having = [p for p in conjuncts if _mentions_aggregate(p)]
    return where, having


def _and_chain(pred: Predicate) -> List[Predicate]:
    if isinstance(pred, LogicalPredicate) and pred.op == "and":
        return _and_chain(pred.left) + _and_chain(pred.right)
    return [pred]


def _mentions_aggregate(pred: Predicate) -> bool:
    return any(attr.is_aggregated for attr in pred.attributes())


def _attr_sql(attr: Attribute) -> str:
    if attr.agg is not None:
        return f"{attr.agg.upper()}({attr.qualified_name})"
    return attr.qualified_name


def _pred_sql(pred: Predicate, database: Optional[Database]) -> str:
    if isinstance(pred, LogicalPredicate):
        left = _pred_sql(pred.left, database)
        right = _pred_sql(pred.right, database)
        if pred.op == "or":
            return f"({left} OR {right})"
        return f"{left} AND {right}"
    if isinstance(pred, Comparison):
        return f"{_attr_sql(pred.attr)} {pred.op} {_value_sql(pred.value)}"
    if isinstance(pred, SubqueryComparison):
        return f"{_attr_sql(pred.attr)} {pred.op} ({_core_sql(pred.query, database)})"
    if isinstance(pred, Between):
        return (
            f"{_attr_sql(pred.attr)} BETWEEN "
            f"{_value_sql(pred.low)} AND {_value_sql(pred.high)}"
        )
    if isinstance(pred, Like):
        keyword = "NOT LIKE" if pred.negated else "LIKE"
        return f"{_attr_sql(pred.attr)} {keyword} {_value_sql(pred.pattern)}"
    if isinstance(pred, InSubquery):
        keyword = "NOT IN" if pred.negated else "IN"
        return f"{_attr_sql(pred.attr)} {keyword} ({_core_sql(pred.query, database)})"
    raise TypeError(f"unknown predicate node: {type(pred)!r}")


def _value_sql(value: Value) -> str:
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
