"""SQL front-end for the unified AST.

The synthesizer consumes (NL, SQL) pairs; this package turns the SQL text
into the Figure 5 AST (``parse_sql``) and prints ASTs back to executable
SQL (``to_sql``) so users can round-trip queries against external engines.
"""

from repro.sqlparse.lexer import tokenize_sql
from repro.sqlparse.parser import parse_sql
from repro.sqlparse.printer import to_sql

__all__ = ["parse_sql", "to_sql", "tokenize_sql"]
