"""Parse SQL text into the unified AST (Figure 5 scope).

Supported surface: ``SELECT`` projections with the five aggregates,
``FROM`` with ``JOIN ... ON`` chains or comma lists, ``WHERE`` predicates
(comparisons against literals or scalar subqueries, ``BETWEEN``,
``[NOT] LIKE``, ``[NOT] IN (subquery)``, ``AND``/``OR`` with the usual
precedence and parentheses), ``GROUP BY``, ``HAVING`` (merged into the
AST Filter), ``ORDER BY``, ``LIMIT`` (mapped to the Superlative
production when an ORDER BY accompanies it, per SemQL), and the three set
operations.

A :class:`~repro.storage.schema.Database` may be supplied to resolve
unqualified column names and table aliases; without one, every column
must be written ``table.column``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Order,
    Predicate,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    SubqueryComparison,
    Value,
)
from repro.grammar.errors import ParseError
from repro.sqlparse.lexer import SqlToken, tokenize_sql
from repro.storage.schema import Database

_AGGS = ("MAX", "MIN", "COUNT", "SUM", "AVG")


def parse_sql(sql: str, database: Optional[Database] = None) -> SQLQuery:
    """Parse *sql* into an :class:`SQLQuery` AST."""
    tokens = tokenize_sql(sql)
    parser = _SqlParser(tokens, database)
    return parser.parse_query()


class _SqlParser:
    def __init__(self, tokens: List[SqlToken], database: Optional[Database]):
        self._tokens = tokens
        self._index = 0
        self._database = database

    # ----- token helpers ---------------------------------------------

    def _peek(self, ahead: int = 0) -> Optional[SqlToken]:
        index = self._index + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> SqlToken:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of SQL input")
        self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[SqlToken]:
        token = self._peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> SqlToken:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            raise ParseError(
                f"expected {text or kind}, got "
                f"{actual.text if actual else 'end of input'!r}"
            )
        return token

    def _at_keyword(self, *names: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "keyword" and token.text in names

    # ----- grammar ----------------------------------------------------

    def parse_query(self) -> SQLQuery:
        """Parse a full query (core or set operation)."""
        left = self._parse_core()
        if self._at_keyword("INTERSECT", "UNION", "EXCEPT"):
            op = self._next().text.lower()
            right = self._parse_core()
            body: Union[QueryCore, SetQuery] = SetQuery(op=op, left=left, right=right)
        else:
            body = left
        self._accept("punct", ";")
        if self._peek() is not None:
            raise ParseError(f"trailing input after query: {self._peek().text!r}")
        return SQLQuery(body=body)

    def _parse_core(self) -> QueryCore:
        self._expect("keyword", "SELECT")
        self._accept("keyword", "DISTINCT")
        select_raw = [self._parse_select_item()]
        while self._accept("punct", ","):
            select_raw.append(self._parse_select_item())

        tables, aliases = self._parse_from()
        resolver = _Resolver(self._database, tables, aliases)
        select = tuple(resolver.attr(agg, name) for agg, name in select_raw)

        predicates: List[Predicate] = []
        if self._accept("keyword", "WHERE"):
            predicates.append(self._parse_predicate(resolver))

        groups: Tuple[Group, ...] = ()
        if self._accept("keyword", "GROUP"):
            self._expect("keyword", "BY")
            group_attrs = [resolver.attr(None, self._parse_column_name())]
            while self._accept("punct", ","):
                group_attrs.append(resolver.attr(None, self._parse_column_name()))
            groups = tuple(Group(kind="grouping", attr=attr) for attr in group_attrs)

        if self._accept("keyword", "HAVING"):
            predicates.append(self._parse_predicate(resolver))

        order = None
        superlative = None
        if self._accept("keyword", "ORDER"):
            self._expect("keyword", "BY")
            agg, name = self._parse_select_item()
            attr = resolver.attr(agg, name)
            direction = "asc"
            if self._accept("keyword", "DESC"):
                direction = "desc"
            else:
                self._accept("keyword", "ASC")
            if self._accept("keyword", "LIMIT"):
                k_token = self._expect("number")
                superlative = Superlative(
                    kind="most" if direction == "desc" else "least",
                    k=int(k_token.text),
                    attr=attr,
                )
            else:
                order = Order(direction=direction, attr=attr)
        elif self._accept("keyword", "LIMIT"):
            # LIMIT without ORDER BY: treated as "most k of the first
            # select attribute" — rare in Spider, kept for robustness.
            k_token = self._expect("number")
            superlative = Superlative(kind="most", k=int(k_token.text), attr=select[0])

        filter_ = None
        if predicates:
            joined = predicates[0]
            for pred in predicates[1:]:
                joined = LogicalPredicate(op="and", left=joined, right=pred)
            filter_ = Filter(root=joined)

        try:
            return QueryCore(
                select=select,
                filter=filter_,
                groups=groups,
                order=order,
                superlative=superlative,
            )
        except ValueError as exc:
            raise ParseError(str(exc)) from exc

    def _parse_select_item(self) -> Tuple[Optional[str], str]:
        """Return ``(agg_or_None, column_name)`` where the name may be
        ``*``, ``col``, or ``table.col``."""
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.text in _AGGS:
            agg = self._next().text.lower()
            self._expect("punct", "(")
            self._accept("keyword", "DISTINCT")
            name = self._parse_column_name()
            self._expect("punct", ")")
            return agg, name
        return None, self._parse_column_name()

    def _parse_column_name(self) -> str:
        if self._accept("punct", "*"):
            return "*"
        first = self._expect("name").text
        if self._accept("punct", "."):
            if self._accept("punct", "*"):
                return f"{first}.*"
            second = self._expect("name").text
            return f"{first}.{second}"
        return first

    def _parse_from(self) -> Tuple[List[str], Dict[str, str]]:
        self._expect("keyword", "FROM")
        tables: List[str] = []
        aliases: Dict[str, str] = {}

        def one_table() -> None:
            name = self._expect("name").text
            tables.append(name)
            alias = None
            if self._accept("keyword", "AS"):
                alias = self._expect("name").text
            else:
                nxt = self._peek()
                if nxt is not None and nxt.kind == "name":
                    alias = self._next().text
            if alias is not None:
                aliases[alias] = name

        one_table()
        while True:
            if self._accept("punct", ","):
                one_table()
                continue
            joined = False
            if self._at_keyword("INNER", "LEFT"):
                self._next()
                joined = True
            if self._accept("keyword", "JOIN"):
                one_table()
                if self._accept("keyword", "ON"):
                    # Join conditions are implicit in the AST (schema FKs);
                    # consume and discard "a.x = b.y [AND ...]" chains.
                    self._parse_column_name()
                    self._expect("op", "=")
                    self._parse_column_name()
                    while self._accept("keyword", "AND") and self._looks_like_join_cond():
                        self._parse_column_name()
                        self._expect("op", "=")
                        self._parse_column_name()
                continue
            if joined:
                raise ParseError("expected JOIN after INNER/LEFT")
            break
        return tables, aliases

    def _looks_like_join_cond(self) -> bool:
        token = self._peek()
        return token is not None and token.kind == "name"

    # ----- predicates --------------------------------------------------

    def _parse_predicate(self, resolver: "_Resolver") -> Predicate:
        return self._parse_or(resolver)

    def _parse_or(self, resolver: "_Resolver") -> Predicate:
        left = self._parse_and(resolver)
        while self._accept("keyword", "OR"):
            right = self._parse_and(resolver)
            left = LogicalPredicate(op="or", left=left, right=right)
        return left

    def _parse_and(self, resolver: "_Resolver") -> Predicate:
        left = self._parse_atom(resolver)
        while self._accept("keyword", "AND"):
            right = self._parse_atom(resolver)
            left = LogicalPredicate(op="and", left=left, right=right)
        return left

    def _parse_atom(self, resolver: "_Resolver") -> Predicate:
        if self._accept("punct", "("):
            inner = self._parse_or(resolver)
            self._expect("punct", ")")
            return inner
        agg, name = self._parse_select_item()
        attr = resolver.attr(agg, name)

        negated = bool(self._accept("keyword", "NOT"))
        if self._accept("keyword", "LIKE"):
            pattern = self._expect("string").text
            return Like(attr=attr, pattern=pattern, negated=negated)
        if self._accept("keyword", "IN"):
            self._expect("punct", "(")
            sub = self._parse_subquery()
            self._expect("punct", ")")
            return InSubquery(attr=attr, query=sub, negated=negated)
        if negated:
            raise ParseError("expected LIKE or IN after NOT")
        if self._accept("keyword", "BETWEEN"):
            low = self._parse_value()
            self._expect("keyword", "AND")
            high = self._parse_value()
            return Between(attr=attr, low=low, high=high)

        op_token = self._expect("op")
        if self._accept("punct", "("):
            sub = self._parse_subquery()
            self._expect("punct", ")")
            return SubqueryComparison(op=op_token.text, attr=attr, query=sub)
        return Comparison(op=op_token.text, attr=attr, value=self._parse_value())

    def _parse_subquery(self) -> QueryCore:
        core = self._parse_core()
        if len(core.select) != 1:
            raise ParseError("subqueries must select exactly one attribute")
        return core

    def _parse_value(self) -> Value:
        token = self._next()
        if token.kind == "number":
            if "." in token.text:
                return float(token.text)
            return int(token.text)
        if token.kind == "string":
            return token.text
        if token.kind == "name":
            # Bare words as values (Spider NL-ish SQL sometimes omits
            # quotes); treated as string literals.
            return token.text
        raise ParseError(f"expected a literal value, got {token.text!r}")


class _Resolver:
    """Resolve column references to fully qualified attributes."""

    def __init__(
        self,
        database: Optional[Database],
        tables: List[str],
        aliases: Dict[str, str],
    ):
        self._database = database
        self._tables = tables
        self._aliases = aliases

    def attr(self, agg: Optional[str], name: str) -> Attribute:
        if name == "*":
            if agg != "count":
                raise ParseError("bare '*' is only supported inside COUNT(*)")
            return Attribute(column="*", table=self._tables[0], agg=agg)
        table, sep, column = name.partition(".")
        if sep:
            table = self._aliases.get(table, table)
            if column == "*":
                if agg != "count":
                    raise ParseError("'table.*' requires COUNT")
                return Attribute(column="*", table=table, agg=agg)
            return Attribute(column=column, table=table, agg=agg)
        return Attribute(column=name, table=self._owning_table(name), agg=agg)

    def _owning_table(self, column: str) -> str:
        if self._database is None:
            if len(self._tables) == 1:
                return self._tables[0]
            raise ParseError(
                f"cannot resolve unqualified column {column!r} without a schema"
            )
        owners = []
        for table_name in self._tables:
            table = self._database.tables.get(self._aliases.get(table_name, table_name))
            if table is not None and column in table.column_names:
                owners.append(table.name)
        if not owners:
            raise ParseError(f"column {column!r} not found in FROM tables")
        if len(set(owners)) > 1:
            raise ParseError(f"ambiguous column {column!r}: owned by {owners}")
        return owners[0]
