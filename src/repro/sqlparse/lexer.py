"""A small SQL lexer.

Produces a flat list of :class:`SqlToken`.  Keywords are case-insensitive
and normalized to uppercase; identifiers keep their original case; string
literals lose their quotes but remember they were strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.grammar.errors import ParseError

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "JOIN",
        "INNER",
        "LEFT",
        "ON",
        "AS",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "ASC",
        "DESC",
        "LIMIT",
        "AND",
        "OR",
        "NOT",
        "IN",
        "LIKE",
        "BETWEEN",
        "INTERSECT",
        "UNION",
        "EXCEPT",
        "MAX",
        "MIN",
        "COUNT",
        "SUM",
        "AVG",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),.*;])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class SqlToken:
    """One lexical token: ``kind`` is keyword/name/number/string/op/punct."""

    kind: str
    text: str


def tokenize_sql(sql: str) -> List[SqlToken]:
    """Tokenize *sql*; raises :class:`ParseError` on illegal characters."""
    tokens: List[SqlToken] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(
                f"illegal SQL character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "word":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(SqlToken("keyword", upper))
            else:
                tokens.append(SqlToken("name", text))
        elif match.lastgroup == "string":
            quote = text[0]
            body = text[1:-1].replace(quote * 2, quote)
            tokens.append(SqlToken("string", body))
        elif match.lastgroup == "number":
            tokens.append(SqlToken("number", text))
        elif match.lastgroup == "op":
            tokens.append(SqlToken("op", "!=" if text == "<>" else text))
        else:
            tokens.append(SqlToken("punct", text))
    return tokens
