"""Error analysis for seq2vis predictions.

The paper's Table 4 discussion attributes most remaining errors to the
axes (especially the aggregate on the y axis); this module makes that
analysis a first-class tool: each wrong prediction is assigned its most
specific error category, and the report aggregates category counts by
hardness and vis type.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.eval.metrics import _masked  # shared canonicalization
from repro.grammar.ast_nodes import VisQuery

#: Error categories from most to least specific; a wrong prediction is
#: labelled with the FIRST category that applies.
ERROR_CATEGORIES = (
    "unparseable",          # decoder output is not a valid vis tree
    "wrong_vis_type",       # chart type differs
    "wrong_tables",         # different table set (join errors)
    "wrong_axis_columns",   # right type, different selected columns
    "wrong_aggregate",      # same columns, different aggregate function
    "wrong_group_or_bin",   # grouping/binning structure differs
    "wrong_filter",         # filter predicates differ
    "wrong_order_or_limit", # order/superlative differs
    "other",                # anything else
)


@dataclass
class ErrorRecord:
    """One analysed prediction."""

    category: Optional[str]  # None when the prediction is correct
    vis_type: str
    hardness: str


@dataclass
class ErrorReport:
    """Aggregated error analysis."""

    records: List[ErrorRecord] = field(default_factory=list)

    @property
    def n_errors(self) -> int:
        return sum(1 for record in self.records if record.category is not None)

    def category_counts(self) -> Counter:
        """Counts per error category, most common first."""
        return Counter(
            record.category for record in self.records if record.category
        )

    def by_hardness(self) -> Dict[str, Counter]:
        """Error-category counts per hardness tier."""
        out: Dict[str, Counter] = defaultdict(Counter)
        for record in self.records:
            if record.category:
                out[record.hardness][record.category] += 1
        return dict(out)

    def dominant_category(self) -> Optional[str]:
        counts = self.category_counts()
        if not counts:
            return None
        return counts.most_common(1)[0][0]


def categorize_error(
    predicted: Optional[VisQuery], gold: VisQuery
) -> Optional[str]:
    """The most specific error category for a prediction, or ``None``
    when the (value-masked) trees match exactly."""
    if predicted is None:
        return "unparseable"
    try:
        pred = _masked(predicted)
    except Exception:
        return "unparseable"
    gold_masked = _masked(gold)
    if pred == gold_masked:
        return None
    if pred.vis_type != gold_masked.vis_type:
        return "wrong_vis_type"
    pred_core = pred.primary_core
    gold_core = gold_masked.primary_core
    if set(pred_core.tables) != set(gold_core.tables):
        return "wrong_tables"
    pred_columns = tuple(a.qualified_name for a in pred_core.select)
    gold_columns = tuple(a.qualified_name for a in gold_core.select)
    if pred_columns != gold_columns:
        return "wrong_axis_columns"
    pred_aggs = tuple(a.agg for a in pred_core.select)
    gold_aggs = tuple(a.agg for a in gold_core.select)
    if pred_aggs != gold_aggs:
        return "wrong_aggregate"
    if pred_core.groups != gold_core.groups:
        return "wrong_group_or_bin"
    if pred_core.filter != gold_core.filter:
        return "wrong_filter"
    if (
        pred_core.order != gold_core.order
        or pred_core.superlative != gold_core.superlative
    ):
        return "wrong_order_or_limit"
    return "other"


def analyse(
    predictions: List[Tuple[Optional[VisQuery], VisQuery, str, str]],
) -> ErrorReport:
    """Analyse ``(predicted, gold, vis_type, hardness)`` tuples."""
    report = ErrorReport()
    for predicted, gold, vis_type, hardness in predictions:
        report.records.append(
            ErrorRecord(
                category=categorize_error(predicted, gold),
                vis_type=vis_type,
                hardness=hardness,
            )
        )
    return report
