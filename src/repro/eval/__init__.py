"""Evaluation: metrics, splits, model harness, and study simulations.

* :mod:`splits` — the 80 / 4.5 / 15.5 train/val/test split (Section 4.2)
* :mod:`metrics` — tree / result / component matching accuracy
* :mod:`ambiguity` — ambiguous-question split + accuracy@k coverage
* :mod:`judge` — multi-dimension judged evaluation (tree / validity /
  legality / readability verdicts, scenario runner, accuracy matrix)
* :mod:`scenarios` — named workload registry (standard / ambiguous /
  edit_session / temporal) feeding the judge
* :mod:`harness` — end-to-end seq2vis training + evaluation driver
* :mod:`crowd` — the expert/crowd human-study simulation (Section 3.3)
* :mod:`lowrated` — the low-rated-pair injection experiment (Section 4.5)
"""

from repro.eval.ambiguity import (
    AmbiguousQuestion,
    accuracy_at_k,
    ambiguous_split,
    coverage_at_k,
    normalize_question,
)
from repro.eval.harness import (
    EvaluationReport,
    QuantizationReport,
    evaluate_model,
    quantization_report,
    train_and_evaluate,
)
from repro.eval.judge import (
    DIMENSIONS,
    ChartJudgement,
    DimensionVerdict,
    ReadabilityIssue,
    ReadabilityRules,
    ScenarioReport,
    format_matrix,
    judge_chart,
    judge_matrix,
    readability_issues,
    run_scenario,
)
from repro.eval.metrics import (
    PairOutcome,
    component_match,
    result_match,
    tree_match,
)
from repro.eval.scenarios import (
    Scenario,
    ScenarioExample,
    ScenarioPack,
    SpecEdit,
    apply_edit,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.eval.splits import split_pairs

__all__ = [
    "AmbiguousQuestion",
    "ChartJudgement",
    "DIMENSIONS",
    "DimensionVerdict",
    "EvaluationReport",
    "PairOutcome",
    "QuantizationReport",
    "ReadabilityIssue",
    "ReadabilityRules",
    "Scenario",
    "ScenarioExample",
    "ScenarioPack",
    "ScenarioReport",
    "SpecEdit",
    "accuracy_at_k",
    "ambiguous_split",
    "apply_edit",
    "coverage_at_k",
    "normalize_question",
    "component_match",
    "evaluate_model",
    "format_matrix",
    "get_scenario",
    "judge_chart",
    "judge_matrix",
    "quantization_report",
    "readability_issues",
    "register_scenario",
    "result_match",
    "run_scenario",
    "scenario_names",
    "split_pairs",
    "train_and_evaluate",
    "tree_match",
]
