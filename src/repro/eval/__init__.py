"""Evaluation: metrics, splits, model harness, and study simulations.

* :mod:`splits` — the 80 / 4.5 / 15.5 train/val/test split (Section 4.2)
* :mod:`metrics` — tree / result / component matching accuracy
* :mod:`ambiguity` — ambiguous-question split + accuracy@k coverage
* :mod:`harness` — end-to-end seq2vis training + evaluation driver
* :mod:`crowd` — the expert/crowd human-study simulation (Section 3.3)
* :mod:`lowrated` — the low-rated-pair injection experiment (Section 4.5)
"""

from repro.eval.ambiguity import (
    AmbiguousQuestion,
    accuracy_at_k,
    ambiguous_split,
    coverage_at_k,
    normalize_question,
)
from repro.eval.harness import (
    EvaluationReport,
    QuantizationReport,
    evaluate_model,
    quantization_report,
    train_and_evaluate,
)
from repro.eval.metrics import (
    PairOutcome,
    component_match,
    result_match,
    tree_match,
)
from repro.eval.splits import split_pairs

__all__ = [
    "AmbiguousQuestion",
    "EvaluationReport",
    "PairOutcome",
    "QuantizationReport",
    "accuracy_at_k",
    "ambiguous_split",
    "coverage_at_k",
    "normalize_question",
    "component_match",
    "evaluate_model",
    "quantization_report",
    "result_match",
    "split_pairs",
    "train_and_evaluate",
    "tree_match",
]
