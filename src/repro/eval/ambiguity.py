"""Ambiguous questions and accuracy@k.

One NL question often supports several valid charts — the benchmark
synthesizes up to ``max_vis_per_query`` VIS trees per source SQL query,
so the *original NL2SQL question* behind those pairs is genuinely
ambiguous: its gold answer is a **set** of distinct charts.

:func:`ambiguous_split` builds that split deterministically: pairs are
grouped by ``(db_name, source_sql)`` — the provenance the synthesizer
recorded — falling back to ``(db_name, normalize_question(nl))`` for
plain pairs without provenance; groups with at least two distinct
value-masked gold trees are kept, and everything is sorted — identical
inputs always produce the identical split.  The representative question
is the group's shared source NL (the chart-type-free phrasing), so a
pipeline answering it has no phrasing hint about which chart to pick.

:func:`accuracy_at_k` scores a ranked candidate list against a gold
set as *coverage*: the fraction of gold charts matched (masked tree
equality) by some candidate in the top k, averaged over questions.
With one gold chart it reduces to ordinary top-k accuracy; with an
ambiguous gold set, accuracy@3 can strictly beat accuracy@1 — a ranked
candidate list is worth more than a single guess.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.eval.metrics import tree_match
from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import to_tokens

#: words that only select the chart flavor, not the data question
_CHART_WORDS = frozenset(
    (
        "bar", "pie", "line", "scatter", "stacked", "grouping", "grouped",
        "chart", "charts", "graph", "graphs", "plot", "plots", "histogram",
        "draw", "visualize", "visualise", "show", "showing", "display",
        "about", "for", "of", "a", "an", "the", "me",
    )
)

_TOKEN_RE = re.compile(r"[a-z0-9_.]+")


def normalize_question(nl: str) -> str:
    """Canonical chart-type-free form of a question.

    Lowercases, tokenizes, and drops the chart-flavor vocabulary, so the
    bar-chart and pie-chart phrasings of one underlying data question
    normalize to the same string.
    """
    tokens = _TOKEN_RE.findall(nl.lower())
    kept = [token for token in tokens if token not in _CHART_WORDS]
    return " ".join(kept)


@dataclass(frozen=True)
class AmbiguousQuestion:
    """One NL question with a multi-chart gold answer set."""

    question: str
    db_name: str
    #: distinct gold charts (distinct in value-masked form)
    golds: Tuple[VisQuery, ...]

    @property
    def num_golds(self) -> int:
        return len(self.golds)


def _masked_key(query: VisQuery) -> Optional[str]:
    try:
        return " ".join(to_tokens(query, mask_values=True))
    except Exception:
        return None


def ambiguous_split(pairs: Iterable) -> List[AmbiguousQuestion]:
    """Deterministic ambiguous-question split from (NL, VIS) pairs.

    Accepts any iterable of objects with ``nl``, ``vis`` and ``db_name``
    attributes (e.g. :class:`repro.core.nvbench.NVBenchPair`).  Groups
    by ``(db_name, source_sql)`` when the pairs carry synthesis
    provenance, else by ``(db_name, normalize_question(nl))``; only
    groups whose gold trees are distinct under value masking —
    genuinely ambiguous questions — survive.  The question text is the
    group's source NL when available (lexicographically smallest member
    NL otherwise), golds are ordered by their masked token string, and
    groups come back sorted by (db, question): same pairs in, same
    split out, every time.
    """
    groups: Dict[Tuple[str, str], Dict[str, tuple]] = {}
    questions: Dict[Tuple[str, str], str] = {}
    for pair in pairs:
        source_sql = getattr(pair, "source_sql", None)
        discriminator = source_sql or normalize_question(pair.nl)
        if not discriminator:
            continue
        key = (pair.db_name, discriminator)
        masked = _masked_key(pair.vis)
        if masked is None:
            continue
        groups.setdefault(key, {})[masked] = (masked, pair.vis)
        representative = getattr(pair, "source_nl", None) or pair.nl
        existing = questions.get(key)
        if existing is None or representative < existing:
            questions[key] = representative
    split: List[AmbiguousQuestion] = []
    for key, by_mask in groups.items():
        if len(by_mask) < 2:
            continue
        golds = tuple(
            vis for _, vis in sorted(by_mask.values(), key=lambda item: item[0])
        )
        split.append(
            AmbiguousQuestion(
                question=questions[key], db_name=key[0], golds=golds
            )
        )
    split.sort(key=lambda item: (item.db_name, item.question))
    return split


def coverage_at_k(
    candidates: Sequence[Optional[VisQuery]],
    golds: Sequence[VisQuery],
    k: int,
) -> float:
    """Fraction of gold charts matched by the top-*k* candidates."""
    if not golds:
        return 0.0
    top = [c for c in candidates[:k] if c is not None]
    hits = sum(
        1 for gold in golds if any(tree_match(c, gold) for c in top)
    )
    return hits / len(golds)


def accuracy_at_k(
    predictions: Sequence[Sequence[Optional[VisQuery]]],
    split: Sequence[AmbiguousQuestion],
    ks: Sequence[int] = (1, 3, 5),
) -> Dict[int, float]:
    """Mean gold-set coverage at each cutoff in *ks*.

    ``predictions[i]`` is the ranked candidate list (best first) for
    ``split[i]``.  Returns ``{k: mean coverage}``.
    """
    if len(predictions) != len(split):
        raise ValueError(
            f"{len(predictions)} prediction lists for {len(split)} questions"
        )
    scores = {k: 0.0 for k in ks}
    if not split:
        return scores
    for ranked, item in zip(predictions, split):
        for k in ks:
            scores[k] += coverage_at_k(ranked, item.golds, k)
    return {k: total / len(split) for k, total in scores.items()}
