"""Effect of low-rated (NL, VIS) pairs (paper Section 4.5, Figure 18).

Protocol: identify the low-rated pairs via the human-study simulation,
remove them from the training set to train baseline models, then inject
x% (x ∈ {20, 40, 60, 80, 100}) of the low-rated pairs back into training
and measure the *relative* tree accuracy against the clean baseline.
The paper finds a small effect, with the attention variant the most
sensitive.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nvbench import NVBench
from repro.core.synthesizer import SynthesizedPair
from repro.eval.harness import (
    ExperimentConfig,
    build_model,
    evaluate_model,
)
from repro.eval.splits import split_pairs
from repro.neural.data import build_dataset
from repro.neural.trainer import train_model

DEFAULT_LEVELS = (0, 20, 40, 60, 80, 100)


@dataclass
class InjectionResult:
    """Tree accuracy per (variant, injection level)."""

    accuracies: Dict[Tuple[str, int], float] = field(default_factory=dict)

    def relative(self) -> Dict[Tuple[str, int], float]:
        """Accuracy at level x divided by the clean (0%) baseline."""
        out = {}
        for (variant, level), accuracy in self.accuracies.items():
            base = self.accuracies.get((variant, 0), 0.0)
            out[(variant, level)] = accuracy / base if base else 0.0
        return out


def low_rated_injection_experiment(
    bench: NVBench,
    low_rated: Sequence[SynthesizedPair],
    variants: Sequence[str] = ("basic", "attention", "copy"),
    levels: Sequence[int] = DEFAULT_LEVELS,
    config: Optional[ExperimentConfig] = None,
    repeats: int = 1,
) -> InjectionResult:
    """Run the injection sweep; ``repeats`` averages over model seeds
    (the paper repeats training three times)."""
    config = config or ExperimentConfig()
    low_set = {id(pair) for pair in low_rated}
    clean = [pair for pair in bench.pairs if id(pair) not in low_set]
    train_clean, val_pairs, test_pairs = split_pairs(clean, seed=config.split_seed)
    rng = np.random.default_rng(config.split_seed)
    low_order = list(low_rated)
    rng.shuffle(low_order)

    result = InjectionResult()
    for variant in variants:
        for level in levels:
            n_inject = int(round(len(low_order) * level / 100))
            train_pairs = list(train_clean) + low_order[:n_inject]
            accuracies: List[float] = []
            for repeat in range(repeats):
                run_config = dataclasses.replace(
                    config, model_seed=config.model_seed + repeat
                )
                train_set = build_dataset(train_pairs, bench.databases)
                val_set = build_dataset(
                    val_pairs, bench.databases, train_set.in_vocab, train_set.out_vocab
                )
                test_set = build_dataset(
                    test_pairs, bench.databases, train_set.in_vocab, train_set.out_vocab
                )
                model = build_model(variant, train_set, run_config)
                train_model(model, train_set, val_set, run_config.train)
                report = evaluate_model(model, test_set, bench)
                accuracies.append(report.tree_accuracy)
            result.accuracies[(variant, int(level))] = float(np.mean(accuracies))
    return result
