"""Evaluation metrics (Section 4.2).

* **Tree matching accuracy** — the predicted VIS AST exactly equals the
  gold AST (compared in value-masked form, since seq2vis predicts the
  tree shape and values are filled by a separate heuristic).
* **Result matching accuracy** — the predicted query, with values
  restored by the slot heuristic, *renders the same chart data* as the
  gold query even if the trees differ.
* **Component matching accuracy** — per-component comparison: the vis
  type, the axes (Select), and the data operations (Where / Join /
  Grouping / Binning / Order), mirroring Table 4's columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.hardness import Hardness
from repro.grammar.ast_nodes import (
    Group,
    QueryCore,
    SetQuery,
    SQLQuery,
    VisQuery,
)
from repro.grammar.serialize import from_tokens, to_tokens
from repro.storage.schema import Database
from repro.vis.data import render_data

COMPONENTS = ("select", "where", "join", "grouping", "binning", "order")


def _masked(query: VisQuery) -> VisQuery:
    """Canonical value-masked form for shape comparison."""
    rebuilt = from_tokens(to_tokens(query, mask_values=True))
    assert isinstance(rebuilt, VisQuery)
    return rebuilt


def tree_match(predicted: Optional[VisQuery], gold: VisQuery) -> bool:
    """Exact AST equality in value-masked form."""
    if predicted is None:
        return False
    try:
        return _masked(predicted) == _masked(gold)
    except Exception:
        return False


def result_match(
    predicted: Optional[VisQuery], gold: VisQuery, database: Database
) -> bool:
    """Same chart type and same rendered data (order-insensitive)."""
    if predicted is None:
        return False
    try:
        left = render_data(predicted, database).canonical()
        right = render_data(gold, database).canonical()
    except Exception:
        return False
    return left == right


def component_match(
    predicted: Optional[VisQuery], gold: VisQuery
) -> Dict[str, bool]:
    """Per-component equality flags (masked comparison).

    Components follow Table 4: ``select`` covers the x/y/z axes,
    ``where`` the filter predicates, ``join`` the referenced table set,
    ``grouping``/``binning`` the group operations, ``order`` the
    Order/Superlative subtrees.
    """
    if predicted is None:
        return {name: False for name in COMPONENTS}
    try:
        pred = _masked(predicted)
    except Exception:
        return {name: False for name in COMPONENTS}
    gold_masked = _masked(gold)
    pred_cores = pred.cores
    gold_cores = gold_masked.cores
    if len(pred_cores) != len(gold_cores):
        # Set-operation arity differs: compare primary cores only.
        pred_cores = (pred.primary_core,)
        gold_cores = (gold_masked.primary_core,)

    def every(selector) -> bool:
        return all(
            selector(p, g) for p, g in zip(pred_cores, gold_cores)
        )

    return {
        "select": every(lambda p, g: p.select == g.select),
        "where": every(lambda p, g: p.filter == g.filter),
        "join": every(lambda p, g: set(p.tables) == set(g.tables)),
        "grouping": every(
            lambda p, g: _groups_of(p, "grouping") == _groups_of(g, "grouping")
        ),
        "binning": every(
            lambda p, g: _groups_of(p, "binning") == _groups_of(g, "binning")
        ),
        "order": every(
            lambda p, g: p.order == g.order and p.superlative == g.superlative
        ),
    }


def _groups_of(core: QueryCore, kind: str) -> frozenset:
    return frozenset(group for group in core.groups if group.kind == kind)


@dataclass
class PairOutcome:
    """Evaluation record for one test pair."""

    vis_type: str
    hardness: Hardness
    tree: bool
    result: bool
    components: Dict[str, bool] = field(default_factory=dict)
    predicted_type: Optional[str] = None
    #: the parsed predicted tree (None when unparseable) and the gold
    #: tree, kept for error analysis
    predicted: Optional[VisQuery] = None
    gold: Optional[VisQuery] = None

    @property
    def type_predicted_correctly(self) -> bool:
        """True when the predicted chart type equals the gold type."""
        return self.predicted_type == self.vis_type
