"""Dataset splitting (Section 4.2).

The paper splits nvBench's (NL, VIS) pairs randomly into 80% train,
4.5% validation, and 15.5% test.  The split is over *pairs*, so variants
of the same VIS can land in different splits — matching the paper.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

PAPER_RATIOS = (0.80, 0.045, 0.155)


def split_pairs(
    pairs: Sequence[T],
    ratios: Tuple[float, float, float] = PAPER_RATIOS,
    seed: int = 0,
) -> Tuple[List[T], List[T], List[T]]:
    """Shuffle and split *pairs* into (train, val, test)."""
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"split ratios must sum to 1, got {ratios}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(pairs))
    n_train = int(round(len(pairs) * ratios[0]))
    n_val = int(round(len(pairs) * ratios[1]))
    train_idx = order[:n_train]
    val_idx = order[n_train : n_train + n_val]
    test_idx = order[n_train + n_val :]
    pick = lambda idx: [pairs[int(i)] for i in idx]  # noqa: E731
    return pick(train_idx), pick(val_idx), pick(test_idx)
