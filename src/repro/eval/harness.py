"""End-to-end seq2vis experiment driver.

``train_and_evaluate`` reproduces the Section 4 protocol on a benchmark:
split pairs 80/4.5/15.5, train GloVe-style embeddings on the training
text, train one model variant with early stopping, decode the test set
greedily, restore values with the slot heuristic, and score all three
metrics.  The resulting :class:`EvaluationReport` knows how to aggregate
by hardness, vis type, and component — everything Figures 17/18 and
Tables 4/5 need.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hardness import HARDNESS_LEVELS
from repro.core.nvbench import NVBench
from repro.core.synthesizer import SynthesizedPair
from repro.eval.metrics import COMPONENTS, PairOutcome, component_match, result_match, tree_match
from repro.eval.splits import split_pairs
from repro.grammar.ast_nodes import VIS_TYPES, VisQuery
from repro.grammar.serialize import from_tokens
from repro.neural.data import Seq2VisDataset, build_dataset
from repro.neural.model import Seq2Vis
from repro.neural.slots import fill_value_slots
from repro.neural.trainer import TrainConfig, train_model
from repro.nlp.embeddings import train_embeddings


@dataclass
class EvaluationReport:
    """Per-pair outcomes plus aggregation helpers."""

    variant: str
    outcomes: List[PairOutcome] = field(default_factory=list)

    # ----- headline numbers ------------------------------------------------

    @property
    def tree_accuracy(self) -> float:
        """Exact vis-AST match rate over the test set."""
        return _rate([o.tree for o in self.outcomes])

    @property
    def result_accuracy(self) -> float:
        """Rendered-chart-data match rate over the test set."""
        return _rate([o.result for o in self.outcomes])

    # ----- grouped views --------------------------------------------------

    def tree_accuracy_by_hardness(self) -> Dict[str, float]:
        """Tree accuracy per hardness tier (Figure 17b)."""
        return self._grouped(lambda o: o.hardness.value, HARDNESS_LEVELS)

    def tree_accuracy_by_type(self) -> Dict[str, float]:
        """Tree accuracy per chart type."""
        return self._grouped(lambda o: o.vis_type, VIS_TYPES)

    def tree_accuracy_matrix(self) -> Dict[Tuple[str, str], float]:
        """(vis type, hardness) → tree accuracy (Figure 17 c-e cells)."""
        buckets: Dict[Tuple[str, str], List[bool]] = defaultdict(list)
        for outcome in self.outcomes:
            buckets[(outcome.vis_type, outcome.hardness.value)].append(outcome.tree)
        return {key: _rate(flags) for key, flags in buckets.items()}

    def _grouped(self, key, order) -> Dict[str, float]:
        buckets: Dict[str, List[bool]] = defaultdict(list)
        for outcome in self.outcomes:
            buckets[key(outcome)].append(outcome.tree)
        return {name: _rate(buckets[name]) for name in order if buckets[name]}

    # ----- component view (Table 4) -----------------------------------------

    def vis_type_component_accuracy(self) -> Dict[str, float]:
        """Per gold vis type: how often the *type* itself was predicted."""
        buckets: Dict[str, List[bool]] = defaultdict(list)
        for outcome in self.outcomes:
            buckets[outcome.vis_type].append(outcome.type_predicted_correctly)
        out = {name: _rate(buckets[name]) for name in VIS_TYPES if buckets[name]}
        out["all"] = _rate([o.type_predicted_correctly for o in self.outcomes])
        return out

    def component_accuracy(self) -> Dict[str, float]:
        """Accuracy per vis component (Table 4's data columns)."""
        return {
            name: _rate([o.components.get(name, False) for o in self.outcomes])
            for name in COMPONENTS
        }

    def error_analysis(self):
        """Categorized error report over the wrong predictions."""
        from repro.eval.error_analysis import analyse

        return analyse([
            (o.predicted, o.gold, o.vis_type, o.hardness.value)
            for o in self.outcomes
            if o.gold is not None
        ])


def _rate(flags: Sequence[bool]) -> float:
    if not flags:
        return 0.0
    return sum(flags) / len(flags)


@dataclass
class ExperimentConfig:
    """Model + training sizes for one seq2vis run (scaled-down defaults
    that train on CPU in tens of seconds)."""

    embed_dim: int = 48
    hidden_dim: int = 64
    train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=20, batch_size=16, lr=5e-3))
    split_seed: int = 0
    model_seed: int = 0
    use_pretrained_embeddings: bool = True


def make_datasets(
    bench: NVBench,
    config: Optional[ExperimentConfig] = None,
    pairs: Optional[Sequence[SynthesizedPair]] = None,
) -> Tuple[Seq2VisDataset, Seq2VisDataset, Seq2VisDataset]:
    """Split *bench* and encode the three datasets with shared vocab."""
    config = config or ExperimentConfig()
    all_pairs = list(pairs if pairs is not None else bench.pairs)
    train_pairs, val_pairs, test_pairs = split_pairs(
        all_pairs, seed=config.split_seed
    )
    train_set = build_dataset(train_pairs, bench.databases)
    val_set = build_dataset(
        val_pairs, bench.databases, train_set.in_vocab, train_set.out_vocab
    )
    test_set = build_dataset(
        test_pairs, bench.databases, train_set.in_vocab, train_set.out_vocab
    )
    return train_set, val_set, test_set


def build_model(
    variant: str, train_set: Seq2VisDataset, config: ExperimentConfig
) -> Seq2Vis:
    """Instantiate a seq2vis variant, with GloVe-style embedding init."""
    pretrained = None
    if config.use_pretrained_embeddings:
        sentences = [example.src_tokens for example in train_set.examples]
        pretrained = train_embeddings(
            sentences, train_set.in_vocab, dim=config.embed_dim,
            seed=config.model_seed,
        )
    return Seq2Vis(
        in_vocab_size=len(train_set.in_vocab),
        out_vocab_size=len(train_set.out_vocab),
        variant=variant,
        embed_dim=config.embed_dim,
        hidden_dim=config.hidden_dim,
        seed=config.model_seed,
        pretrained_in=pretrained,
    )


def evaluate_model(
    model: Seq2Vis,
    test_set: Seq2VisDataset,
    bench: NVBench,
    batch_size: int = 32,
    beam_width: int = 1,
    length_penalty: float = 0.7,
) -> EvaluationReport:
    """Decode the test set and score all metrics.

    ``beam_width=1`` (the default, and the paper's protocol) decodes
    greedily; wider beams use the vectorized batched beam search and
    score its top hypothesis.
    """
    report = EvaluationReport(variant=model.variant)
    out_vocab = test_set.out_vocab
    examples = test_set.examples
    for start in range(0, len(examples), batch_size):
        chunk = examples[start : start + batch_size]
        batch = test_set.batch_of(chunk)
        if beam_width > 1:
            decoded = model.beam_decode_batch(
                batch, out_vocab.bos_id, out_vocab.eos_id,
                beam_width=beam_width, length_penalty=length_penalty,
            )
        else:
            decoded = model.greedy_decode_batch(
                batch, out_vocab.bos_id, out_vocab.eos_id
            )
        for ids, example in zip(decoded, chunk):
            pair = example.pair
            database = bench.databases[pair.db_name]
            predicted = _parse_prediction(out_vocab.decode(ids))
            filled = None
            if predicted is not None:
                try:
                    filled = fill_value_slots(predicted, pair.nl, database)
                except Exception:
                    filled = None
            outcome = PairOutcome(
                vis_type=pair.vis_type,
                hardness=pair.hardness,
                tree=tree_match(predicted, pair.vis),
                result=result_match(filled, pair.vis, database),
                components=component_match(predicted, pair.vis),
                predicted_type=predicted.vis_type if predicted is not None else None,
                predicted=predicted,
                gold=pair.vis,
            )
            report.outcomes.append(outcome)
    return report


@dataclass
class QuantizationReport:
    """Accuracy of quantized weight copies against the float32 model.

    One row per precision; :meth:`assert_within` is the regression
    guard the eval harness and CI use — quantization is only an
    optimization if it does not move the headline metric.
    """

    float32_tree_accuracy: float
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def drop(self, precision: str) -> float:
        """Tree-accuracy loss of *precision* relative to float32."""
        return self.float32_tree_accuracy - self.rows[precision]["tree_accuracy"]

    def assert_within(self, epsilon: float) -> None:
        """Raise if any precision loses more than *epsilon* tree accuracy."""
        for precision in self.rows:
            lost = self.drop(precision)
            if lost > epsilon:
                raise AssertionError(
                    f"{precision} tree accuracy dropped {lost:.4f} "
                    f"(> epsilon {epsilon}): "
                    f"{self.rows[precision]['tree_accuracy']:.4f} vs "
                    f"float32 {self.float32_tree_accuracy:.4f}"
                )

    def to_json(self) -> Dict[str, object]:
        return {
            "float32_tree_accuracy": self.float32_tree_accuracy,
            "precisions": {
                name: {**row, "tree_accuracy_drop": self.drop(name)}
                for name, row in self.rows.items()
            },
        }


def quantization_report(
    model: Seq2Vis,
    test_set: Seq2VisDataset,
    bench: NVBench,
    precisions: Sequence[str] = ("float16", "int8"),
    batch_size: int = 32,
    beam_width: int = 1,
    epsilon: Optional[float] = None,
) -> QuantizationReport:
    """Evaluate quantized copies of *model* against its float32 accuracy.

    *model* is left untouched (copies are quantized).  When *epsilon*
    is given the report is asserted immediately — the one-call guard
    for "is int8 safe to serve on this checkpoint?".
    """
    from repro.neural.quantize import quantized_copy, storage_report

    base = evaluate_model(
        model, test_set, bench, batch_size=batch_size, beam_width=beam_width
    )
    report = QuantizationReport(float32_tree_accuracy=base.tree_accuracy)
    for precision in precisions:
        copy = quantized_copy(model, precision)
        scored = evaluate_model(
            copy, test_set, bench, batch_size=batch_size, beam_width=beam_width
        )
        storage = storage_report(copy)
        report.rows[precision] = {
            "tree_accuracy": scored.tree_accuracy,
            "result_accuracy": scored.result_accuracy,
            "compression": storage["compression"],
            "stored_bytes": storage["stored_bytes"],
        }
    if epsilon is not None:
        report.assert_within(epsilon)
    return report


def _parse_prediction(tokens: List[str]) -> Optional[VisQuery]:
    try:
        parsed = from_tokens(tokens)
    except Exception:
        return None
    if not isinstance(parsed, VisQuery):
        return None
    return parsed


def train_and_evaluate(
    bench: NVBench,
    variant: str = "attention",
    config: Optional[ExperimentConfig] = None,
    pairs: Optional[Sequence[SynthesizedPair]] = None,
    profile=None,
) -> Tuple[Seq2Vis, EvaluationReport]:
    """The full Section 4 protocol for one variant.

    Pass a :class:`repro.perf.TrainProfiler` as *profile* to collect
    per-step/per-epoch training timings.
    """
    config = config or ExperimentConfig()
    train_set, val_set, test_set = make_datasets(bench, config, pairs)
    model = build_model(variant, train_set, config)
    train_model(model, train_set, val_set, config.train, profile=profile)
    report = evaluate_model(model, test_set, bench)
    return model, report
