"""Named evaluation scenarios — the judged workload registry.

A *scenario* is a named, deterministic recipe that turns a benchmark
into a list of judged examples (:class:`ScenarioExample`).  The judge
layer (:mod:`repro.eval.judge`) drives the staged pipeline over each
scenario and reports a per-scenario × per-dimension accuracy matrix —
one row per registered workload:

* ``standard`` — the single-shot paper protocol: every test-split pair
  is one question with one gold chart.
* ``ambiguous`` — the accuracy@k split: one question, a *set* of gold
  charts (nvBench synthesizes several charts per source SQL query, so
  the source question is genuinely ambiguous).
* ``edit_session`` — multi-turn edit sessions in the nvBench 2.0 style:
  turn 0 asks a fresh question, later turns issue follow-up
  instructions ("change it to a pie chart") that mutate the *previous
  turn's prediction* via :func:`apply_edit`.
* ``temporal`` — the Figure-19 COVID case study generalized: the six
  expert dashboard queries plus every temporally-binned benchmark pair.

Scenarios live in a registry so new workloads are one
:func:`register_scenario` call away — ``repro judge --scenario NAME``
and the benchmark suite pick them up by name.  ``docs/EVALUATION.md``
walks through adding one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.eval.ambiguity import AmbiguousQuestion, ambiguous_split
from repro.eval.splits import split_pairs
from repro.grammar.ast_nodes import Attribute, Order, QueryCore, VisQuery
from repro.grammar.serialize import from_tokens, to_tokens
from repro.grammar.validate import ORDERABLE_VIS_TYPES, validate_query
from repro.storage.schema import Database


# ----- spec edits (multi-turn follow-ups) ----------------------------------


@dataclass(frozen=True)
class SpecEdit:
    """One follow-up instruction that mutates a prior chart spec.

    ``kind`` selects the mutation:

    * ``vis_type`` — re-render the same data as ``vis_type``;
    * ``add_order`` — sort by the measure, ``direction`` (asc/desc).
    """

    kind: str
    vis_type: Optional[str] = None
    direction: str = "desc"

    def instruction(self) -> str:
        """The follow-up phrased as a user would say it."""
        if self.kind == "vis_type":
            return f"Now show the same data as a {self.vis_type} chart."
        if self.kind == "add_order":
            longform = "descending" if self.direction == "desc" else "ascending"
            return f"Sort it by the measure in {longform} order."
        raise ValueError(f"unknown edit kind: {self.kind!r}")


def apply_edit(query: VisQuery, edit: SpecEdit) -> VisQuery:
    """Apply *edit* to *query*, returning the mutated spec.

    This is the deterministic executor for follow-up turns: the session
    carries the previous prediction forward and each follow-up is a
    small tree rewrite, not a fresh translation.  Raises ``ValueError``
    when the edit cannot apply (e.g. ordering a set operation).
    """
    if edit.kind == "vis_type":
        if edit.vis_type is None:
            raise ValueError("vis_type edit needs a target type")
        return dataclasses.replace(query, vis_type=edit.vis_type)
    if edit.kind == "add_order":
        if not isinstance(query.body, QueryCore):
            raise ValueError("cannot order a set-operation query")
        core = query.body
        measure = _order_target(core)
        ordered = dataclasses.replace(
            core, order=Order(edit.direction, measure)
        )
        return dataclasses.replace(query, body=ordered)
    raise ValueError(f"unknown edit kind: {edit.kind!r}")


def _order_target(core: QueryCore) -> Attribute:
    """The attribute a sort-follow-up refers to: the measure (y) axis."""
    if len(core.select) < 2:
        return core.select[0]
    return core.select[1]


# ----- scenario data model --------------------------------------------------


@dataclass(frozen=True)
class ScenarioExample:
    """One judged unit: a question (or follow-up) with its gold set."""

    question: str
    db_name: str
    #: acceptable gold charts — tree dimension passes on matching any
    golds: Tuple[VisQuery, ...]
    #: session id for multi-turn examples (None = single-shot)
    session: Optional[str] = None
    #: 0-based turn index within the session
    turn: int = 0
    #: set on follow-up turns: mutate the prior prediction instead of
    #: translating the question from scratch
    edit: Optional[SpecEdit] = None


@dataclass
class ScenarioPack:
    """A built scenario: its examples plus every database they touch."""

    name: str
    examples: List[ScenarioExample]
    databases: Dict[str, Database]


@dataclass(frozen=True)
class Scenario:
    """A named workload recipe: ``build(bench) -> ScenarioPack``."""

    name: str
    description: str
    build: Callable[[object], ScenarioPack] = field(compare=False)


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str
) -> Callable[[Callable], Callable]:
    """Decorator registering a ``build(bench) -> ScenarioPack`` recipe."""

    def decorate(build: Callable) -> Callable:
        _REGISTRY[name] = Scenario(
            name=name, description=description, build=build
        )
        return build

    return decorate


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


# ----- built-in scenarios ---------------------------------------------------


@register_scenario(
    "standard",
    "single-shot questions from the paper's test split, one gold each",
)
def build_standard(bench) -> ScenarioPack:
    _, _, test = split_pairs(bench.pairs)
    examples = [
        ScenarioExample(
            question=pair.nl, db_name=pair.db_name, golds=(pair.vis,)
        )
        for pair in test
    ]
    examples.sort(key=lambda example: (example.db_name, example.question))
    return ScenarioPack("standard", examples, dict(bench.databases))


@register_scenario(
    "ambiguous",
    "ambiguous questions with multi-chart gold sets (the accuracy@k split)",
)
def build_ambiguous(bench) -> ScenarioPack:
    examples = [
        ScenarioExample(
            question=item.question, db_name=item.db_name, golds=item.golds
        )
        for item in ambiguous_split(bench.pairs)
    ]
    return ScenarioPack("ambiguous", examples, dict(bench.databases))


def _masked(query: VisQuery) -> Optional[VisQuery]:
    try:
        return from_tokens(to_tokens(query, mask_values=True))
    except Exception:
        return None


def _edit_chains(
    split: List[AmbiguousQuestion],
) -> List[Tuple[AmbiguousQuestion, List[VisQuery]]]:
    """Gold chains for edit sessions: same masked body, different type.

    An ambiguous group whose golds share one query body but differ in
    chart type is exactly a re-render session: ask once, then say "now
    as a pie chart".  Golds keep the split's deterministic order.
    """
    chains: List[Tuple[AmbiguousQuestion, List[VisQuery]]] = []
    for item in split:
        by_body: Dict[str, List[VisQuery]] = {}
        for gold in item.golds:
            masked = _masked(gold)
            if masked is None:
                continue
            key = " ".join(to_tokens(masked)[2:])  # body tokens only
            by_body.setdefault(key, []).append(gold)
        best = max(by_body.values(), key=len, default=[])
        if len({gold.vis_type for gold in best}) >= 2:
            chains.append((item, best))
    return chains


def _order_followup(gold: VisQuery) -> Optional[Tuple[SpecEdit, VisQuery]]:
    """An ``add_order`` turn for *gold*, when one is legal."""
    if gold.vis_type not in ORDERABLE_VIS_TYPES:
        return None
    if not isinstance(gold.body, QueryCore) or gold.body.order is not None:
        return None
    edit = SpecEdit(kind="add_order", direction="desc")
    try:
        edited = apply_edit(gold, edit)
        validate_query(edited)
    except Exception:
        return None
    return edit, edited


@register_scenario(
    "edit_session",
    "multi-turn sessions: follow-up instructions mutate the prior chart",
)
def build_edit_session(bench) -> ScenarioPack:
    examples: List[ScenarioExample] = []
    for index, (item, chain) in enumerate(_edit_chains(ambiguous_split(bench.pairs))):
        session = f"session-{index:04d}"
        first, rest = chain[0], chain[1:]
        examples.append(
            ScenarioExample(
                question=item.question,
                db_name=item.db_name,
                golds=(first,),
                session=session,
                turn=0,
            )
        )
        turn = 1
        previous = first
        for gold in rest:
            edit = SpecEdit(kind="vis_type", vis_type=gold.vis_type)
            examples.append(
                ScenarioExample(
                    question=edit.instruction(),
                    db_name=item.db_name,
                    golds=(gold,),
                    session=session,
                    turn=turn,
                    edit=edit,
                )
            )
            previous = gold
            turn += 1
        followup = _order_followup(previous)
        if followup is not None:
            edit, edited = followup
            examples.append(
                ScenarioExample(
                    question=edit.instruction(),
                    db_name=item.db_name,
                    golds=(edited,),
                    session=session,
                    turn=turn,
                    edit=edit,
                )
            )
    return ScenarioPack("edit_session", examples, dict(bench.databases))


def _is_temporal(query: VisQuery) -> bool:
    return any(
        group.kind == "binning" and group.bin_unit not in (None, "numeric")
        for core in query.cores
        for group in core.groups
    )


@register_scenario(
    "temporal",
    "Figure-19 COVID expert queries plus temporally-binned benchmark pairs",
)
def build_temporal(bench, max_pairs: int = 24) -> ScenarioPack:
    from repro.eval.covid_case import case_study_queries
    from repro.spider.covid import build_covid_database

    covid = build_covid_database()
    databases = dict(bench.databases)
    databases[covid.name] = covid

    examples = [
        ScenarioExample(
            question=case.nl, db_name=covid.name, golds=(case.gold,)
        )
        for case in case_study_queries()
    ]

    seen: set = set()
    temporal: List[ScenarioExample] = []
    for pair in bench.pairs:
        if not _is_temporal(pair.vis):
            continue
        masked = _masked(pair.vis)
        if masked is None:
            continue
        key = (pair.db_name, " ".join(to_tokens(masked)))
        if key in seen:
            continue
        seen.add(key)
        temporal.append(
            ScenarioExample(
                question=pair.nl, db_name=pair.db_name, golds=(pair.vis,)
            )
        )
    temporal.sort(key=lambda example: (example.db_name, example.question))
    examples.extend(temporal[:max_pairs])
    return ScenarioPack("temporal", examples, databases)
